//! Generators for Figures 5–9.

use crate::suites::{
    cifar_baseline_spec, cifar_expert_spec, mnist_baseline_spec, mnist_expert_spec, CifarSuite,
    MnistSuite,
};
use crate::tables::TableRow;
use serde::{Deserialize, Serialize};
use teamnet_core::{build_expert, TrainingHistory};
use teamnet_data::{superclass, SuperClass, OBJECT_CLASSES};
use teamnet_partition::{simulate, ModelCost, Strategy, Workload};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};

fn workload_pair(
    full_spec: &teamnet_nn::ModelSpec,
    expert_spec: &teamnet_nn::ModelSpec,
) -> Workload {
    Workload {
        full: ModelCost::measure(&build_expert(full_spec, 0), &full_spec.input_dims()),
        expert: ModelCost::measure(&build_expert(expert_spec, 0), &expert_spec.input_dims()),
        result_bytes: 20,
    }
}

/// Figure 5: Raspberry Pi 3B+, digit recognition — baseline MLP-8 vs
/// TeamNet 2×MLP-4 vs 4×MLP-2 (accuracy / latency / memory / CPU).
pub fn fig5(suite: &MnistSuite) -> Vec<TableRow> {
    let device = DeviceProfile::raspberry_pi_3b_plus();
    let base_spec = mnist_baseline_spec(&suite.scale);
    let mut rows = Vec::new();

    let w_base = workload_pair(&base_spec, &base_spec);
    let one = SimCluster::homogeneous(device.clone(), 1);
    let base = simulate(Strategy::Baseline, &w_base, &one, ComputeUnit::Cpu);
    rows.push(TableRow {
        name: "MLP-8 (baseline)".into(),
        nodes: 1,
        accuracy_pct: suite.baseline_accuracy * 100.0,
        inference_ms: base.sim.makespan.as_millis_f64(),
        memory_pct: base.memory_percent,
        cpu_pct: base.sim.cpu_percent[0],
        gpu_pct: 0.0,
        messages: base.sim.messages_sent,
    });

    for &k in &[2usize, 4] {
        let cluster = SimCluster::homogeneous(device.clone(), k);
        let w = workload_pair(&base_spec, &mnist_expert_spec(&suite.scale, k));
        let report = simulate(Strategy::TeamNet { k }, &w, &cluster, ComputeUnit::Cpu);
        let acc = if k == 2 {
            suite.team2.accuracy
        } else {
            suite.team4.accuracy
        };
        rows.push(TableRow {
            name: format!("{k}xMLP-{} (TeamNet)", 8 / k),
            nodes: k,
            accuracy_pct: acc * 100.0,
            inference_ms: report.sim.makespan.as_millis_f64(),
            memory_pct: report.memory_percent,
            cpu_pct: report.sim.cpu_percent[0],
            gpu_pct: 0.0,
            messages: report.sim.messages_sent,
        });
    }
    rows
}

/// Figure 7: Jetson TX2, image classification — SS-26 vs TeamNet 2×SS-14
/// vs 4×SS-8, on the chosen compute unit.
pub fn fig7(suite: &CifarSuite, unit: ComputeUnit) -> Vec<TableRow> {
    let device = match unit {
        ComputeUnit::Cpu => DeviceProfile::jetson_tx2_cpu(),
        ComputeUnit::Gpu => DeviceProfile::jetson_tx2_gpu(),
    };
    let base_spec = cifar_baseline_spec(&suite.scale);
    let w_base = workload_pair(&base_spec, &base_spec);
    let one = SimCluster::homogeneous(device.clone(), 1);
    let base = simulate(Strategy::Baseline, &w_base, &one, unit);
    let mut rows = vec![TableRow {
        name: "SS-26 (baseline)".into(),
        nodes: 1,
        accuracy_pct: suite.baseline_accuracy * 100.0,
        inference_ms: base.sim.makespan.as_millis_f64(),
        memory_pct: base.memory_percent,
        cpu_pct: base.sim.cpu_percent[0],
        gpu_pct: base.sim.gpu_percent[0],
        messages: base.sim.messages_sent,
    }];
    for &k in &[2usize, 4] {
        let cluster = SimCluster::homogeneous(device.clone(), k);
        let expert_spec = cifar_expert_spec(&suite.scale, k);
        let w = workload_pair(&base_spec, &expert_spec);
        let report = simulate(Strategy::TeamNet { k }, &w, &cluster, unit);
        let acc = if k == 2 {
            suite.team2.accuracy
        } else {
            suite.team4.accuracy
        };
        rows.push(TableRow {
            name: format!("{k}xSS-{} (TeamNet)", expert_spec.depth()),
            nodes: k,
            accuracy_pct: acc * 100.0,
            inference_ms: report.sim.makespan.as_millis_f64(),
            memory_pct: report.memory_percent,
            cpu_pct: report.sim.cpu_percent[0],
            gpu_pct: report.sim.gpu_percent[0],
            messages: report.sim.messages_sent,
        });
    }
    rows
}

/// One series of a convergence figure: per-iteration cumulative shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSeries {
    /// Number of experts (set point is `1/k`).
    pub k: usize,
    /// `(iteration, cumulative shares)` samples.
    pub points: Vec<(usize, Vec<f32>)>,
    /// Maximum deviation from the set point over the last 10% of training.
    pub final_imbalance: f32,
}

/// Extracts a downsampled convergence series (Figures 6 and 8) from a
/// training history.
pub fn convergence_series(
    history: &TrainingHistory,
    k: usize,
    samples: usize,
) -> ConvergenceSeries {
    let n = history.records.len();
    let stride = (n / samples.max(1)).max(1);
    let points = history
        .records
        .iter()
        .step_by(stride)
        .map(|r| (r.iteration, r.cumulative_shares.clone()))
        .collect();
    let tail = (n / 10).max(1);
    ConvergenceSeries {
        k,
        points,
        final_imbalance: history.final_imbalance(tail),
    }
}

/// Figure 6: MNIST γ-convergence for K = 2 and K = 4.
pub fn fig6(suite: &MnistSuite) -> Vec<ConvergenceSeries> {
    vec![
        convergence_series(&suite.team2.history, 2, 20),
        convergence_series(&suite.team4.history, 4, 20),
    ]
}

/// Figure 8: CIFAR γ-convergence for K = 2 and K = 4.
pub fn fig8(suite: &CifarSuite) -> Vec<ConvergenceSeries> {
    vec![
        convergence_series(&suite.team2.history, 2, 20),
        convergence_series(&suite.team4.history, 4, 20),
    ]
}

/// Renders a convergence series as text.
pub fn render_convergence(series: &[ConvergenceSeries], title: &str) -> String {
    let mut out = format!("== {title} ==\n");
    for s in series {
        out.push_str(&format!(
            "K = {} (set point {:.3}); final imbalance {:.3}\n",
            s.k,
            1.0 / s.k as f32,
            s.final_imbalance
        ));
        for (iter, shares) in &s.points {
            let shares_txt: Vec<String> = shares.iter().map(|v| format!("{v:.3}")).collect();
            out.push_str(&format!(
                "  iter {:>6}: [{}]\n",
                iter,
                shares_txt.join(", ")
            ));
        }
    }
    out
}

/// Figure 9: per-class specialization of a trained team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecializationMap {
    /// Number of experts.
    pub k: usize,
    /// `share[class][expert]`: fraction of each class's test examples won
    /// by each expert.
    pub share: Vec<Vec<f64>>,
    /// Mean share of *machine*-class examples won by each expert.
    pub machine_share: Vec<f64>,
    /// Mean share of *animal*-class examples won by each expert.
    pub animal_share: Vec<f64>,
}

impl SpecializationMap {
    /// The largest single-expert share of either super-category — how
    /// cleanly the team split along the machine/animal boundary (1.0 =
    /// one expert owns a whole super-category).
    pub fn superclass_alignment(&self) -> f64 {
        let max_m = self.machine_share.iter().cloned().fold(0.0, f64::max);
        let max_a = self.animal_share.iter().cloned().fold(0.0, f64::max);
        (max_m + max_a) / 2.0
    }
}

/// Computes the Figure 9 specialization map for one trained CIFAR team.
pub fn fig9(suite: &mut CifarSuite, k: usize) -> SpecializationMap {
    let team = if k == 2 {
        &mut suite.team2.team
    } else {
        &mut suite.team4.team
    };
    let eval = team.evaluate(&suite.test);
    let share = eval.specialization();
    let kx = team.k();
    let mut machine = vec![0.0f64; kx];
    let mut animal = vec![0.0f64; kx];
    let (mut m_n, mut a_n) = (0usize, 0usize);
    for (class, row) in share.iter().enumerate() {
        match superclass(class) {
            SuperClass::Machine => {
                m_n += 1;
                for (e, &v) in row.iter().enumerate() {
                    machine[e] += v;
                }
            }
            SuperClass::Animal => {
                a_n += 1;
                for (e, &v) in row.iter().enumerate() {
                    animal[e] += v;
                }
            }
        }
    }
    for v in &mut machine {
        *v /= m_n.max(1) as f64;
    }
    for v in &mut animal {
        *v /= a_n.max(1) as f64;
    }
    SpecializationMap {
        k: kx,
        share,
        machine_share: machine,
        animal_share: animal,
    }
}

/// Renders a specialization map as a text heat map.
pub fn render_specialization(map: &SpecializationMap, title: &str) -> String {
    let mut out = format!("== {title} (K = {}) ==\n", map.k);
    out.push_str(&format!("{:<12}", "class"));
    for e in 0..map.k {
        out.push_str(&format!(" expert{e:>2}"));
    }
    out.push('\n');
    for (class, row) in map.share.iter().enumerate() {
        out.push_str(&format!("{:<12}", OBJECT_CLASSES[class]));
        for &v in row {
            out.push_str(&format!(" {v:>8.2}"));
        }
        out.push('\n');
    }
    out.push_str("machines    ");
    for &v in &map.machine_share {
        out.push_str(&format!(" {v:>8.2}"));
    }
    out.push_str("\nanimals     ");
    for &v in &map.animal_share {
        out.push_str(&format!(" {v:>8.2}"));
    }
    out.push_str(&format!(
        "\nsuper-category alignment: {:.2}\n",
        map.superclass_alignment()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{MnistSuite, Scale};

    #[test]
    fn fig5_shapes() {
        let suite = MnistSuite::train(Scale::quick());
        let rows = fig5(&suite);
        assert_eq!(rows.len(), 3);
        // Figure 5's shape: more experts → faster inference, less memory,
        // less CPU on the RPi.
        assert!(rows[2].inference_ms < rows[0].inference_ms);
        assert!(rows[2].memory_pct < rows[0].memory_pct);
        assert!(rows[2].cpu_pct < rows[0].cpu_pct);
    }

    #[test]
    fn fig6_converges() {
        let suite = MnistSuite::train(Scale::quick());
        let series = fig6(&suite);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].k, 2);
        assert!(
            series[0].final_imbalance < 0.25,
            "{}",
            series[0].final_imbalance
        );
        assert!(!series[1].points.is_empty());
        let text = render_convergence(&series, "Figure 6");
        assert!(text.contains("set point 0.500"));
        assert!(text.contains("set point 0.250"));
    }
}
