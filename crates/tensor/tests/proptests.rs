//! Property-based tests for the tensor algebra.

use proptest::prelude::*;
use teamnet_tensor::{Shape, Tensor};

/// Strategy: a tensor with the given shape filled with small finite floats.
fn tensor(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let volume: usize = dims.iter().product();
    prop::collection::vec(-100.0f32..100.0, volume)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()).expect("volume matches"))
}

/// Strategy: a pair of same-shaped rank-2 tensors.
fn matrix_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| (tensor(vec![r, c]), tensor(vec![r, c])))
}

proptest! {
    #[test]
    fn add_commutes((a, b) in matrix_pair()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn sub_is_add_of_neg((a, b) in matrix_pair()) {
        let lhs = &a - &b;
        let rhs = &a + &(-&b);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(), s in -10.0f32..10.0) {
        let lhs = (&a + &b).scale(s);
        let rhs = &a.scale(s) + &b.scale(s);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn transpose_is_involution(t in (1usize..7, 1usize..7).prop_flat_map(|(r, c)| tensor(vec![r, c]))) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_associates(
        (m, k, n, p) in (1usize..4, 1usize..4, 1usize..4, 1usize..4),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform([n, p], -1.0, 1.0, &mut rng);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_valid_distributions(
        t in (1usize..5, 1usize..8).prop_flat_map(|(r, c)| tensor(vec![r, c]))
    ) {
        let s = t.softmax_rows();
        prop_assert!(s.all_finite());
        for r in 0..s.dims()[0] {
            let row_sum: f32 = s.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4, "row sum {}", row_sum);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(
        t in (1usize..4, 2usize..6).prop_flat_map(|(r, c)| tensor(vec![r, c])),
        shift in -50.0f32..50.0,
    ) {
        let shifted = t.add_scalar(shift);
        prop_assert!(t.softmax_rows().max_abs_diff(&shifted.softmax_rows()) < 1e-4);
    }

    #[test]
    fn offset_unravel_roundtrips(dims in prop::collection::vec(1usize..5, 1..4), frac in 0.0f64..1.0) {
        let shape = Shape::new(dims);
        let off = ((shape.volume() as f64 - 1.0) * frac) as usize;
        prop_assert_eq!(shape.offset(&shape.unravel(off)), off);
    }

    #[test]
    fn select_rows_preserves_values(
        t in (2usize..6, 1usize..4).prop_flat_map(|(r, c)| tensor(vec![r, c])),
        picks in prop::collection::vec(0usize..2, 1..5),
    ) {
        let sel = t.select_rows(&picks);
        for (out_row, &src) in picks.iter().enumerate() {
            prop_assert_eq!(sel.row(out_row), t.row(src));
        }
    }

    #[test]
    fn sum_rows_plus_cols_agree_on_total(
        t in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| tensor(vec![r, c]))
    ) {
        let total = t.sum();
        prop_assert!((t.sum_rows().sum() - total).abs() < 1e-2);
        prop_assert!((t.sum_cols().sum() - total).abs() < 1e-2);
    }

    #[test]
    fn argmin_rows_points_at_minimum(
        t in (1usize..5, 1usize..6).prop_flat_map(|(r, c)| tensor(vec![r, c]))
    ) {
        for (r, &am) in t.argmin_rows().iter().enumerate() {
            let row = t.row(r);
            prop_assert!(row.iter().all(|&x| x >= row[am]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolving with a stride-1 1×1 all-ones single-channel kernel sums
    /// channels; with one channel it is the identity.
    #[test]
    fn conv_one_by_one_identity(t in (1usize..3, 2usize..5, 2usize..5)
        .prop_flat_map(|(n, h, w)| tensor(vec![n, 1, h, w])))
    {
        use teamnet_tensor::conv::{conv2d, Conv2dSpec};
        let weight = Tensor::ones([1, 1, 1, 1]);
        let out = conv2d(&t, &weight, &Tensor::zeros([1]), Conv2dSpec::new(1, 1, 0));
        prop_assert_eq!(out, t);
    }

    /// Conv2d is linear in its input.
    #[test]
    fn conv_is_linear(seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        use teamnet_tensor::conv::{conv2d, Conv2dSpec};
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = Conv2dSpec::new(3, 1, 1);
        let a = Tensor::randn([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], 0.0, 1.0, &mut rng);
        let zero_bias = Tensor::zeros([2]);
        let lhs = conv2d(&(&a + &b), &w, &zero_bias, spec);
        let rhs = &conv2d(&a, &w, &zero_bias, spec) + &conv2d(&b, &w, &zero_bias, spec);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }
}
