//! Deterministic scoped-thread parallelism for the numeric kernels.
//!
//! Every helper here follows one **determinism contract**: work is split
//! into *units* (matrix rows, conv tiles, experts), each worker owns a
//! disjoint, contiguous block of units, and the per-element instruction
//! sequence inside a unit is byte-for-byte the one the sequential kernel
//! executes. Partitioning therefore never changes *what* is computed —
//! only *who* computes it — and outputs are bit-identical at every thread
//! count. Cross-unit reductions (e.g. conv weight gradients) are merged
//! on the calling thread in unit order for the same reason.
//!
//! Thread count comes from a [`ParallelConfig`]: the `TEAMNET_THREADS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`]. A count of 1 short-circuits to
//! a plain sequential call with zero thread machinery — the exact
//! pre-parallel code path.
//!
//! Workers are `std::thread::scope` threads: no unsafe, no work stealing,
//! no shared mutable state beyond the disjoint `chunks_mut` blocks. A
//! panicking worker propagates out of the scope after all siblings have
//! been joined.

use crate::memtrack;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::OnceLock;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "TEAMNET_THREADS";

/// Below this many inner multiply–adds the default kernel entry points
/// stay sequential: spawning scoped threads costs more than the
/// arithmetic saves. Explicit `*_with` calls bypass the threshold so
/// tests can exercise the parallel path on tiny shapes.
pub(crate) const PAR_MIN_WORK: usize = 1 << 16;

/// Process-wide default, resolved once on first use so hot kernels never
/// re-read the environment.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// When true, [`ParallelConfig::default`] and
    /// [`ParallelConfig::from_env`] resolve to the sequential
    /// configuration on this thread — see [`force_sequential_scope`].
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with every default-configured kernel on this thread pinned to
/// the canonical sequential path, restoring the previous behavior
/// afterwards (also on panic).
///
/// The parallel backend is bit-identical at any thread count, so this is
/// never needed for numerics. It exists for *allocation honesty*: the
/// static cost model (`teamnet_nn::cost`) prices the sequential kernel's
/// scratch buffers, and a [`crate::MemScope`] measurement taken under
/// this scope observes exactly that allocation schedule instead of one
/// scratch buffer per worker thread (DESIGN.md §13).
pub fn force_sequential_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SEQUENTIAL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SEQUENTIAL.with(|c| c.replace(true)));
    f()
}

/// True when the current thread is inside a [`force_sequential_scope`].
fn forced_sequential() -> bool {
    FORCE_SEQUENTIAL.with(Cell::get)
}

/// How many worker threads the parallel kernels may use.
///
/// The configuration is a plain copyable value so call sites can pin an
/// explicit count (`with_threads`), force the sequential path
/// (`sequential`), or take the process default (`default`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// Reads the configuration from the environment: `TEAMNET_THREADS`
    /// when set to a positive integer, otherwise the machine's available
    /// parallelism (1 if that cannot be determined). Unlike
    /// [`ParallelConfig::default`], this re-reads the environment on
    /// every call.
    pub fn from_env() -> Self {
        if forced_sequential() {
            return ParallelConfig::sequential();
        }
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ParallelConfig { threads }
    }

    /// The single-threaded configuration: kernels run the exact
    /// sequential code path with no thread machinery.
    pub fn sequential() -> Self {
        ParallelConfig { threads: 1 }
    }

    /// A configuration with an explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count (≥ 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// True when this configuration runs kernels sequentially.
    pub fn is_sequential(self) -> bool {
        self.threads == 1
    }
}

impl Default for ParallelConfig {
    /// The process-wide default: [`ParallelConfig::from_env`] resolved
    /// once and cached for the lifetime of the process.
    fn default() -> Self {
        if forced_sequential() {
            return ParallelConfig::sequential();
        }
        let threads = *DEFAULT_THREADS.get_or_init(|| ParallelConfig::from_env().threads);
        ParallelConfig { threads }
    }
}

/// Splits `out` into `units` equal contiguous blocks and runs
/// `f(unit_range, block)` over disjoint ranges, in parallel when
/// `threads > 1`.
///
/// `out.len()` must be a multiple of `units`; each unit is
/// `out.len() / units` consecutive elements (a matrix row, a conv tile).
/// With `threads <= 1`, zero-length units, or fewer than two units, this
/// is exactly `f(0..units, out)` on the calling thread — the sequential
/// code path. Workers receive contiguous unit ranges in order, so the
/// element at unit `u` is always written by the same per-unit code
/// regardless of thread count.
pub fn partitioned(
    out: &mut [f32],
    units: usize,
    threads: usize,
    f: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    let threads = threads.min(units).max(1);
    if units == 0 || threads <= 1 {
        f(0..units, out);
        return;
    }
    debug_assert_eq!(out.len() % units, 0, "out length must divide into units");
    let unit_len = out.len() / units;
    if unit_len == 0 {
        f(0..units, out);
        return;
    }
    let per = units.div_ceil(threads);
    // Workers inherit the spawning thread's MemScope stack so per-worker
    // scratch tensors stay visible to allocation accounting.
    let collectors = memtrack::collector_stack();
    std::thread::scope(|s| {
        for (ci, block) in out.chunks_mut(per * unit_len).enumerate() {
            let f = &f;
            let start = ci * per;
            let n_units = block.len() / unit_len;
            let collectors = collectors.clone();
            s.spawn(move || {
                memtrack::with_collector_stack(collectors, || f(start..start + n_units, block))
            });
        }
    });
}

/// Computes `f(0), …, f(count - 1)` and returns the results in index
/// order, in parallel when `threads > 1`.
///
/// Each index is evaluated exactly once by exactly one worker, so the
/// value at position `i` is independent of the thread count; only the
/// wall-clock interleaving changes. Use this for per-sample work whose
/// results the caller then reduces **sequentially in index order** to
/// keep floating-point reductions bit-stable.
pub fn map_indexed<R: Send>(count: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let per = count.div_ceil(threads);
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let collectors = memtrack::collector_stack();
    std::thread::scope(|s| {
        for (ci, block) in slots.chunks_mut(per).enumerate() {
            let f = &f;
            let start = ci * per;
            let collectors = collectors.clone();
            s.spawn(move || {
                memtrack::with_collector_stack(collectors, || {
                    for (j, slot) in block.iter_mut().enumerate() {
                        *slot = Some(f(start + j));
                    }
                })
            });
        }
    });
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), count, "every slot must be filled");
    out
}

/// Runs `f(i, &mut items[i])` for every item and returns the results in
/// item order, in parallel when `threads > 1`.
///
/// Items are handed out as disjoint contiguous blocks (`chunks_mut`), so
/// each worker has exclusive mutable access to its items — this is how
/// the per-expert forward passes fan out without locking. As with
/// [`map_indexed`], the result at position `i` depends only on item `i`,
/// never on the thread count.
pub fn map_mut<T: Send, R: Send>(
    items: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let count = items.len();
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = count.div_ceil(threads);
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let collectors = memtrack::collector_stack();
    std::thread::scope(|s| {
        for ((ci, block), results) in items.chunks_mut(per).enumerate().zip(slots.chunks_mut(per)) {
            let f = &f;
            let start = ci * per;
            let collectors = collectors.clone();
            s.spawn(move || {
                memtrack::with_collector_stack(collectors, || {
                    for ((j, item), slot) in block.iter_mut().enumerate().zip(results.iter_mut()) {
                        *slot = Some(f(start + j, item));
                    }
                })
            });
        }
    });
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), count, "every slot must be filled");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn config_constructors_clamp_and_report() {
        assert_eq!(ParallelConfig::sequential().threads(), 1);
        assert!(ParallelConfig::sequential().is_sequential());
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        assert!(!ParallelConfig::with_threads(4).is_sequential());
        assert!(ParallelConfig::from_env().threads() >= 1);
        assert!(ParallelConfig::default().threads() >= 1);
    }

    #[test]
    fn partitioned_covers_every_unit_exactly_once() {
        for threads in [1, 2, 3, 4, 7] {
            let units = 10;
            let unit_len = 3;
            let mut out = vec![0.0f32; units * unit_len];
            partitioned(&mut out, units, threads, |range, block| {
                for (bi, u) in range.enumerate() {
                    for x in &mut block[bi * unit_len..(bi + 1) * unit_len] {
                        *x += 1.0 + u as f32;
                    }
                }
            });
            let expect: Vec<f32> = (0..units)
                .flat_map(|u| std::iter::repeat_n(1.0 + u as f32, unit_len))
                .collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn partitioned_handles_empty_and_degenerate_shapes() {
        // No units at all.
        let mut empty: Vec<f32> = Vec::new();
        partitioned(&mut empty, 0, 4, |range, block| {
            assert_eq!(range, 0..0);
            assert!(block.is_empty());
        });
        // Units of zero length (an [m, 0] matrix) fall back to one call.
        let calls = AtomicUsize::new(0);
        partitioned(&mut empty, 5, 4, |range, _| {
            assert_eq!(range, 0..5);
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // More threads than units: clamped, still every unit once.
        let mut out = vec![0.0f32; 2];
        partitioned(&mut out, 2, 16, |range, block| {
            for (bi, u) in range.enumerate() {
                block[bi] = u as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0]);
    }

    #[test]
    fn map_indexed_returns_results_in_order() {
        for threads in [1, 2, 4, 5] {
            let got = map_indexed(11, threads, |i| i * i);
            let expect: Vec<usize> = (0..11).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
        assert!(map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_mut_gives_each_worker_exclusive_items() {
        for threads in [1, 2, 4] {
            let mut items: Vec<usize> = (0..9).collect();
            let got = map_mut(&mut items, threads, |i, item| {
                *item += 100;
                i + *item
            });
            let expect: Vec<usize> = (0..9).map(|i| i + i + 100).collect();
            assert_eq!(got, expect, "threads={threads}");
            assert!(items.iter().all(|&x| x >= 100));
        }
    }

    #[test]
    fn force_sequential_scope_pins_defaults_and_restores() {
        let before = ParallelConfig::default();
        force_sequential_scope(|| {
            assert!(ParallelConfig::default().is_sequential());
            assert!(ParallelConfig::from_env().is_sequential());
            // Explicit configurations are untouched: only defaults pin.
            assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        });
        assert_eq!(ParallelConfig::default(), before);
    }

    #[test]
    fn force_sequential_scope_restores_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            force_sequential_scope(|| panic!("deliberate"));
        });
        assert!(caught.is_err());
        assert!(!super::forced_sequential());
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let caught = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 8];
            partitioned(&mut out, 8, 4, |range, _| {
                assert!(!range.contains(&5), "deliberate worker failure");
            });
        });
        assert!(caught.is_err());
    }
}
