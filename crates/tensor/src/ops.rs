//! Element-wise arithmetic, activations and axis reductions.
//!
//! Binary operators (`+`, `-`, `*`) are implemented for `&Tensor` operands
//! of identical shape; broadcasting a row vector over a matrix is provided
//! explicitly by [`Tensor::add_row_broadcast`] because the only broadcast the
//! networks in this workspace need is "add a bias row to a batch of
//! activations", and an explicit name keeps shape errors loud.

use crate::tensor::Tensor;
use std::ops::{Add, Mul, Neg, Sub};

impl Add for &Tensor {
    type Output = Tensor;
    /// Element-wise sum of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    /// Element-wise difference of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;
    /// Element-wise (Hadamard) product of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    /// Element-wise negation.
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Tensor {
    /// Element-wise sum, consuming neither operand. Alias of `&a + &b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self + rhs
    }

    /// Element-wise difference. Alias of `&a - &b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self - rhs
    }

    /// Element-wise product. Alias of `&a * &b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self * rhs
    }

    /// Element-wise quotient.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// In-place fused multiply-add: `self += alpha * other`.
    ///
    /// This is the hot update path for SGD (`w.axpy(-lr, grad)`), so it
    /// avoids allocation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(
            self.shape().same_as(other.shape()),
            "axpy() requires equal shapes, got {} and {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// Adds a `[cols]` row vector to every row of a `[rows, cols]` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank-2 and `row` is rank-1 with matching
    /// column count.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "add_row_broadcast() requires a rank-2 left operand"
        );
        assert_eq!(
            row.rank(),
            1,
            "add_row_broadcast() requires a rank-1 right operand"
        );
        let cols = self.dims()[1];
        assert_eq!(
            cols,
            row.dims()[0],
            "column count mismatch in add_row_broadcast()"
        );
        let mut out = self.clone();
        for r in 0..self.dims()[0] {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data()) {
                *o += b;
            }
        }
        out
    }

    /// Rectified linear unit, `max(x, 0)` element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Hyperbolic tangent element-wise.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Natural exponential element-wise.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Natural logarithm element-wise (callers must keep inputs positive).
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Absolute value element-wise.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Numerically stable softmax over the last axis of a rank-2 tensor.
    ///
    /// Each row of the output is a probability distribution (non-negative,
    /// sums to 1).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows() requires a rank-2 tensor");
        let mut out = self.clone();
        for r in 0..self.dims()[0] {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Per-row sums of a rank-2 tensor, as a `[rows]` vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows() requires a rank-2 tensor");
        (0..self.dims()[0])
            .map(|r| self.row(r).iter().sum())
            .collect()
    }

    /// Per-column sums of a rank-2 tensor, as a `[cols]` vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn sum_cols(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_cols() requires a rank-2 tensor");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0; cols];
        for r in 0..rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out.into_iter().collect()
    }

    /// Per-row argmax of a rank-2 tensor (first index on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows() requires a rank-2 tensor");
        (0..self.dims()[0])
            .map(|r| argmax_slice(self.row(r)))
            .collect()
    }

    /// Per-row argmin of a rank-2 tensor (first index on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or has zero columns.
    pub fn argmin_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmin_rows() requires a rank-2 tensor");
        (0..self.dims()[0])
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &x) in row.iter().enumerate() {
                    if x < row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

/// Numerically stable in-place softmax of a slice.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn softmax_in_place(xs: &mut [f32]) {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Index of the largest element of a slice (first on ties).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax_slice(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn operators() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!((&a + &b).data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!((&a - &b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(a.div(&b).data(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn add_rejects_shape_mismatch() {
        let _ = &t(&[1.0], &[1]) + &t(&[1.0, 2.0], &[2]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 2.0], &[2]);
        a.axpy(-0.5, &t(&[2.0, 4.0], &[2]));
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn activations() {
        let x = t(&[-1.0, 0.0, 2.0], &[3]);
        assert_eq!(x.relu().data(), &[0.0, 0.0, 2.0]);
        assert!((x.tanh().data()[2] - 2.0f32.tanh()).abs() < 1e-7);
        assert!((x.exp().data()[0] - (-1.0f32).exp()).abs() < 1e-7);
        assert_eq!(x.abs().data(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let x = t(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = x.softmax_rows();
        for r in 0..2 {
            let row = s.row(r);
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Large logits must not overflow.
        assert!(s.all_finite());
        // Uniform row stays uniform.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn axis_reductions() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_rows().data(), &[6.0, 15.0]);
        assert_eq!(x.sum_cols().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.argmax_rows(), vec![2, 2]);
        assert_eq!(x.argmin_rows(), vec![0, 0]);
    }

    #[test]
    fn argmin_rows_first_on_ties() {
        let x = t(&[1.0, 1.0, 2.0], &[1, 3]);
        assert_eq!(x.argmin_rows(), vec![0]);
    }

    #[test]
    fn helpers() {
        let mut xs = [0.0f32, 0.0, 0.0];
        softmax_in_place(&mut xs);
        assert!((xs[0] - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(argmax_slice(&[1.0, 5.0, 5.0, 2.0]), 1);
    }
}
