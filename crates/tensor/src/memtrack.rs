//! Tensor-allocation accounting for the static cost model's honesty
//! checks.
//!
//! Every [`crate::Tensor`] stores its elements in a [`TrackedVec`], a
//! crate-private newtype whose construction, clone and drop report the
//! buffer's byte size to every active [`MemScope`] on the current thread.
//! The scope stack is thread-local; the parallel kernel pool propagates
//! the spawning thread's stack into its scoped workers (see
//! [`crate::pool`]), so a scope opened around a forward pass observes
//! per-worker scratch buffers too.
//!
//! The design goal is *honesty*, not heap profiling: `teamnet_nn::cost`
//! predicts peak live activation bytes statically, and a [`MemScope`]
//! around a real forward pass measures what actually happened so the two
//! can be compared (`static ≥ observed`, within a documented slack — see
//! DESIGN.md §13). Only tensor element buffers are tracked; small
//! per-channel `Vec<f32>` scratch and non-tensor allocations are out of
//! scope and strictly shrink the observed number, which keeps the
//! upper-bound direction of the comparison sound.
//!
//! Accounting is scope-relative and saturating: dropping a tensor that
//! was allocated *before* the scope opened cannot push the live counter
//! below zero.

use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Stack of active collectors on this thread; innermost scope last.
    /// A stack (not a single slot) so a scope opened inside another —
    /// e.g. the runtime's per-forward meter inside a test's outer scope —
    /// hides nothing from the outer observer.
    static COLLECTORS: RefCell<Vec<Arc<Collector>>> = const { RefCell::new(Vec::new()) };
}

/// Shared counters behind one [`MemScope`]. Atomics, because pool workers
/// report into the scope of the thread that spawned them.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    allocated_bytes: AtomicU64,
    allocations: AtomicU64,
}

impl Collector {
    fn on_alloc(&self, bytes: u64) {
        let live = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);
        self.allocated_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    fn on_free(&self, bytes: u64) {
        // Saturating: tensors allocated before the scope opened may be
        // dropped inside it.
        let _ = self
            .live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
                Some(live.saturating_sub(bytes))
            });
    }
}

/// Reports `bytes` allocated to every scope active on this thread.
fn on_alloc(bytes: u64) {
    COLLECTORS.with(|stack| {
        for c in stack.borrow().iter() {
            c.on_alloc(bytes);
        }
    });
}

/// Reports `bytes` freed to every scope active on this thread.
fn on_free(bytes: u64) {
    COLLECTORS.with(|stack| {
        for c in stack.borrow().iter() {
            c.on_free(bytes);
        }
    });
}

/// Snapshot of the collector stack, for installation in a pool worker.
pub(crate) fn collector_stack() -> Vec<Arc<Collector>> {
    COLLECTORS.with(|stack| stack.borrow().clone())
}

/// Runs `f` with `stack` as this thread's collector stack, restoring the
/// previous stack afterwards. Used by [`crate::pool`] so scoped workers
/// report into the spawning thread's scopes.
pub(crate) fn with_collector_stack<R>(stack: Vec<Arc<Collector>>, f: impl FnOnce() -> R) -> R {
    let prev = COLLECTORS.with(|s| std::mem::replace(&mut *s.borrow_mut(), stack));
    let out = f();
    COLLECTORS.with(|s| *s.borrow_mut() = prev);
    out
}

/// Counters observed by a [`MemScope`] between `begin` and the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Tensor bytes currently live that were allocated inside the scope
    /// (saturating against frees of pre-existing tensors).
    pub live_bytes: u64,
    /// Maximum of `live_bytes` over the scope's lifetime so far.
    pub peak_bytes: u64,
    /// Total tensor bytes allocated inside the scope (monotone).
    pub allocated_bytes: u64,
    /// Number of tensor buffer allocations inside the scope.
    pub allocations: u64,
}

/// RAII measurement scope for tensor allocations on the current thread
/// (plus any pool workers it spawns).
///
/// ```
/// use teamnet_tensor::{MemScope, Tensor};
/// let scope = MemScope::begin();
/// let t = Tensor::zeros([4, 8]);
/// assert_eq!(scope.stats().peak_bytes, 4 * 8 * 4);
/// drop(t);
/// assert_eq!(scope.stats().live_bytes, 0);
/// ```
#[derive(Debug)]
pub struct MemScope {
    collector: Arc<Collector>,
}

impl MemScope {
    /// Opens a scope: from now until drop, tensor allocations on this
    /// thread are counted.
    pub fn begin() -> Self {
        let collector = Arc::new(Collector::default());
        COLLECTORS.with(|stack| stack.borrow_mut().push(Arc::clone(&collector)));
        MemScope { collector }
    }

    /// Snapshot of the counters so far. Valid both before and after drop
    /// would be — but the scope must be alive to keep counting, so take
    /// the snapshot before dropping it.
    pub fn stats(&self) -> MemStats {
        MemStats {
            live_bytes: self.collector.live_bytes.load(Ordering::Relaxed),
            peak_bytes: self.collector.peak_bytes.load(Ordering::Relaxed),
            allocated_bytes: self.collector.allocated_bytes.load(Ordering::Relaxed),
            allocations: self.collector.allocations.load(Ordering::Relaxed),
        }
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        COLLECTORS.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| Arc::ptr_eq(c, &self.collector)) {
                stack.remove(pos);
            }
        });
    }
}

/// The element buffer of a [`crate::Tensor`]: a `Vec<f32>` whose
/// construction, clone and drop report byte counts to the active
/// [`MemScope`]s. Crate-private by design — making it the only way to
/// build a `Tensor` is what guarantees no tensor allocation escapes the
/// accounting.
#[derive(Default)]
pub(crate) struct TrackedVec {
    data: Vec<f32>,
}

impl std::fmt::Debug for TrackedVec {
    // Transparent: `Tensor`'s Debug preview renders the buffer directly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.data.fmt(f)
    }
}

impl TrackedVec {
    fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Releases the buffer without a matching free event being lost: the
    /// free is reported here, and the subsequent `Drop` sees an empty Vec.
    pub(crate) fn into_inner(mut self) -> Vec<f32> {
        on_free(self.bytes());
        std::mem::take(&mut self.data)
    }
}

impl From<Vec<f32>> for TrackedVec {
    fn from(data: Vec<f32>) -> Self {
        let v = TrackedVec { data };
        on_alloc(v.bytes());
        v
    }
}

impl Clone for TrackedVec {
    fn clone(&self) -> Self {
        TrackedVec::from(self.data.clone())
    }
}

impl Drop for TrackedVec {
    fn drop(&mut self) {
        on_free(self.bytes());
    }
}

impl Deref for TrackedVec {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.data
    }
}

impl DerefMut for TrackedVec {
    // No tensor op resizes its buffer in place, so handing out `&mut Vec`
    // cannot skew the byte accounting.
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.data
    }
}

impl PartialEq for TrackedVec {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Serialize for TrackedVec {
    fn to_json_value(&self) -> Value {
        self.data.to_json_value()
    }
}

impl Deserialize for TrackedVec {
    fn from_json_value(value: &Value) -> Result<Self, serde::Error> {
        Vec::<f32>::from_json_value(value).map(TrackedVec::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn scope_counts_alloc_peak_and_free() {
        let scope = MemScope::begin();
        let a = Tensor::zeros([10]); // 40 bytes
        let b = Tensor::zeros([5]); // 20 bytes
        let stats = scope.stats();
        assert_eq!(stats.live_bytes, 60);
        assert_eq!(stats.peak_bytes, 60);
        drop(a);
        let c = Tensor::zeros([3]); // 12 bytes
        let stats = scope.stats();
        assert_eq!(stats.live_bytes, 32);
        assert_eq!(stats.peak_bytes, 60, "peak is sticky");
        assert_eq!(stats.allocated_bytes, 72);
        assert_eq!(stats.allocations, 3);
        drop((b, c));
        assert_eq!(scope.stats().live_bytes, 0);
    }

    #[test]
    fn free_of_pre_scope_tensor_saturates() {
        let outside = Tensor::zeros([100]);
        let scope = MemScope::begin();
        drop(outside);
        let stats = scope.stats();
        assert_eq!(stats.live_bytes, 0, "must not underflow");
        assert_eq!(stats.allocated_bytes, 0);
    }

    #[test]
    fn nested_scopes_both_observe() {
        let outer = MemScope::begin();
        let a = Tensor::zeros([8]);
        let inner = MemScope::begin();
        let b = Tensor::zeros([4]);
        assert_eq!(inner.stats().peak_bytes, 16);
        assert_eq!(outer.stats().peak_bytes, 32 + 16);
        drop((a, b, inner));
        assert_eq!(outer.stats().live_bytes, 0);
    }

    #[test]
    fn clone_and_into_vec_balance() {
        let scope = MemScope::begin();
        let a = Tensor::zeros([6]);
        let b = a.clone();
        assert_eq!(scope.stats().live_bytes, 48);
        let raw = b.into_vec();
        assert_eq!(scope.stats().live_bytes, 24, "into_vec releases");
        drop((a, raw));
        assert_eq!(scope.stats().live_bytes, 0);
    }

    #[test]
    fn dropped_scope_stops_counting_but_outer_continues() {
        let outer = MemScope::begin();
        {
            let inner = MemScope::begin();
            drop(inner);
        }
        let t = Tensor::zeros([2]);
        assert_eq!(outer.stats().live_bytes, 8);
        drop(t);
    }

    #[test]
    fn pool_workers_report_into_the_spawning_scope() {
        // A matmul big enough to clear PAR_MIN_WORK with 4 threads: the
        // per-worker allocations (none for matmul, but the output wrap
        // happens on the caller) and the result must all be visible.
        let m = 64;
        let a = Tensor::zeros([m, m]);
        let b = Tensor::zeros([m, m]);
        let scope = MemScope::begin();
        let c = a
            .try_matmul_with(&b, crate::ParallelConfig::with_threads(4))
            .expect("shapes agree");
        let stats = scope.stats();
        assert_eq!(stats.live_bytes, (m * m * 4) as u64);
        drop(c);
        assert_eq!(scope.stats().live_bytes, 0);
    }
}
