//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Most tensor kernels in this crate panic on shape mismatch (they are hot
/// inner loops and a mismatch is a programming error), but the public
/// conversion and construction entry points validate their inputs and return
/// this type so callers can recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied by the caller.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that were required to be compatible are not.
    ShapeMismatch {
        /// Human-readable description of the left operand's shape.
        left: String,
        /// Human-readable description of the right operand's shape.
        right: String,
        /// The operation that failed.
        op: &'static str,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A shape with a zero-sized dimension was supplied where a non-empty
    /// tensor is required.
    EmptyShape,
    /// An operand had the wrong rank for the requested operation.
    RankMismatch {
        /// The operation that failed.
        op: &'static str,
        /// The rank the operation requires.
        expected: usize,
        /// The rank the operand actually had.
        got: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "incompatible shapes {left} and {right} for {op}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::EmptyShape => write!(f, "shape must have a positive volume"),
            TensorError::RankMismatch { op, expected, got } => {
                write!(f, "{op} requires a rank-{expected} operand, got rank {got}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: "[2, 3]".into(),
                right: "[4]".into(),
                op: "add",
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::EmptyShape,
            TensorError::RankMismatch {
                op: "matmul()",
                expected: 2,
                got: 3,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
