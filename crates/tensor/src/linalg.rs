//! Dense linear algebra: matrix multiplication and transposition.
//!
//! The kernels are BLAS-free but cache-aware (ikj loop order with a
//! restructured inner loop) — fast enough to train every model in the
//! reproduction on a laptop CPU. `matmul` additionally partitions its
//! output by row blocks across scoped threads (see [`crate::pool`]);
//! the per-element reduction order inside each row never depends on the
//! thread count, so results are bit-identical at every `TEAMNET_THREADS`
//! setting.
//!
//! Every operation comes in two forms: a `try_*` entry point returning
//! `Result<_, TensorError>` for callers that validate untrusted shapes,
//! and a thin panicking wrapper for the hot internal paths where a shape
//! mismatch is a programming error.

use crate::error::TensorError;
use crate::pool::{self, ParallelConfig};
use crate::tensor::Tensor;
use std::ops::Range;

use crate::pool::PAR_MIN_WORK;

fn require_rank(t: &Tensor, expected: usize, op: &'static str) -> Result<(), TensorError> {
    if t.rank() == expected {
        Ok(())
    } else {
        Err(TensorError::RankMismatch {
            op,
            expected,
            got: t.rank(),
        })
    }
}

fn shape_mismatch(op: &'static str, left: &Tensor, right: &Tensor) -> TensorError {
    TensorError::ShapeMismatch {
        left: left.shape().to_string(),
        right: right.shape().to_string(),
        op,
    }
}

/// The row-block matmul kernel shared by the sequential and parallel
/// paths: computes output rows `rows` of `a × b` into `out` (which holds
/// exactly those rows). `rhs_finite` gates the `aik == 0.0` sparsity
/// skip: skipping a zero row is only sound when every element of `b` is
/// finite, because IEEE-754 defines `0.0 × NaN` and `0.0 × ∞` as NaN —
/// a non-finite right operand must poison the accumulator, not vanish.
pub(crate) fn matmul_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rhs_finite: bool,
    rows: Range<usize>,
    out: &mut [f32],
) {
    // ikj order: the inner loop walks both `b` and `out` contiguously.
    for (bi, i) in rows.enumerate() {
        let out_row = &mut out[bi * n..(bi + 1) * n];
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 && rhs_finite {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Large products are partitioned by row blocks across the process
    /// default [`ParallelConfig`]; outputs are bit-identical at every
    /// thread count. NaN/Inf anywhere in either operand propagates into
    /// the affected output elements per IEEE-754.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are
    /// rank-2, and [`TensorError::ShapeMismatch`] when the inner
    /// dimensions differ.
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let cfg = if self.rank() == 2 && rhs.rank() == 2 {
            let work = self.dims()[0] * self.dims()[1] * rhs.dims()[1];
            if work >= PAR_MIN_WORK {
                ParallelConfig::default()
            } else {
                ParallelConfig::sequential()
            }
        } else {
            ParallelConfig::sequential()
        };
        self.try_matmul_with(rhs, cfg)
    }

    /// [`Tensor::try_matmul`] with an explicit thread configuration and
    /// no size threshold — `cfg.threads() == 1` runs the exact
    /// sequential kernel on the calling thread.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::try_matmul`].
    pub fn try_matmul_with(
        &self,
        rhs: &Tensor,
        cfg: ParallelConfig,
    ) -> Result<Tensor, TensorError> {
        require_rank(self, 2, "matmul()")?;
        require_rank(rhs, 2, "matmul()")?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(shape_mismatch("matmul()", self, rhs));
        }
        let a = self.data();
        let b = rhs.data();
        // One O(k·n) scan decides whether the zero-skip is sound for the
        // whole product; the skip is worth keeping because one-hot and
        // masked matrices are common on the gating path.
        let rhs_finite = b.iter().all(|x| x.is_finite());
        let mut out = vec![0.0f32; m * n];
        pool::partitioned(&mut out, m, cfg.threads(), |rows, block| {
            matmul_rows(a, b, k, n, rhs_finite, rows, block);
        });
        Ok(Tensor::from_parts([m, n], out))
    }

    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner
    /// dimensions. Use [`Tensor::try_matmul`] to validate instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use teamnet_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
    /// assert_eq!(a.matmul(&i), a);
    /// # Ok::<(), teamnet_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul() requires rank-2 operands");
        assert_eq!(rhs.rank(), 2, "matmul() requires rank-2 operands");
        assert_eq!(
            self.dims()[1],
            rhs.dims()[0],
            "matmul() inner dimension mismatch: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        self.try_matmul(rhs).unwrap_or_else(|_| unreachable!())
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank-2.
    pub fn try_transpose(&self) -> Result<Tensor, TensorError> {
        require_rank(self, 2, "transpose()")?;
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Ok(Tensor::from_parts([n, m], out))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2. Use [`Tensor::try_transpose`]
    /// to validate instead.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose() requires a rank-2 tensor");
        self.try_transpose().unwrap_or_else(|_| unreachable!())
    }

    /// Matrix–vector product: `[m, n] × [n] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank-2 and
    /// `v` rank-1, and [`TensorError::ShapeMismatch`] when the lengths
    /// disagree.
    pub fn try_matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        require_rank(self, 2, "matvec()")?;
        require_rank(v, 1, "matvec()")?;
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if n != v.dims()[0] {
            return Err(shape_mismatch("matvec()", self, v));
        }
        Ok((0..m)
            .map(|i| self.row(i).iter().zip(v.data()).map(|(&a, &b)| a * b).sum())
            .collect())
    }

    /// Matrix–vector product: `[m, n] × [n] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank-2 and `v` is rank-1 with matching
    /// length. Use [`Tensor::try_matvec`] to validate instead.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec() requires a rank-2 matrix");
        assert_eq!(v.rank(), 1, "matvec() requires a rank-1 vector");
        assert_eq!(self.dims()[1], v.dims()[0], "matvec() dimension mismatch");
        self.try_matvec(v).unwrap_or_else(|_| unreachable!())
    }

    /// Outer product of two rank-1 tensors: `[m] ⊗ [n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are
    /// rank-1.
    pub fn try_outer(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        require_rank(self, 1, "outer()")?;
        require_rank(rhs, 1, "outer()")?;
        let (m, n) = (self.dims()[0], rhs.dims()[0]);
        let mut out = Vec::with_capacity(m * n);
        for &a in self.data() {
            for &b in rhs.data() {
                out.push(a * b);
            }
        }
        Ok(Tensor::from_parts([m, n], out))
    }

    /// Outer product of two rank-1 tensors: `[m] ⊗ [n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-1. Use [`Tensor::try_outer`]
    /// to validate instead.
    pub fn outer(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer() requires rank-1 operands");
        assert_eq!(rhs.rank(), 1, "outer() requires rank-1 operands");
        self.try_outer(rhs).unwrap_or_else(|_| unreachable!())
    }

    /// Dot product of two rank-1 tensors of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are
    /// rank-1, and [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn try_dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        require_rank(self, 1, "dot()")?;
        require_rank(rhs, 1, "dot()")?;
        if self.len() != rhs.len() {
            return Err(shape_mismatch("dot()", self, rhs));
        }
        Ok(self
            .data()
            .iter()
            .zip(rhs.data())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Dot product of two rank-1 tensors of equal length.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-1 with equal lengths. Use
    /// [`Tensor::try_dot`] to validate instead.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot() requires rank-1 operands");
        assert_eq!(rhs.rank(), 1, "dot() requires rank-1 operands");
        assert_eq!(self.len(), rhs.len(), "dot() length mismatch");
        self.try_dot(rhs).unwrap_or_else(|_| unreachable!())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_hand_computed() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]); // 2x3
        let b = t(&[3.0, 1.0, 2.0, 1.0, 1.0, 0.0], &[3, 2]); // 3x2
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let mut eye = Tensor::zeros([3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        t(&[1.0, 2.0], &[1, 2]).matmul(&t(&[1.0], &[1, 1]));
    }

    #[test]
    fn try_matmul_reports_typed_errors() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let bad_rank = a.try_matmul(&t(&[1.0], &[1]));
        assert!(matches!(
            bad_rank.unwrap_err(),
            TensorError::RankMismatch {
                op: "matmul()",
                expected: 2,
                got: 1
            }
        ));
        let bad_inner = a.try_matmul(&t(&[1.0], &[1, 1]));
        assert!(matches!(
            bad_inner.unwrap_err(),
            TensorError::ShapeMismatch { op: "matmul()", .. }
        ));
    }

    #[test]
    fn matmul_propagates_nan_and_inf_from_either_operand() {
        // The zero row of `a` meets NaN/∞ in `b`: 0·NaN = NaN, 0·∞ = NaN.
        let a = t(&[0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = t(&[f32::NAN, 1.0, 2.0, 3.0], &[2, 2]);
        let c = a.matmul(&b);
        assert!(c.at(&[0, 0]).is_nan(), "0·NaN must poison, got {c:?}");
        assert_eq!(c.at(&[0, 1]), 0.0);
        assert!(c.at(&[1, 0]).is_nan());
        assert_eq!(c.at(&[1, 1]), 7.0);

        let inf = t(&[f32::INFINITY, 0.0, 0.0, 0.0], &[2, 2]);
        let d = a.matmul(&inf);
        assert!(d.at(&[0, 0]).is_nan(), "0·∞ must poison, got {d:?}");

        // NaN in the *left* operand, against a finite rhs.
        let an = t(&[f32::NAN, 0.0, 0.0, 1.0], &[2, 2]);
        let e = an.matmul(&t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        assert!(e.at(&[0, 0]).is_nan() && e.at(&[0, 1]).is_nan());
        assert_eq!(e.at(&[1, 0]), 3.0);
    }

    #[test]
    fn matmul_parallel_is_bit_identical_to_sequential() {
        let m = 17;
        let k = 13;
        let n = 11;
        let a: Tensor = (0..m * k)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 / 7.0 - 60.0)
            .collect::<Tensor>()
            .reshape([m, k])
            .unwrap();
        let b: Tensor = (0..k * n)
            .map(|i| ((i * 40503usize) % 997) as f32 / 11.0 - 40.0)
            .collect::<Tensor>()
            .reshape([k, n])
            .unwrap();
        let seq = a.try_matmul_with(&b, ParallelConfig::sequential()).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = a
                .try_matmul_with(&b, ParallelConfig::with_threads(threads))
                .unwrap();
            let seq_bits: Vec<u32> = seq.data().iter().map(|x| x.to_bits()).collect();
            let par_bits: Vec<u32> = par.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads={threads}");
        }
    }

    #[test]
    fn matmul_handles_zero_dimensions() {
        for threads in [1, 4] {
            let cfg = ParallelConfig::with_threads(threads);
            let a0 = Tensor::zeros([0, 3]);
            let b = Tensor::zeros([3, 2]);
            assert_eq!(a0.try_matmul_with(&b, cfg).unwrap().dims(), &[0, 2]);
            let a = Tensor::zeros([2, 0]);
            let b0 = Tensor::zeros([0, 3]);
            assert_eq!(a.try_matmul_with(&b0, cfg).unwrap().dims(), &[2, 3]);
            let bn = Tensor::zeros([3, 0]);
            let c = Tensor::zeros([2, 3]).try_matmul_with(&bn, cfg).unwrap();
            assert_eq!(c.dims(), &[2, 0]);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.at(&[2, 1]), 6.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn transpose_respects_product_rule() {
        // (A B)^T == B^T A^T
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[0.0, 1.0, -1.0, 2.0], &[2, 2]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let v = t(&[1.0, 0.0, -1.0], &[3]);
        let got = a.matvec(&v);
        let want = a.matmul(&v.reshape([3, 1]).unwrap());
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn outer_and_dot() {
        let u = t(&[1.0, 2.0], &[2]);
        let v = t(&[3.0, 4.0, 5.0], &[3]);
        let o = u.outer(&v);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert_eq!(u.dot(&u), 5.0);
    }

    #[test]
    fn try_variants_agree_with_panicking_wrappers() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = t(&[1.0, -1.0], &[2]);
        assert_eq!(a.try_transpose().unwrap(), a.transpose());
        assert_eq!(a.try_matvec(&v).unwrap(), a.matvec(&v));
        assert_eq!(v.try_outer(&v).unwrap(), v.outer(&v));
        assert_eq!(v.try_dot(&v).unwrap(), v.dot(&v));
        assert!(v.try_transpose().is_err());
        assert!(a.try_dot(&v).is_err());
        assert!(v.try_dot(&t(&[1.0], &[1])).is_err());
        assert!(a.try_matvec(&t(&[1.0], &[1])).is_err());
        assert!(a.try_outer(&v).is_err());
    }
}
