//! Dense linear algebra: matrix multiplication and transposition.
//!
//! The kernels are BLAS-free but cache-aware (ikj loop order with a
//! restructured inner loop) — fast enough to train every model in the
//! reproduction on a laptop CPU.

use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner
    /// dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use teamnet_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
    /// assert_eq!(a.matmul(&i), a);
    /// # Ok::<(), teamnet_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul() requires rank-2 operands");
        assert_eq!(rhs.rank(), 2, "matmul() requires rank-2 operands");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul() inner dimension mismatch: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        // ikj order: the inner loop walks both `b` and `out` contiguously.
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
        // `out` was allocated as m * n zeros. lint: allow(no-expect)
        Tensor::from_vec(out, [m, n]).expect("matmul output volume is m*n by construction")
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose() requires a rank-2 tensor");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        // `out` was allocated as m * n zeros. lint: allow(no-expect)
        Tensor::from_vec(out, [n, m]).expect("transpose preserves volume")
    }

    /// Matrix–vector product: `[m, n] × [n] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank-2 and `v` is rank-1 with matching
    /// length.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec() requires a rank-2 matrix");
        assert_eq!(v.rank(), 1, "matvec() requires a rank-1 vector");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(n, v.dims()[0], "matvec() dimension mismatch");
        (0..m)
            .map(|i| self.row(i).iter().zip(v.data()).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Outer product of two rank-1 tensors: `[m] ⊗ [n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-1.
    pub fn outer(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer() requires rank-1 operands");
        assert_eq!(rhs.rank(), 1, "outer() requires rank-1 operands");
        let (m, n) = (self.dims()[0], rhs.dims()[0]);
        let mut out = Vec::with_capacity(m * n);
        for &a in self.data() {
            for &b in rhs.data() {
                out.push(a * b);
            }
        }
        // The nested loop pushes exactly m * n products. lint: allow(no-expect)
        Tensor::from_vec(out, [m, n]).expect("outer output volume is m*n by construction")
    }

    /// Dot product of two rank-1 tensors of equal length.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-1 with equal lengths.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot() requires rank-1 operands");
        assert_eq!(rhs.rank(), 1, "dot() requires rank-1 operands");
        assert_eq!(self.len(), rhs.len(), "dot() length mismatch");
        self.data()
            .iter()
            .zip(rhs.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_hand_computed() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]); // 2x3
        let b = t(&[3.0, 1.0, 2.0, 1.0, 1.0, 0.0], &[3, 2]); // 3x2
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let mut eye = Tensor::zeros([3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        t(&[1.0, 2.0], &[1, 2]).matmul(&t(&[1.0], &[1, 1]));
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.at(&[2, 1]), 6.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn transpose_respects_product_rule() {
        // (A B)^T == B^T A^T
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[0.0, 1.0, -1.0, 2.0], &[2, 2]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let v = t(&[1.0, 0.0, -1.0], &[3]);
        let got = a.matvec(&v);
        let want = a.matmul(&v.reshape([3, 1]).unwrap());
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn outer_and_dot() {
        let u = t(&[1.0, 2.0], &[2]);
        let v = t(&[3.0, 4.0, 5.0], &[3]);
        let o = u.outer(&v);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert_eq!(u.dot(&u), 5.0);
    }
}
