//! Random tensor initialization schemes.
//!
//! All constructors take an explicit `&mut impl Rng` so experiments are
//! reproducible from a single seed threaded through the whole workspace.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;
use rand_distributions::StandardNormal;

/// A tiny internal normal sampler (Box–Muller) so we do not need
/// `rand_distr`; exposed as a module to keep `init` self-contained.
mod rand_distributions {
    use rand::Rng;

    /// Marker type: sample standard-normal variates via Box–Muller.
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one N(0, 1) sample.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            // Box–Muller transform; u1 in (0, 1] avoids ln(0).
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        }
    }
}

impl Tensor {
    /// Tensor with entries drawn i.i.d. from N(`mean`, `std`²).
    pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.volume())
            .map(|_| mean + std * StandardNormal::sample(rng))
            .collect();
        // `data` has exactly shape.volume() samples. lint: allow(no-expect)
        Tensor::from_vec(data, shape).expect("volume matches by construction")
    }

    /// Tensor with entries drawn i.i.d. from U(`low`, `high`).
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn rand_uniform(
        shape: impl Into<Shape>,
        low: f32,
        high: f32,
        rng: &mut impl Rng,
    ) -> Tensor {
        assert!(low < high, "rand_uniform() requires low < high");
        let shape = shape.into();
        let data = (0..shape.volume())
            .map(|_| rng.gen_range(low..high))
            .collect();
        // `data` has exactly shape.volume() samples. lint: allow(no-expect)
        Tensor::from_vec(data, shape).expect("volume matches by construction")
    }

    /// Glorot/Xavier uniform initialization for a weight tensor with the
    /// given fan-in and fan-out: U(−√(6/(fan_in+fan_out)), +√(…)).
    ///
    /// # Panics
    ///
    /// Panics if `fan_in + fan_out == 0`.
    pub fn xavier_uniform(
        shape: impl Into<Shape>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        assert!(
            fan_in + fan_out > 0,
            "xavier_uniform() requires positive fan sum"
        );
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(shape, -bound, bound, rng)
    }

    /// He/Kaiming normal initialization: N(0, 2/fan_in), the standard choice
    /// ahead of ReLU nonlinearities.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
        assert!(fan_in > 0, "he_normal() requires positive fan_in");
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::randn(shape, 0.0, std, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(t.all_finite());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform([5_000], -0.5, 0.5, &mut rng);
        assert!(t.max() < 0.5);
        assert!(t.min() >= -0.5);
    }

    #[test]
    fn xavier_bound_formula() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::xavier_uniform([100, 100], 100, 100, &mut rng);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= bound);
        assert!(t.min() >= -bound);
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::he_normal([20_000], 50, &mut rng);
        let var = t.norm_sq() / t.len() as f32;
        assert!((var - 0.04).abs() < 0.01, "var {var}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = Tensor::randn([16], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = Tensor::randn([16], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
