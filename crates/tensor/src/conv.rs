//! 2-D convolution and pooling kernels (NCHW layout), with exact backward
//! passes, implemented via im2col/col2im.
//!
//! These are free functions rather than `Tensor` methods because they take
//! several configuration parameters; the [`Conv2dSpec`] struct groups them.
//!
//! The convolution forward pass partitions its output by (sample ×
//! out-channel) tiles across scoped threads, and the backward pass
//! computes per-sample partial gradients in parallel then merges them on
//! the calling thread in sample order. Both follow the determinism
//! contract of [`crate::pool`]: results are bit-identical at every
//! thread count.

use crate::linalg::matmul_rows;
use crate::pool::{self, ParallelConfig, PAR_MIN_WORK};
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution: kernel size, stride and symmetric zero
/// padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height and width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding added to each spatial border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec; `stride` must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input spatial size.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_size(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} larger than padded input {}",
            self.kernel,
            padded
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Unfolds one `[c, h, w]` image into an im2col matrix
/// `[c*k*k, oh*ow]` so convolution becomes a matmul.
fn im2col(img: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec) -> Tensor {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let mut cols = vec![0.0f32; c * k * k * oh * ow];
    let col_w = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            img[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        cols[row * col_w + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
    // `cols` was allocated as c*k*k * col_w zeros. lint: allow(no-expect)
    Tensor::from_vec(cols, [c * k * k, col_w]).expect("im2col volume by construction")
}

/// Inverse scatter of [`im2col`]: accumulates a `[c*k*k, oh*ow]` gradient
/// matrix back into a `[c, h, w]` image gradient.
fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: Conv2dSpec) -> Vec<f32> {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let mut img = vec![0.0f32; c * h * w];
    let data = cols.data();
    let col_w = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img[(ch * h + iy as usize) * w + ix as usize] +=
                            data[row * col_w + oy * ow + ox];
                    }
                }
            }
        }
    }
    img
}

/// 2-D convolution forward pass.
///
/// * `input`: `[n, ic, h, w]`
/// * `weight`: `[oc, ic, k, k]`
/// * `bias`: `[oc]`
///
/// Returns `[n, oc, oh, ow]`. Large convolutions are partitioned by
/// (sample × out-channel) tiles across the process default
/// [`ParallelConfig`]; outputs are bit-identical at every thread count.
///
/// # Panics
///
/// Panics on any rank or dimension mismatch.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: Conv2dSpec) -> Tensor {
    conv2d_with(
        input,
        weight,
        bias,
        spec,
        default_conv_config(input, weight),
    )
}

/// [`conv2d`] with an explicit thread configuration and no size
/// threshold — `cfg.threads() == 1` runs the exact sequential kernel on
/// the calling thread.
///
/// # Panics
///
/// Panics on any rank or dimension mismatch.
pub fn conv2d_with(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: Conv2dSpec,
    cfg: ParallelConfig,
) -> Tensor {
    assert_eq!(input.rank(), 4, "conv2d input must be [n, c, h, w]");
    assert_eq!(weight.rank(), 4, "conv2d weight must be [oc, ic, k, k]");
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oc = weight.dims()[0];
    assert_eq!(weight.dims()[1], ic, "conv2d channel mismatch");
    assert_eq!(weight.dims()[2], spec.kernel, "conv2d kernel mismatch");
    assert_eq!(weight.dims()[3], spec.kernel, "conv2d kernel mismatch");
    assert_eq!(bias.dims(), &[oc], "conv2d bias must be [oc]");
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let ckk = ic * spec.kernel * spec.kernel;
    let tile = oh * ow;

    let w_data = weight.data();
    let b_data = bias.data();
    let in_data = input.data();
    let img_len = ic * h * w;

    // Each (sample, out-channel) tile is a contiguous `oh*ow` block of the
    // output; a worker unfolds a sample's im2col matrix once (tiles are
    // handed out in order, so consecutive tiles usually share a sample)
    // and runs the shared row kernel for its channel, matching the
    // sequential `w_mat × cols` element order exactly.
    let mut out = vec![0.0f32; n * oc * tile];
    pool::partitioned(&mut out, n * oc, cfg.threads(), |range, block| {
        let mut cached: Option<(usize, Tensor, bool)> = None;
        for (bi, u) in range.enumerate() {
            let (s, ch) = (u / oc, u % oc);
            if cached.as_ref().map(|c| c.0) != Some(s) {
                // Release the previous sample's unfold before building the
                // next: at most one im2col matrix is live per worker, which
                // is what the static cost model certifies.
                drop(cached.take());
                let cols = im2col(&in_data[s * img_len..(s + 1) * img_len], ic, h, w, spec);
                let finite = cols.data().iter().all(|x| x.is_finite());
                cached = Some((s, cols, finite));
            }
            let Some((_, cols, cols_finite)) = cached.as_ref() else {
                unreachable!()
            };
            let tile_out = &mut block[bi * tile..(bi + 1) * tile];
            matmul_rows(
                w_data,
                cols.data(),
                ckk,
                tile,
                *cols_finite,
                ch..ch + 1,
                tile_out,
            );
            let b = b_data[ch];
            for o in tile_out {
                *o += b;
            }
        }
    });
    Tensor::from_parts([n, oc, oh, ow], out)
}

/// The default thread configuration for a convolution: parallel only when
/// the multiply–add count clears the [`PAR_MIN_WORK`] threshold.
fn default_conv_config(input: &Tensor, weight: &Tensor) -> ParallelConfig {
    if input.rank() == 4 && weight.rank() == 4 {
        let work = input.len() * weight.dims()[0] * weight.dims()[2] * weight.dims()[3];
        if work >= PAR_MIN_WORK {
            return ParallelConfig::default();
        }
    }
    ParallelConfig::sequential()
}

/// Gradients of [`conv2d`] with respect to its input, weight and bias.
///
/// `grad_out` has the forward output's shape `[n, oc, oh, ow]`. Returns
/// `(grad_input, grad_weight, grad_bias)` with the corresponding operand
/// shapes. Per-sample partial gradients are computed in parallel (process
/// default [`ParallelConfig`], size-thresholded) and merged in sample
/// order, so results are bit-identical at every thread count.
///
/// # Panics
///
/// Panics on any rank or dimension mismatch.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    conv2d_backward_with(
        input,
        weight,
        grad_out,
        spec,
        default_conv_config(input, weight),
    )
}

/// [`conv2d_backward`] with an explicit thread configuration and no size
/// threshold — `cfg.threads() == 1` runs the exact sequential kernel on
/// the calling thread.
///
/// # Panics
///
/// Panics on any rank or dimension mismatch.
pub fn conv2d_backward_with(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    cfg: ParallelConfig,
) -> (Tensor, Tensor, Tensor) {
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oc = weight.dims()[0];
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    assert_eq!(
        grad_out.dims(),
        &[n, oc, oh, ow],
        "conv2d_backward grad_out shape mismatch"
    );

    let k2 = spec.kernel * spec.kernel;
    // Weight is [oc, ic, k, k] per the forward contract. lint: allow(no-expect)
    let w_mat = weight.reshape([oc, ic * k2]).expect("weight reshape");
    let w_mat_t = w_mat.transpose();

    let img_len = ic * h * w;
    let out_len = oc * oh * ow;

    // Per-sample partials `(dcols→image, dW, db)` fan out across workers.
    // Inner matmuls stay sequential: the sample axis already saturates the
    // configured threads, and nesting scopes would oversubscribe.
    let inner = ParallelConfig::sequential();
    let partials = pool::map_indexed(n, cfg.threads(), |s| {
        let go = Tensor::from_parts(
            [oc, oh * ow],
            grad_out.data()[s * out_len..(s + 1) * out_len].to_vec(),
        );
        // Bias gradient: sum over spatial positions.
        let gb: Vec<f32> = (0..oc).map(|ch| go.row(ch).iter().sum::<f32>()).collect();
        // Weight gradient: dW_s = dY · colsᵀ.
        let cols = im2col(
            &input.data()[s * img_len..(s + 1) * img_len],
            ic,
            h,
            w,
            spec,
        );
        let gw = go
            .try_matmul_with(&cols.transpose(), inner)
            .unwrap_or_else(|_| unreachable!());
        // Input gradient: dcols = Wᵀ · dY, scattered by col2im.
        let dcols = w_mat_t
            .try_matmul_with(&go, inner)
            .unwrap_or_else(|_| unreachable!());
        (col2im(&dcols, ic, h, w, spec), gw, gb)
    });

    // Merge in sample order: the accumulation sequence (and therefore
    // every rounding step) is the one the sequential loop performs.
    let mut grad_input = Vec::with_capacity(n * img_len);
    let mut grad_w = Tensor::zeros([oc, ic * k2]);
    let mut grad_b = vec![0.0f32; oc];
    for (gi_s, gw_s, gb_s) in partials {
        grad_input.extend(gi_s);
        grad_w.axpy(1.0, &gw_s);
        for (gb, g) in grad_b.iter_mut().zip(gb_s) {
            *gb += g;
        }
    }

    (
        Tensor::from_parts([n, ic, h, w], grad_input),
        // grad_w was allocated as [oc, ic * k2]. lint: allow(no-expect)
        grad_w
            .into_reshaped([oc, ic, spec.kernel, spec.kernel])
            .expect("grad_w reshape"),
        Tensor::from_parts([oc], grad_b),
    )
}

/// Non-overlapping average pooling over `window × window` tiles.
///
/// Input `[n, c, h, w]` with `h`, `w` divisible by `window`; output
/// `[n, c, h/window, w/window]`.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `window`.
pub fn avg_pool2d(input: &Tensor, window: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "avg_pool2d input must be [n, c, h, w]");
    assert!(window > 0, "window must be positive");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert_eq!(h % window, 0, "height {h} not divisible by window {window}");
    assert_eq!(w % window, 0, "width {w} not divisible by window {window}");
    let (oh, ow) = (h / window, w / window);
    let scale = 1.0 / (window * window) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            let obase = (s * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..window {
                        for dx in 0..window {
                            acc += input.data()[base + (oy * window + dy) * w + ox * window + dx];
                        }
                    }
                    out[obase + oy * ow + ox] = acc * scale;
                }
            }
        }
    }
    // `out` was allocated as n * c * oh * ow zeros. lint: allow(no-expect)
    Tensor::from_vec(out, [n, c, oh, ow]).expect("avg_pool2d volume by construction")
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient evenly over
/// its input window.
///
/// # Panics
///
/// Panics on shape mismatch between `grad_out` and the pooled geometry.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_h: usize,
    input_w: usize,
    window: usize,
) -> Tensor {
    assert_eq!(
        grad_out.rank(),
        4,
        "avg_pool2d_backward grad must be [n, c, oh, ow]"
    );
    let (n, c, oh, ow) = (
        grad_out.dims()[0],
        grad_out.dims()[1],
        grad_out.dims()[2],
        grad_out.dims()[3],
    );
    assert_eq!(oh * window, input_h, "pooled height mismatch");
    assert_eq!(ow * window, input_w, "pooled width mismatch");
    let scale = 1.0 / (window * window) as f32;
    let mut out = vec![0.0f32; n * c * input_h * input_w];
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * input_h * input_w;
            let obase = (s * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.data()[obase + oy * ow + ox] * scale;
                    for dy in 0..window {
                        for dx in 0..window {
                            out[base + (oy * window + dy) * input_w + ox * window + dx] += g;
                        }
                    }
                }
            }
        }
    }
    // `out` was allocated as n * c * input_h * input_w zeros. lint: allow(no-expect)
    Tensor::from_vec(out, [n, c, input_h, input_w]).expect("avg_pool2d_backward volume")
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(
        input.rank(),
        4,
        "global_avg_pool input must be [n, c, h, w]"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let scale = 1.0 / (h * w) as f32;
    let mut out = Vec::with_capacity(n * c);
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            out.push(input.data()[base..base + h * w].iter().sum::<f32>() * scale);
        }
    }
    // The loop pushes exactly n * c means. lint: allow(no-expect)
    Tensor::from_vec(out, [n, c]).expect("global_avg_pool volume")
}

/// Backward pass of [`global_avg_pool`].
pub fn global_avg_pool_backward(grad_out: &Tensor, h: usize, w: usize) -> Tensor {
    assert_eq!(
        grad_out.rank(),
        2,
        "global_avg_pool_backward grad must be [n, c]"
    );
    let (n, c) = (grad_out.dims()[0], grad_out.dims()[1]);
    let scale = 1.0 / (h * w) as f32;
    let mut out = Vec::with_capacity(n * c * h * w);
    for &g in grad_out.data() {
        out.extend(std::iter::repeat_n(g * scale, h * w));
    }
    // Each of the n * c gradients spreads into h * w cells. lint: allow(no-expect)
    Tensor::from_vec(out, [n, c, h, w]).expect("global_avg_pool_backward volume")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_size_formula() {
        let spec = Conv2dSpec::new(3, 1, 1);
        assert_eq!(spec.out_size(8), 8); // "same" convolution
        assert_eq!(Conv2dSpec::new(3, 2, 1).out_size(8), 4);
        assert_eq!(Conv2dSpec::new(2, 2, 0).out_size(8), 4);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 and bias 0 is the identity.
        let input = Tensor::arange(2 * 3 * 4)
            .into_reshaped([1, 2, 3, 4])
            .unwrap();
        let mut weight = Tensor::zeros([2, 2, 1, 1]);
        weight.set(&[0, 0, 0, 0], 1.0);
        weight.set(&[1, 1, 0, 0], 1.0);
        let out = conv2d(
            &input,
            &weight,
            &Tensor::zeros([2]),
            Conv2dSpec::new(1, 1, 0),
        );
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_hand_computed() {
        // 1 sample, 1 channel, 3x3 input; 2x2 kernel of ones, stride 1: each
        // output is the sum of a 2x2 window.
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            [1, 1, 3, 3],
        )
        .unwrap();
        let weight = Tensor::ones([1, 1, 2, 2]);
        let bias = Tensor::from_vec(vec![0.5], [1]).unwrap();
        let out = conv2d(&input, &weight, &bias, Conv2dSpec::new(2, 1, 0));
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv2d_padding_zero_extends() {
        let input = Tensor::ones([1, 1, 2, 2]);
        let weight = Tensor::ones([1, 1, 3, 3]);
        let out = conv2d(
            &input,
            &weight,
            &Tensor::zeros([1]),
            Conv2dSpec::new(3, 1, 1),
        );
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        // Every 3x3 window sees exactly the 4 ones.
        assert_eq!(out.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    /// Finite-difference check of every conv2d gradient.
    #[test]
    fn conv2d_backward_matches_finite_differences() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let spec = Conv2dSpec::new(3, 2, 1);
        let input = Tensor::randn([2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn([3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn([3], 0.0, 0.5, &mut rng);

        // Scalar objective: sum of outputs, so dL/dy = 1 everywhere.
        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| conv2d(inp, wt, b, spec).sum();
        let out = conv2d(&input, &weight, &bias, spec);
        let ones = Tensor::ones(out.shape().clone());
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &ones, spec);

        let eps = 1e-2;
        let check = |analytic: &Tensor, which: &str, perturb: &dyn Fn(usize, f32) -> f32| {
            for probe in [0usize, analytic.len() / 2, analytic.len() - 1] {
                let num = (perturb(probe, eps) - perturb(probe, -eps)) / (2.0 * eps);
                let ana = analytic.data()[probe];
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                    "{which}[{probe}]: numeric {num} vs analytic {ana}"
                );
            }
        };
        check(&gi, "grad_input", &|i, d| {
            let mut p = input.clone();
            p.data_mut()[i] += d;
            loss(&p, &weight, &bias)
        });
        check(&gw, "grad_weight", &|i, d| {
            let mut p = weight.clone();
            p.data_mut()[i] += d;
            loss(&input, &p, &bias)
        });
        check(&gb, "grad_bias", &|i, d| {
            let mut p = bias.clone();
            p.data_mut()[i] += d;
            loss(&input, &weight, &p)
        });
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            [1, 1, 4, 4],
        )
        .unwrap();
        let out = avg_pool2d(&input, 2);
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[3.5, 5.5, 11.5, 13.5]);
        let grad = avg_pool2d_backward(&Tensor::ones([1, 1, 2, 2]), 4, 4, 2);
        // Each input cell receives 1/4 of its window's gradient.
        assert!(grad.data().iter().all(|&g| (g - 0.25).abs() < 1e-7));
        assert!((grad.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = Tensor::arange(2 * 3 * 2 * 2)
            .into_reshaped([2, 3, 2, 2])
            .unwrap();
        let out = global_avg_pool(&input);
        assert_eq!(out.dims(), &[2, 3]);
        assert_eq!(out.at(&[0, 0]), 1.5); // mean of 0..4
        let back = global_avg_pool_backward(&out, 2, 2);
        assert_eq!(back.dims(), &[2, 3, 2, 2]);
        assert!((back.at(&[0, 0, 0, 0]) - 1.5 / 4.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn avg_pool_rejects_indivisible() {
        avg_pool2d(&Tensor::zeros([1, 1, 3, 3]), 2);
    }

    #[test]
    fn conv2d_parallel_is_bit_identical_to_sequential() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn([3, 2, 6, 6], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn([4, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn([4], 0.0, 0.5, &mut rng);
        let grad = Tensor::randn([3, 4, 6, 6], 0.0, 1.0, &mut rng);

        let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        let seq = conv2d_with(&input, &weight, &bias, spec, ParallelConfig::sequential());
        let (si, sw, sb) =
            conv2d_backward_with(&input, &weight, &grad, spec, ParallelConfig::sequential());
        for threads in [2, 3, 4, 8] {
            let cfg = ParallelConfig::with_threads(threads);
            let par = conv2d_with(&input, &weight, &bias, spec, cfg);
            assert_eq!(bits(&seq), bits(&par), "forward, threads={threads}");
            let (pi, pw, pb) = conv2d_backward_with(&input, &weight, &grad, spec, cfg);
            assert_eq!(bits(&si), bits(&pi), "grad_input, threads={threads}");
            assert_eq!(bits(&sw), bits(&pw), "grad_weight, threads={threads}");
            assert_eq!(bits(&sb), bits(&pb), "grad_bias, threads={threads}");
        }
    }

    #[test]
    fn conv2d_handles_empty_batch() {
        for threads in [1, 4] {
            let cfg = ParallelConfig::with_threads(threads);
            let out = conv2d_with(
                &Tensor::zeros([0, 2, 4, 4]),
                &Tensor::zeros([3, 2, 3, 3]),
                &Tensor::zeros([3]),
                Conv2dSpec::new(3, 1, 1),
                cfg,
            );
            assert_eq!(out.dims(), &[0, 3, 4, 4]);
            let (gi, gw, gb) = conv2d_backward_with(
                &Tensor::zeros([0, 2, 4, 4]),
                &Tensor::zeros([3, 2, 3, 3]),
                &out,
                Conv2dSpec::new(3, 1, 1),
                cfg,
            );
            assert_eq!(gi.dims(), &[0, 2, 4, 4]);
            assert_eq!(gw.dims(), &[3, 2, 3, 3]);
            assert_eq!(gb.dims(), &[3]);
        }
    }
}
