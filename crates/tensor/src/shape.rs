//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// Shapes are row-major: the last dimension varies fastest in memory.
///
/// # Examples
///
/// ```
/// use teamnet_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions, outermost first.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a rank-0 (scalar) shape with volume 1.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimensions as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements (product of all dimensions; 1 for a
    /// scalar shape).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides: `strides()[i]` is the linear distance between two
    /// elements whose indices differ by one in dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (flat) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.rank()` or any component is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.dims.len()).rev() {
            assert!(
                index[i] < self.dims[i],
                "index {} out of bounds for dimension {} of size {}",
                index[i],
                i,
                self.dims[i]
            );
            off += index[i] * stride;
            stride *= self.dims[i];
        }
        off
    }

    /// Inverse of [`Shape::offset`]: the multi-dimensional index of a flat
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.volume()`.
    pub fn unravel(&self, offset: usize) -> Vec<usize> {
        assert!(
            offset < self.volume().max(1),
            "offset {offset} out of range"
        );
        let mut index = vec![0; self.dims.len()];
        let mut rem = offset;
        for i in (0..self.dims.len()).rev() {
            index[i] = rem % self.dims[i];
            rem /= self.dims[i];
        }
        index
    }

    /// Returns true when element-wise binary operations may be applied
    /// between tensors of shape `self` and `other` (identical dims).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        assert_eq!(Shape::new(vec![2, 3, 4]).volume(), 24);
        assert_eq!(Shape::new(vec![5]).volume(), 5);
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_unravel_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        for off in 0..s.volume() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(vec![2, 2]).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn offset_rejects_wrong_rank() {
        Shape::new(vec![2, 2]).offset(&[0]);
    }

    #[test]
    fn conversion_from_arrays_and_slices() {
        let a: Shape = [2, 3].into();
        let b: Shape = vec![2, 3].into();
        let c: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn display_matches_debug() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(format!("{s}"), format!("{s:?}"));
        assert_eq!(format!("{s}"), "[2, 3]");
    }
}
