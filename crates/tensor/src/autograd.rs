//! A small reverse-mode automatic-differentiation tape.
//!
//! TeamNet's dynamic gate (Algorithm 2 of the paper) trains a multilayer
//! perceptron `W(z, Θ)` through a chain of soft-argmin, Kronecker-delta
//! approximation and absolute-deviation operations. Hand-deriving that
//! gradient is error-prone, so this module provides a classic Wengert tape:
//! operations append nodes in topological order and [`Tape::backward`]
//! propagates adjoints in reverse.
//!
//! The expert networks themselves use the faster hand-written layer
//! backward passes in `teamnet-nn`; the tape is reserved for small, twisty
//! computations like the gate loss.
//!
//! # Examples
//!
//! ```
//! use teamnet_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.param(Tensor::from_vec(vec![3.0], [1])?);
//! let y = tape.mul(x, x); // y = x²
//! let grads = tape.backward(y)?;
//! assert_eq!(grads.of(x).unwrap().data(), &[6.0]); // dy/dx = 2x
//! # Ok::<(), teamnet_tensor::TensorError>(())
//! ```

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    Tanh(Var),
    Abs(Var),
    Exp(Var),
    Matmul(Var, Var),
    /// `[rows, cols] + [cols]`, broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `[rows, cols] * [cols]`, broadcast over rows.
    MulRowBroadcast(Var, Var),
    /// `[rows, 1] → [rows, k]`, value replicated across columns.
    BroadcastCols(Var, usize),
    /// Mean over axis 0: `[rows, cols] → [cols]`.
    MeanAxis0(Var),
    /// Row-wise softmax of a rank-2 tensor.
    SoftmaxRows(Var),
    /// Sum of all elements → scalar.
    Sum(Var),
    /// Mean of all elements → scalar.
    Mean(Var),
    /// Shape change with identical volume.
    Reshape(Var),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// Gradients returned by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the backward seed with respect to `var`, or `None`
    /// if `var` did not require gradients or was not reached.
    pub fn of(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }
}

/// A reverse-mode autodiff tape over [`Tensor`] values.
///
/// Nodes are appended in topological order by construction, so the backward
/// sweep is a single reverse pass. A `Tape` is intended to be built, run
/// backward once, and dropped; re-use across iterations is done by building
/// a fresh tape (cheap — values are moved in, not copied).
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of `var`.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Records a trainable leaf (gradients will be computed for it).
    pub fn param(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a constant leaf (no gradient is accumulated for it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn unary(&mut self, a: Var, value: Tensor, op: Op) -> Var {
        let rg = self.nodes[a.0].requires_grad;
        self.push(value, op, rg)
    }

    fn binary(&mut self, a: Var, b: Var, value: Tensor, op: Op) -> Var {
        let rg = self.nodes[a.0].requires_grad || self.nodes[b.0].requires_grad;
        self.push(value, op, rg)
    }

    /// Element-wise sum. Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.binary(a, b, v, Op::Add(a, b))
    }

    /// Element-wise difference. Panics on shape mismatch.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.binary(a, b, v, Op::Sub(a, b))
    }

    /// Element-wise product. Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value * &self.nodes[b.0].value;
        self.binary(a, b, v, Op::Mul(a, b))
    }

    /// Element-wise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = -&self.nodes[a.0].value;
        self.unary(a, v, Op::Neg(a))
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.unary(a, v, Op::Scale(a, s))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.add_scalar(s);
        self.unary(a, v, Op::AddScalar(a))
    }

    /// Rectified linear unit (subgradient 0 at the kink).
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.relu();
        self.unary(a, v, Op::Relu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.tanh();
        self.unary(a, v, Op::Tanh(a))
    }

    /// Absolute value (subgradient 0 at the kink).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.abs();
        self.unary(a, v, Op::Abs(a))
    }

    /// Natural exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.exp();
        self.unary(a, v, Op::Exp(a))
    }

    /// Matrix product of two rank-2 values. Panics on dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.binary(a, b, v, Op::Matmul(a, b))
    }

    /// Adds a `[cols]` row vector to every row of a `[rows, cols]` matrix.
    pub fn add_row_broadcast(&mut self, m: Var, row: Var) -> Var {
        let v = self.nodes[m.0]
            .value
            .add_row_broadcast(&self.nodes[row.0].value);
        self.binary(m, row, v, Op::AddRowBroadcast(m, row))
    }

    /// Multiplies every row of a `[rows, cols]` matrix element-wise by a
    /// `[cols]` vector.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `m` is rank 2 and `row` is
    /// rank 1; [`TensorError::ShapeMismatch`] when the column counts
    /// differ. Shape bugs in tape programs built from untrusted request
    /// tensors surface here as values, not panics.
    pub fn mul_row_broadcast(&mut self, m: Var, row: Var) -> Result<Var, TensorError> {
        let mv = &self.nodes[m.0].value;
        let rv = &self.nodes[row.0].value;
        if mv.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "mul_row_broadcast",
                expected: 2,
                got: mv.rank(),
            });
        }
        if rv.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "mul_row_broadcast",
                expected: 1,
                got: rv.rank(),
            });
        }
        if mv.dims()[1] != rv.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                left: format!("{:?}", mv.dims()),
                right: format!("{:?}", rv.dims()),
                op: "mul_row_broadcast",
            });
        }
        let mut out = mv.clone();
        for r in 0..mv.dims()[0] {
            for (o, &s) in out.row_mut(r).iter_mut().zip(rv.data()) {
                *o *= s;
            }
        }
        Ok(self.binary(m, row, out, Op::MulRowBroadcast(m, row)))
    }

    /// Replicates a `[rows, 1]` column across `k` columns → `[rows, k]`.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `a` is rank 2,
    /// [`TensorError::ShapeMismatch`] unless it has exactly one column,
    /// and the underlying construction error when `k` is zero.
    pub fn broadcast_cols(&mut self, a: Var, k: usize) -> Result<Var, TensorError> {
        let av = &self.nodes[a.0].value;
        if av.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "broadcast_cols",
                expected: 2,
                got: av.rank(),
            });
        }
        if av.dims()[1] != 1 {
            return Err(TensorError::ShapeMismatch {
                left: format!("{:?}", av.dims()),
                right: "[rows, 1]".to_string(),
                op: "broadcast_cols",
            });
        }
        let rows = av.dims()[0];
        let mut out = Vec::with_capacity(rows * k);
        for r in 0..rows {
            out.extend(std::iter::repeat_n(av.data()[r], k));
        }
        let v = Tensor::from_vec(out, [rows, k])?;
        Ok(self.unary(a, v, Op::BroadcastCols(a, k)))
    }

    /// Mean over rows of a `[rows, cols]` matrix → `[cols]`.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `a` is rank 2.
    pub fn mean_axis0(&mut self, a: Var) -> Result<Var, TensorError> {
        let av = &self.nodes[a.0].value;
        if av.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "mean_axis0",
                expected: 2,
                got: av.rank(),
            });
        }
        let rows = av.dims()[0] as f32;
        let v = av.sum_cols().scale(1.0 / rows);
        Ok(self.unary(a, v, Op::MeanAxis0(a)))
    }

    /// Row-wise softmax of a rank-2 value.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.softmax_rows();
        self.unary(a, v, Op::SoftmaxRows(a))
    }

    /// Sum of all elements, as a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.unary(a, v, Op::Sum(a))
    }

    /// Mean of all elements, as a scalar node.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.mean());
        self.unary(a, v, Op::Mean(a))
    }

    /// Reshapes a value to new dimensions of identical volume.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Result<Var, TensorError> {
        let v = self.nodes[a.0].value.reshape(dims.to_vec())?;
        Ok(self.unary(a, v, Op::Reshape(a)))
    }

    /// Runs the backward sweep from `seed` (which must be a scalar node)
    /// and returns the accumulated gradients.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] if `seed` holds more than one
    /// element. A tape built only through this module's own operations
    /// cannot fail mid-sweep, but the propagation errors are still typed
    /// rather than panicking so a shape bug in a new op degrades to a
    /// rejected request instead of a dead worker.
    pub fn backward(&self, seed: Var) -> Result<Gradients, TensorError> {
        let seed_len = self.nodes[seed.0].value.len();
        if seed_len != 1 {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: seed_len,
            });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[seed.0] = Some(Tensor::full(self.nodes[seed.0].value.shape().clone(), 1.0));

        for i in (0..=seed.0).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            if !self.nodes[i].requires_grad {
                continue;
            }
            self.propagate(i, &g, &mut grads)?;
            grads[i] = Some(g);
        }
        Ok(Gradients { grads })
    }

    fn accumulate(&self, grads: &mut [Option<Tensor>], var: Var, delta: Tensor) {
        if !self.nodes[var.0].requires_grad {
            return;
        }
        match &mut grads[var.0] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(
        &self,
        i: usize,
        g: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<(), TensorError> {
        match self.nodes[i].op.clone() {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(grads, a, g.clone());
                self.accumulate(grads, b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(grads, a, g.clone());
                self.accumulate(grads, b, -g);
            }
            Op::Mul(a, b) => {
                let ga = g * &self.nodes[b.0].value;
                let gb = g * &self.nodes[a.0].value;
                self.accumulate(grads, a, ga);
                self.accumulate(grads, b, gb);
            }
            Op::Neg(a) => self.accumulate(grads, a, -g),
            Op::Scale(a, s) => self.accumulate(grads, a, g.scale(s)),
            Op::AddScalar(a) => self.accumulate(grads, a, g.clone()),
            Op::Relu(a) => {
                let mask = self.nodes[a.0]
                    .value
                    .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                self.accumulate(grads, a, g * &mask);
            }
            Op::Tanh(a) => {
                // d tanh = 1 - tanh², using the cached forward value.
                let one_minus = self.nodes[i].value.map(|y| 1.0 - y * y);
                self.accumulate(grads, a, g * &one_minus);
            }
            Op::Abs(a) => {
                let sign = self.nodes[a.0].value.map(|x| {
                    if x > 0.0 {
                        1.0
                    } else if x < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                });
                self.accumulate(grads, a, g * &sign);
            }
            Op::Exp(a) => {
                let gy = g * &self.nodes[i].value;
                self.accumulate(grads, a, gy);
            }
            Op::Matmul(a, b) => {
                let ga = g.matmul(&self.nodes[b.0].value.transpose());
                let gb = self.nodes[a.0].value.transpose().matmul(g);
                self.accumulate(grads, a, ga);
                self.accumulate(grads, b, gb);
            }
            Op::AddRowBroadcast(m, row) => {
                self.accumulate(grads, m, g.clone());
                self.accumulate(grads, row, g.sum_cols());
            }
            Op::MulRowBroadcast(m, row) => {
                let mv = &self.nodes[m.0].value;
                let rv = &self.nodes[row.0].value;
                let mut gm = g.clone();
                for r in 0..gm.dims()[0] {
                    for (o, &s) in gm.row_mut(r).iter_mut().zip(rv.data()) {
                        *o *= s;
                    }
                }
                self.accumulate(grads, m, gm);
                self.accumulate(grads, row, (g * mv).sum_cols());
            }
            Op::BroadcastCols(a, _k) => {
                let rows = self.nodes[a.0].value.dims()[0];
                let summed = g.sum_rows().into_reshaped([rows, 1])?;
                self.accumulate(grads, a, summed);
            }
            Op::MeanAxis0(a) => {
                let rows = self.nodes[a.0].value.dims()[0];
                let cols = self.nodes[a.0].value.dims()[1];
                let scale = 1.0 / rows as f32;
                let mut out = Vec::with_capacity(rows * cols);
                for _ in 0..rows {
                    out.extend(g.data().iter().map(|&x| x * scale));
                }
                let t = Tensor::from_vec(out, [rows, cols])?;
                self.accumulate(grads, a, t);
            }
            Op::SoftmaxRows(a) => {
                // dx = s ⊙ (g − (g·s) 1ᵀ) per row.
                let s = &self.nodes[i].value;
                let mut out = g.clone();
                for r in 0..s.dims()[0] {
                    let srow = s.row(r);
                    let grow = out.row_mut(r);
                    let dot: f32 = grow.iter().zip(srow).map(|(&gv, &sv)| gv * sv).sum();
                    for (o, &sv) in grow.iter_mut().zip(srow) {
                        *o = sv * (*o - dot);
                    }
                }
                self.accumulate(grads, a, out);
            }
            Op::Sum(a) => {
                let shape = self.nodes[a.0].value.shape().clone();
                self.accumulate(grads, a, Tensor::full(shape, g.item()));
            }
            Op::Mean(a) => {
                let n = self.nodes[a.0].value.len() as f32;
                let shape = self.nodes[a.0].value.shape().clone();
                self.accumulate(grads, a, Tensor::full(shape, g.item() / n));
            }
            Op::Reshape(a) => {
                let dims = self.nodes[a.0].value.dims().to_vec();
                let back = g.reshape(dims)?;
                self.accumulate(grads, a, back);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Checks d(loss)/d(param) against central finite differences for an
    /// arbitrary scalar-valued tape program.
    fn finite_diff_check(
        build: impl Fn(&mut Tape, Tensor) -> (Var, Var), // (param, loss)
        param: Tensor,
        tol: f32,
    ) {
        let mut tape = Tape::new();
        let (p, loss) = build(&mut tape, param.clone());
        let grads = tape.backward(loss).unwrap();
        let analytic = grads.of(p).expect("param must receive a gradient").clone();

        let eps = 1e-3;
        for idx in 0..param.len() {
            let mut plus = param.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = param.clone();
            minus.data_mut()[idx] -= eps;
            let mut tp = Tape::new();
            let (_, lp) = build(&mut tp, plus);
            let mut tm = Tape::new();
            let (_, lm) = build(&mut tm, minus);
            let num = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
            let ana = analytic.data()[idx];
            assert!(
                (num - ana).abs() < tol * (1.0 + ana.abs()),
                "grad[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn square_gradient() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![3.0], [1]).unwrap());
        let y = tape.mul(x, x);
        let s = tape.sum(y);
        let grads = tape.backward(s).unwrap();
        assert_eq!(grads.of(x).unwrap().data(), &[6.0]);
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![2.0], [1]).unwrap());
        let c = tape.constant(Tensor::from_vec(vec![5.0], [1]).unwrap());
        let y = tape.mul(x, c);
        let s = tape.sum(y);
        let grads = tape.backward(s).unwrap();
        assert_eq!(grads.of(x).unwrap().data(), &[5.0]);
        assert!(grads.of(c).is_none());
    }

    #[test]
    fn gradient_accumulates_across_fanout() {
        // y = x*x + x  =>  dy/dx = 2x + 1
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![4.0], [1]).unwrap());
        let sq = tape.mul(x, x);
        let y = tape.add(sq, x);
        let s = tape.sum(y);
        let grads = tape.backward(s).unwrap();
        assert_eq!(grads.of(x).unwrap().data(), &[9.0]);
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = Tensor::randn([3, 2], 0.0, 1.0, &mut rng);
        finite_diff_check(
            move |tape, p| {
                let p_var = tape.param(p);
                let b_var = tape.constant(b.clone());
                let y = tape.matmul(p_var, b_var);
                let loss = tape.sum(y);
                (p_var, loss)
            },
            Tensor::randn([2, 3], 0.0, 1.0, &mut rng),
            1e-2,
        );
    }

    #[test]
    fn mlp_like_chain_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let bias = Tensor::randn([2], 0.0, 1.0, &mut rng);
        finite_diff_check(
            move |tape, p| {
                let w = tape.param(p);
                let xv = tape.constant(x.clone());
                let bv = tape.constant(bias.clone());
                let h = tape.matmul(xv, w);
                let hb = tape.add_row_broadcast(h, bv);
                let a = tape.tanh(hb);
                let loss = tape.mean(a);
                (w, loss)
            },
            Tensor::randn([3, 2], 0.0, 0.7, &mut rng),
            2e-2,
        );
    }

    #[test]
    fn softmax_rows_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(13);
        let weights = Tensor::randn([2, 4], 0.0, 1.0, &mut rng);
        finite_diff_check(
            move |tape, p| {
                let x = tape.param(p);
                let s = tape.softmax_rows(x);
                let w = tape.constant(weights.clone());
                let y = tape.mul(s, w);
                let loss = tape.sum(y);
                (x, loss)
            },
            Tensor::randn([2, 4], 0.0, 1.0, &mut rng),
            2e-2,
        );
    }

    #[test]
    fn gate_shaped_program_matches_finite_differences() {
        // The exact op chain Algorithm 2 uses: δ = 1 + Φ·Δ; soft-argmin of
        // δ⊙H; Kronecker approximation; per-expert means; L1 distance.
        let mut rng = StdRng::seed_from_u64(14);
        let entropy = Tensor::rand_uniform([6, 3], 0.1, 2.0, &mut rng);
        let target = Tensor::from_vec(vec![0.3, 0.3, 0.4], [3]).unwrap();
        finite_diff_check(
            move |tape, phi| {
                let k = 3usize;
                let phi_var = tape.param(phi); // stands in for W(z, Θ) output, shape [k]
                let delta = {
                    let scaled = tape.scale(phi_var, 0.5); // Δ = 0.5
                    tape.add_scalar(scaled, 1.0)
                };
                let h = tape.constant(entropy.clone());
                let weighted = tape.mul_row_broadcast(h, delta).unwrap();
                let neg = tape.scale(weighted, -4.0); // b = 4
                let soft = tape.softmax_rows(neg);
                let idx = tape.constant(Tensor::arange(k).into_reshaped([k, 1]).unwrap());
                let gbar = tape.matmul(soft, idx); // [n, 1]
                let rep = tape.broadcast_cols(gbar, k).unwrap();
                let ids = tape.constant(Tensor::arange(k).scale(-1.0));
                let shifted = tape.add_row_broadcast(rep, ids);
                let dist = tape.abs(shifted);
                let ndist = tape.neg(dist);
                let ramp = tape.add_scalar(ndist, 0.5);
                let r = tape.relu(ramp);
                let sc = tape.scale(r, 10.0);
                let kron = tape.tanh(sc);
                let gamma_bar = tape.mean_axis0(kron).unwrap();
                let tv = tape.constant(target.clone());
                let diff = tape.sub(gamma_bar, tv);
                let adiff = tape.abs(diff);
                let total = tape.sum(adiff);
                let loss = tape.scale(total, 1.0 / k as f32);
                (phi_var, loss)
            },
            Tensor::rand_uniform([3], -0.4, 0.4, &mut rng),
            5e-2,
        );
    }

    #[test]
    fn exp_abs_neg_ops() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![-2.0, 0.5], [2]).unwrap());
        let e = tape.exp(x);
        let a = tape.abs(x);
        let n = tape.neg(x);
        let s1 = tape.sum(e);
        assert!((tape.value(s1).item() - ((-2.0f32).exp() + 0.5f32.exp())).abs() < 1e-6);
        let s2 = tape.sum(a);
        assert!((tape.value(s2).item() - 2.5).abs() < 1e-6);
        let s3 = tape.sum(n);
        assert!((tape.value(s3).item() - 1.5).abs() < 1e-6);
        let g = tape.backward(s2).unwrap();
        assert_eq!(g.of(x).unwrap().data(), &[-1.0, 1.0]);
    }

    #[test]
    fn reshape_passes_gradient_through() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap());
        let flat = tape.reshape(x, &[4]).unwrap();
        let y = tape.mul(flat, flat);
        let s = tape.sum(y);
        let grads = tape.backward(s).unwrap();
        let gx = grads.of(x).unwrap();
        assert_eq!(gx.dims(), &[2, 2]);
        assert_eq!(gx.data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn backward_rejects_nonscalar_seed() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::zeros([2]));
        assert_eq!(
            tape.backward(x).unwrap_err(),
            TensorError::LengthMismatch {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn shape_errors_are_typed_not_panics() {
        // The exact failures a malformed client tensor can push into a
        // tape program: each surfaces as a value the serving layer can
        // turn into a rejection.
        let mut tape = Tape::new();
        let vec1 = tape.param(Tensor::zeros([3]));
        let mat = tape.param(Tensor::zeros([2, 3]));
        let wide = tape.param(Tensor::zeros([2, 2]));
        assert!(matches!(
            tape.mul_row_broadcast(vec1, vec1).unwrap_err(),
            TensorError::RankMismatch {
                op: "mul_row_broadcast",
                expected: 2,
                ..
            }
        ));
        assert!(matches!(
            tape.mul_row_broadcast(mat, mat).unwrap_err(),
            TensorError::RankMismatch {
                op: "mul_row_broadcast",
                expected: 1,
                ..
            }
        ));
        assert!(matches!(
            tape.mul_row_broadcast(wide, vec1).unwrap_err(),
            TensorError::ShapeMismatch {
                op: "mul_row_broadcast",
                ..
            }
        ));
        assert!(matches!(
            tape.broadcast_cols(vec1, 4).unwrap_err(),
            TensorError::RankMismatch {
                op: "broadcast_cols",
                ..
            }
        ));
        assert!(matches!(
            tape.broadcast_cols(wide, 4).unwrap_err(),
            TensorError::ShapeMismatch {
                op: "broadcast_cols",
                ..
            }
        ));
        assert!(matches!(
            tape.mean_axis0(vec1).unwrap_err(),
            TensorError::RankMismatch {
                op: "mean_axis0",
                ..
            }
        ));
        assert!(matches!(
            tape.reshape(mat, &[5]).unwrap_err(),
            TensorError::LengthMismatch { .. }
        ));
    }
}
