//! The dense row-major `f32` tensor at the heart of the reproduction.

use crate::error::TensorError;
use crate::memtrack::TrackedVec;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, contiguously stored `f32` tensor.
///
/// This is the single numeric container used by every crate in the
/// workspace: network activations, weights, gradients, images and entropy
/// matrices are all `Tensor`s.
///
/// # Examples
///
/// ```
/// use teamnet_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), teamnet_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    /// Element buffer; a [`TrackedVec`] so every tensor allocation is
    /// visible to [`crate::MemScope`] accounting (DESIGN.md §13).
    data: TrackedVec,
}

impl Tensor {
    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the volume of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: data.into(),
        })
    }

    /// Infallible constructor for kernels that build `data` to match
    /// `shape` by construction (checked in debug builds only).
    pub(crate) fn from_parts(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        debug_assert_eq!(data.len(), shape.volume(), "from_parts volume mismatch");
        Tensor {
            shape,
            data: data.into(),
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; volume].into(),
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume].into(),
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value].into(),
        }
    }

    /// A 1-D tensor `[0, 1, ..., n-1]` as `f32`s.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape::new(vec![n]),
            data: (0..n).map(|i| i as f32).collect::<Vec<f32>>().into(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions, outermost first. Shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_inner()
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires exactly one element, got {}",
            self.data.len()
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.to_vec(), shape)
    }

    /// Consuming variant of [`Tensor::reshape`]; avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn into_reshaped(self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.into_inner(), shape)
    }

    /// Row `r` of a rank-2 tensor, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// A new rank-2 tensor containing the rows of `self` selected by
    /// `indices`, in order. `self` must be rank ≥ 1; leading dimension is
    /// treated as the row axis and remaining dimensions are flattened.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or the tensor is rank 0.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "select_rows() requires rank >= 1");
        let rows = self.shape.dim(0);
        let rest: usize = self.shape.dims()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * rest);
        for &i in indices {
            assert!(i < rows, "row index {i} out of bounds for {rows} rows");
            data.extend_from_slice(&self.data[i * rest..(i + 1) * rest]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.shape.dims()[1..]);
        Tensor {
            shape: Shape::new(dims),
            data: data.into(),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect::<Vec<f32>>().into(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            self.shape.same_as(&other.shape),
            "zip() requires equal shapes, got {} and {}",
            self.shape,
            other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect::<Vec<f32>>()
                .into(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element in the flat buffer (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax() of an empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// True when every element is finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Squared L2 norm of the flat buffer.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "max_abs_diff() requires equal shapes"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Default for Tensor {
    /// The rank-0 zero tensor.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= PREVIEW {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "{:?}... ({} elements)",
                &self.data[..PREVIEW],
                self.data.len()
            )
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator into a 1-D tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Tensor {
            shape: Shape::new(vec![n]),
            data: data.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full([4], 2.5).sum(), 10.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], [2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], [2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn indexing_and_rows() {
        let mut t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]), 5.0);
        t.set(&[0, 1], 9.0);
        assert_eq!(t.row(0), &[0.0, 9.0, 2.0]);
        t.row_mut(1)[0] = -1.0;
        assert_eq!(t.at(&[1, 0]), -1.0);
    }

    #[test]
    fn select_rows_gathers_in_order() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [3, 2]).unwrap();
        let sel = t.select_rows(&[2, 0, 2]);
        assert_eq!(sel.dims(), &[3, 2]);
        assert_eq!(sel.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn select_rows_flattens_inner_dims() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 2, 2]).unwrap();
        let sel = t.select_rows(&[1]);
        assert_eq!(sel.dims(), &[1, 2, 2]);
        assert_eq!(sel.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], [4]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.norm_sq(), 1.0 + 4.0 + 9.0 + 0.25);
    }

    #[test]
    fn argmax_returns_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0], [3]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]).unwrap();
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 22.0]);
        let mut c = a.clone();
        c.map_inplace(|x| -x);
        assert_eq!(c.data(), &[-1.0, -2.0]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::arange(6);
        let r = t.reshape([2, 3]).unwrap();
        assert_eq!(r.dims(), &[2, 3]);
        assert_eq!(r.at(&[1, 1]), 4.0);
        assert!(t.reshape([4]).is_err());
        let back = r.into_reshaped([6]).unwrap();
        assert_eq!(back.data(), Tensor::arange(6).data());
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut t = Tensor::ones([3]);
        assert!(t.all_finite());
        t.set(&[1], f32::NAN);
        assert!(!t.all_finite());
        t.set(&[1], f32::INFINITY);
        assert!(!t.all_finite());
    }

    #[test]
    fn debug_is_truncated_but_nonempty() {
        let t = Tensor::zeros([100]);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("100 elements"));
        assert!(dbg.len() < 200);
        assert!(!format!("{:?}", Tensor::default()).is_empty());
    }

    #[test]
    fn tensor_implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Tensor>();
    }

    #[test]
    fn collect_into_tensor() {
        let t: Tensor = (0..3).map(|x| x as f32).collect();
        assert_eq!(t.dims(), &[3]);
    }
}
