//! # teamnet-tensor
//!
//! Dense `f32` tensors, linear algebra, convolution kernels and a small
//! reverse-mode autodiff tape — the numeric substrate of the
//! TeamNet (ICDCS 2019) reproduction. The paper's original implementation
//! runs on TensorFlow; this crate provides the equivalent primitives from
//! scratch so the entire system is self-contained Rust.
//!
//! The crate is deliberately minimal: row-major contiguous storage, shapes
//! checked eagerly, no implicit broadcasting beyond the explicitly named
//! `*_row_broadcast` helpers, and all randomness injected through
//! caller-supplied [`rand::Rng`]s for reproducibility.
//!
//! # Examples
//!
//! ```
//! use teamnet_tensor::Tensor;
//!
//! // A batch of two logit rows → probabilities via softmax.
//! let logits = Tensor::from_vec(vec![2.0, 1.0, 0.1, 0.0, 0.0, 0.0], [2, 3])?;
//! let probs = logits.softmax_rows();
//! assert_eq!(probs.argmax_rows(), vec![0, 0]);
//! # Ok::<(), teamnet_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autograd;
pub mod conv;
mod error;
mod init;
mod linalg;
mod memtrack;
mod ops;
pub mod pool;
mod shape;
mod tensor;

pub use autograd::{Gradients, Tape, Var};
pub use error::TensorError;
pub use memtrack::{MemScope, MemStats};
pub use ops::{argmax_slice, softmax_in_place};
pub use pool::{force_sequential_scope, ParallelConfig};
pub use shape::Shape;
pub use tensor::Tensor;
