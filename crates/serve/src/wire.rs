//! The framed client protocol: how serving requests and replies cross a
//! byte stream.
//!
//! This is deliberately *not* the cluster's [`teamnet_net::Envelope`]
//! protocol: clients are outside the trust and versioning boundary of the
//! master↔worker mesh, so they get their own minimal framing —
//! `magic | kind | request id | length | crc32 | payload` — with the same
//! defensive posture (length bound before allocation, CRC before decode).
//! `cargo xtask protocol` audits that every [`ServeMsgKind`] is
//! constructed by real producers and dispatched in the TCP front-end
//! (`crates/serve/src/tcp.rs`).

use crate::error::ServeError;
use std::io::{Read, Write};
use teamnet_core::TeamPrediction;
use teamnet_net::{crc32, TraceContext};

/// Frame magic: `b"TSRV"` little-endian, so a stray connection speaking
/// the wrong protocol fails fast instead of mis-decoding.
pub const SERVE_MAGIC: u32 = 0x5652_5354;

/// Frame header length: magic(4) | kind(1) | req_id(8) | len(4) | crc(4).
pub const SERVE_HEADER_LEN: usize = 21;

/// High bit of the kind byte: the header is followed by a 16-byte trace
/// extension (`trace_id: u64 | parent_span: u64`, little-endian), covered
/// by the frame CRC together with the payload. Untraced frames stay
/// byte-identical to the pre-tracing protocol (DESIGN.md §17).
pub const SERVE_TRACE_FLAG: u8 = 0x80;

/// Length of the optional trace extension.
pub const SERVE_TRACE_EXT_LEN: usize = 16;

/// Largest accepted payload: a 64-row batch of 28×28 images is ~200 KiB;
/// 16 MiB leaves room for generous feature dims while bounding what a
/// malicious length field can make the server allocate.
pub const MAX_SERVE_PAYLOAD: usize = 16 * 1024 * 1024;

/// Message kinds on a serving connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMsgKind {
    /// Client → server: one inference request carrying a tensor payload
    /// ([`teamnet_net::codec::encode_f32s`]).
    Request,
    /// Server → client: per-row winning predictions for a request.
    Reply,
    /// Server → client: a typed [`ServeError`] rejection.
    Reject,
    /// Client → server: clean end of session; the connection closes.
    Goodbye,
}

impl ServeMsgKind {
    fn to_byte(self) -> u8 {
        match self {
            ServeMsgKind::Request => 1,
            ServeMsgKind::Reply => 2,
            ServeMsgKind::Reject => 3,
            ServeMsgKind::Goodbye => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ServeError> {
        match b {
            1 => Ok(ServeMsgKind::Request),
            2 => Ok(ServeMsgKind::Reply),
            3 => Ok(ServeMsgKind::Reject),
            4 => Ok(ServeMsgKind::Goodbye),
            other => Err(ServeError::Malformed(format!(
                "unknown serve message kind {other}"
            ))),
        }
    }
}

/// The trace extension bytes for `ctx`.
fn trace_ext(ctx: TraceContext) -> [u8; SERVE_TRACE_EXT_LEN] {
    let mut ext = [0u8; SERVE_TRACE_EXT_LEN];
    ext[..8].copy_from_slice(&ctx.trace_id.to_le_bytes());
    ext[8..].copy_from_slice(&ctx.parent_span.to_le_bytes());
    ext
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeFrame {
    /// What the frame is.
    pub kind: ServeMsgKind,
    /// Which request it belongs to (client-chosen, echoed by the server).
    pub req_id: u64,
    /// Trace context carried by the [`SERVE_TRACE_FLAG`] extension, if
    /// the sender stamped one.
    pub trace: Option<TraceContext>,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes one untraced frame (byte-identical to the pre-tracing
/// protocol).
pub fn encode_serve_frame(kind: ServeMsgKind, req_id: u64, payload: &[u8]) -> Vec<u8> {
    encode_serve_frame_traced(kind, req_id, None, payload)
}

/// Encodes one frame, stamping the [`SERVE_TRACE_FLAG`] extension when
/// `trace` is given; the CRC covers the extension and the payload.
pub fn encode_serve_frame_traced(
    kind: ServeMsgKind,
    req_id: u64,
    trace: Option<TraceContext>,
    payload: &[u8],
) -> Vec<u8> {
    let ext = trace.map(trace_ext);
    let ext_bytes = if ext.is_some() {
        SERVE_TRACE_EXT_LEN
    } else {
        0
    };
    let mut out = Vec::with_capacity(SERVE_HEADER_LEN + ext_bytes + payload.len());
    out.extend_from_slice(&SERVE_MAGIC.to_le_bytes());
    out.push(kind.to_byte() | if ext.is_some() { SERVE_TRACE_FLAG } else { 0 });
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = match &ext {
        Some(ext) => {
            let mut body = Vec::with_capacity(ext.len() + payload.len());
            body.extend_from_slice(ext);
            body.extend_from_slice(payload);
            crc32(&body)
        }
        None => crc32(payload),
    };
    out.extend_from_slice(&crc.to_le_bytes());
    if let Some(ext) = &ext {
        out.extend_from_slice(ext);
    }
    out.extend_from_slice(payload);
    out
}

/// Writes one untraced frame to a byte stream.
///
/// # Errors
///
/// [`ServeError::Closed`] when the stream is gone.
pub fn write_serve_frame(
    writer: &mut dyn Write,
    kind: ServeMsgKind,
    req_id: u64,
    payload: &[u8],
) -> Result<(), ServeError> {
    write_serve_frame_traced(writer, kind, req_id, None, payload)
}

/// Writes one frame, stamping the trace extension when `trace` is given.
///
/// # Errors
///
/// [`ServeError::Closed`] when the stream is gone.
pub fn write_serve_frame_traced(
    writer: &mut dyn Write,
    kind: ServeMsgKind,
    req_id: u64,
    trace: Option<TraceContext>,
    payload: &[u8],
) -> Result<(), ServeError> {
    let bytes = encode_serve_frame_traced(kind, req_id, trace, payload);
    writer
        .write_all(&bytes)
        .and_then(|()| writer.flush())
        .map_err(|_| ServeError::Closed)
}

/// Reads one frame from a byte stream, validating magic, length bound
/// and CRC before handing the payload out.
///
/// # Errors
///
/// [`ServeError::Closed`] on EOF / stream errors;
/// [`ServeError::Malformed`] for wrong magic, oversized length, bad CRC
/// or an unknown kind byte.
pub fn read_serve_frame(reader: &mut dyn Read) -> Result<ServeFrame, ServeError> {
    let mut header = [0u8; SERVE_HEADER_LEN];
    reader
        .read_exact(&mut header)
        .map_err(|_| ServeError::Closed)?;
    let word = |at: usize| -> u32 {
        header
            .get(at..at + 4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
            .unwrap_or(0)
    };
    if word(0) != SERVE_MAGIC {
        return Err(ServeError::Malformed("bad frame magic".into()));
    }
    let raw_kind = header.get(4).copied().unwrap_or(0);
    let traced = raw_kind & SERVE_TRACE_FLAG != 0;
    let kind = ServeMsgKind::from_byte(raw_kind & !SERVE_TRACE_FLAG)?;
    let req_id = header
        .get(5..13)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .unwrap_or(0);
    let len = word(13) as usize;
    let crc = word(17);
    if len > MAX_SERVE_PAYLOAD {
        return Err(ServeError::Malformed(format!(
            "frame payload of {len} bytes exceeds the {MAX_SERVE_PAYLOAD}-byte bound"
        )));
    }
    let mut ext = [0u8; SERVE_TRACE_EXT_LEN];
    if traced {
        reader
            .read_exact(&mut ext)
            .map_err(|_| ServeError::Closed)?;
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|_| ServeError::Closed)?;
    let actual = if traced {
        let mut body = Vec::with_capacity(SERVE_TRACE_EXT_LEN + len);
        body.extend_from_slice(&ext);
        body.extend_from_slice(&payload);
        crc32(&body)
    } else {
        crc32(&payload)
    };
    if actual != crc {
        return Err(ServeError::Malformed("frame crc mismatch".into()));
    }
    let trace = traced.then(|| TraceContext {
        trace_id: u64::from_le_bytes(ext[..8].try_into().unwrap_or_default()),
        parent_span: u64::from_le_bytes(ext[8..].try_into().unwrap_or_default()),
    });
    Ok(ServeFrame {
        kind,
        req_id,
        trace,
        payload,
    })
}

/// Encodes a [`ServeMsgKind::Reply`] payload: per-row winners as
/// `count: u32 | per row (label: u32 | expert: u32 | entropy: f32)`.
pub fn encode_predictions(preds: &[TeamPrediction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + preds.len() * 12);
    out.extend_from_slice(&(preds.len() as u32).to_le_bytes());
    for p in preds {
        out.extend_from_slice(&(p.label as u32).to_le_bytes());
        out.extend_from_slice(&(p.expert as u32).to_le_bytes());
        out.extend_from_slice(&p.entropy.to_le_bytes());
    }
    out
}

/// Decodes a [`ServeMsgKind::Reply`] payload.
///
/// # Errors
///
/// [`ServeError::Malformed`] for truncated or over-declared payloads.
pub fn decode_predictions(bytes: &[u8]) -> Result<Vec<TeamPrediction>, ServeError> {
    let count = bytes
        .get(..4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| ServeError::Malformed("reply payload truncated".into()))?
        as usize;
    let body = bytes.get(4..).unwrap_or_default();
    if body.len() != count * 12 {
        return Err(ServeError::Malformed(format!(
            "reply declares {count} rows but carries {} bytes",
            body.len()
        )));
    }
    Ok(body
        .chunks_exact(12)
        .map(|row| {
            let field = |at: usize| {
                row.get(at..at + 4)
                    .and_then(|b| b.try_into().ok())
                    .unwrap_or([0u8; 4])
            };
            TeamPrediction {
                label: u32::from_le_bytes(field(0)) as usize,
                expert: u32::from_le_bytes(field(4)) as usize,
                entropy: f32::from_le_bytes(field(8)),
            }
        })
        .collect())
}

/// Encodes a [`ServeMsgKind::Reject`] payload: `code: u8 | detail utf-8`.
pub fn encode_reject(err: &ServeError) -> Vec<u8> {
    let mut out = vec![err.wire_code()];
    out.extend_from_slice(err.wire_detail().as_bytes());
    out
}

/// Decodes a [`ServeMsgKind::Reject`] payload back into the
/// client-visible [`ServeError`].
///
/// # Errors
///
/// [`ServeError::Malformed`] for an empty payload.
pub fn decode_reject(bytes: &[u8]) -> Result<ServeError, ServeError> {
    let code = bytes
        .first()
        .copied()
        .ok_or_else(|| ServeError::Malformed("empty reject payload".into()))?;
    let detail = String::from_utf8_lossy(bytes.get(1..).unwrap_or_default());
    Ok(ServeError::from_wire(code, &detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let bytes = encode_serve_frame(ServeMsgKind::Request, 42, b"payload");
        let frame = read_serve_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(frame.kind, ServeMsgKind::Request);
        assert_eq!(frame.req_id, 42);
        assert_eq!(frame.trace, None);
        assert_eq!(frame.payload, b"payload");
    }

    #[test]
    fn traced_frame_round_trip_and_untraced_stays_byte_identical() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_0123_4567,
            parent_span: 99,
        };
        let bytes = encode_serve_frame_traced(ServeMsgKind::Request, 7, Some(ctx), b"xyz");
        assert_eq!(bytes.len(), SERVE_HEADER_LEN + SERVE_TRACE_EXT_LEN + 3);
        let frame = read_serve_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(frame.kind, ServeMsgKind::Request);
        assert_eq!(frame.req_id, 7);
        assert_eq!(frame.trace, Some(ctx));
        assert_eq!(frame.payload, b"xyz");
        // `None` takes exactly the legacy encoding path.
        assert_eq!(
            encode_serve_frame_traced(ServeMsgKind::Request, 7, None, b"xyz"),
            encode_serve_frame(ServeMsgKind::Request, 7, b"xyz"),
        );
    }

    #[test]
    fn trace_ext_is_crc_covered() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span: 2,
        };
        let mut bytes = encode_serve_frame_traced(ServeMsgKind::Reply, 3, Some(ctx), b"abc");
        // Flip a bit inside the trace extension (just past the header).
        bytes[SERVE_HEADER_LEN] ^= 0xFF;
        assert!(matches!(
            read_serve_frame(&mut bytes.as_slice()),
            Err(ServeError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_and_bad_crc_rejected() {
        let mut bytes = encode_serve_frame(ServeMsgKind::Reply, 1, b"abc");
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_serve_frame(&mut bytes.as_slice()),
            Err(ServeError::Malformed(_))
        ));
        let mut bytes = encode_serve_frame(ServeMsgKind::Reply, 1, b"abc");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            read_serve_frame(&mut bytes.as_slice()),
            Err(ServeError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_kind_rejected_truncation_is_closed() {
        let mut bytes = encode_serve_frame(ServeMsgKind::Goodbye, 7, &[]);
        bytes[4] = 99;
        assert!(matches!(
            read_serve_frame(&mut bytes.as_slice()),
            Err(ServeError::Malformed(_))
        ));
        let bytes = encode_serve_frame(ServeMsgKind::Request, 7, b"xyz");
        assert!(matches!(
            read_serve_frame(&mut bytes[..bytes.len() - 1].as_ref()),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn predictions_round_trip() {
        let preds = vec![
            TeamPrediction {
                label: 3,
                expert: 1,
                entropy: 0.25,
            },
            TeamPrediction {
                label: 9,
                expert: 0,
                entropy: 1.5,
            },
        ];
        let decoded = decode_predictions(&encode_predictions(&preds)).unwrap();
        assert_eq!(decoded, preds);
        assert!(decode_predictions(&[1, 2]).is_err());
        assert!(decode_predictions(&[2, 0, 0, 0, 1]).is_err());
    }

    #[test]
    fn reject_round_trip() {
        let err = ServeError::Malformed("bad dims".into());
        let back = decode_reject(&encode_reject(&err)).unwrap();
        assert_eq!(back, err);
        assert!(decode_reject(&[]).is_err());
    }
}
