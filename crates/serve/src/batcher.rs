//! Pure dual-trigger request coalescing with admission control.
//!
//! The batcher is the deterministic heart of the serving front-end: a
//! clock-free state machine over `(request id, row count, enqueue time)`
//! triples. Time enters only as `u64` nanosecond offsets supplied by the
//! caller (the engine reads them off the injected [`teamnet_net::Clock`]),
//! so every decision — admit, reject, flush — replays bit-identically
//! under a `ManualClock` and is unit-testable without sleeping.
//!
//! Two triggers close a batch (DESIGN.md §16):
//!
//! * **size** — pending rows reach `max_batch_rows` (default 64);
//! * **deadline** — the *oldest* pending request has waited
//!   `max_delay_ns` (default 8 ms).
//!
//! Admission control bounds the pending queue at `window` rows. The
//! window starts at `queue_cap_rows` and shrinks proportionally when the
//! failure detector quarantines workers ([`Batcher::set_health`]): a
//! degraded team drains the queue slower, so the front door narrows
//! instead of letting latency grow without bound.

use crate::error::ServeError;
use std::collections::VecDeque;

/// Policy knobs for [`Batcher`].
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Size trigger: flush as soon as this many rows are pending; no
    /// single flush carries more rows than this. Requests larger than
    /// this are rejected as malformed at submission.
    pub max_batch_rows: usize,
    /// Deadline trigger: flush once the oldest pending request has
    /// waited this long, even if the batch is not full.
    pub max_delay_ns: u64,
    /// Admission cap at full health, in rows. The live window shrinks
    /// below this while workers are quarantined.
    pub queue_cap_rows: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch_rows: 64,
            max_delay_ns: 8_000_000, // 8 ms
            queue_cap_rows: 256,
        }
    }
}

/// One admitted request waiting to be flushed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// Caller-chosen request id, demuxed back to the ticket on flush.
    pub id: u64,
    /// Rows this request contributes to the batched tensor.
    pub rows: usize,
    /// Submission time, as nanoseconds on the engine's clock.
    pub enqueued_ns: u64,
}

/// The dual-trigger coalescing queue. Pure state: no clock, no IO.
#[derive(Debug)]
pub struct Batcher {
    config: BatcherConfig,
    window: usize,
    pending: VecDeque<PendingRequest>,
    depth_rows: usize,
}

impl Batcher {
    /// An empty batcher with the admission window at full health.
    pub fn new(config: BatcherConfig) -> Self {
        let window = config.queue_cap_rows.max(1);
        Batcher {
            config,
            window,
            pending: VecDeque::new(),
            depth_rows: 0,
        }
    }

    /// Rows currently pending.
    pub fn depth_rows(&self) -> usize {
        self.depth_rows
    }

    /// Requests currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The current admission window in rows.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Admits a request or rejects it with a typed error.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] for zero-row or over-`max_batch_rows`
    /// requests (the latter could never fit a flush);
    /// [`ServeError::Overloaded`] when the pending queue cannot take
    /// `rows` more within the current admission window.
    pub fn admit(&mut self, id: u64, rows: usize, now_ns: u64) -> Result<(), ServeError> {
        if rows == 0 {
            return Err(ServeError::Malformed("request with zero rows".into()));
        }
        if rows > self.config.max_batch_rows {
            return Err(ServeError::Malformed(format!(
                "request of {rows} rows exceeds the batch cap of {}",
                self.config.max_batch_rows
            )));
        }
        if self.depth_rows + rows > self.window {
            return Err(ServeError::Overloaded {
                depth: self.depth_rows,
                window: self.window,
            });
        }
        self.depth_rows += rows;
        self.pending.push_back(PendingRequest {
            id,
            rows,
            enqueued_ns: now_ns,
        });
        Ok(())
    }

    /// Backpressure hook: narrows the admission window to the live
    /// fraction of the team (`live` of `total` nodes answering), never
    /// below one row. Already-admitted requests are unaffected.
    pub fn set_health(&mut self, live: usize, total: usize) {
        let cap = self.config.queue_cap_rows.max(1);
        self.window = if total == 0 {
            cap
        } else {
            (cap * live.min(total) / total).max(1)
        };
    }

    /// When the deadline trigger for the oldest pending request fires,
    /// as nanoseconds on the engine's clock. `None` when idle.
    pub fn due_at(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|p| p.enqueued_ns.saturating_add(self.config.max_delay_ns))
    }

    /// Whether a flush is due at `now_ns`: the size trigger (a full
    /// batch is pending) or the deadline trigger (the oldest request has
    /// waited out `max_delay_ns`).
    pub fn ready(&self, now_ns: u64) -> bool {
        if self.depth_rows >= self.config.max_batch_rows {
            return true;
        }
        self.due_at().is_some_and(|due| now_ns >= due)
    }

    /// Pops the next flush: whole requests, oldest first, while their
    /// rows fit in `max_batch_rows` (always at least one — admission
    /// guarantees every pending request fits alone). Returns an empty
    /// vec when idle. Callers decide *when* via [`Batcher::ready`]; this
    /// method only decides *what*.
    pub fn take_batch(&mut self) -> Vec<PendingRequest> {
        let mut batch = Vec::new();
        let mut rows = 0usize;
        while let Some(front) = self.pending.front() {
            if !batch.is_empty() && rows + front.rows > self.config.max_batch_rows {
                break;
            }
            rows += front.rows;
            self.depth_rows -= front.rows;
            // The front exists: the loop condition just matched it.
            if let Some(p) = self.pending.pop_front() {
                batch.push(p);
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(max_rows: usize, cap: usize) -> Batcher {
        Batcher::new(BatcherConfig {
            max_batch_rows: max_rows,
            max_delay_ns: 8_000_000,
            queue_cap_rows: cap,
        })
    }

    #[test]
    fn size_trigger_fires_at_full_batch() {
        let mut b = batcher(4, 64);
        b.admit(1, 2, 0).unwrap();
        assert!(!b.ready(0));
        b.admit(2, 2, 0).unwrap();
        assert!(b.ready(0), "4 of 4 rows pending must be ready");
    }

    #[test]
    fn deadline_trigger_fires_on_oldest_age() {
        let mut b = batcher(64, 64);
        b.admit(1, 1, 1_000).unwrap();
        assert!(!b.ready(8_000_999));
        assert!(b.ready(8_001_000), "oldest is 8 ms old");
        assert_eq!(b.due_at(), Some(8_001_000));
    }

    #[test]
    fn admission_rejects_over_window() {
        let mut b = batcher(8, 10);
        b.admit(1, 8, 0).unwrap();
        let err = b.admit(2, 3, 0).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                depth: 8,
                window: 10
            }
        );
        // A smaller request still fits.
        b.admit(3, 2, 0).unwrap();
    }

    #[test]
    fn malformed_rows_rejected() {
        let mut b = batcher(8, 64);
        assert!(matches!(b.admit(1, 0, 0), Err(ServeError::Malformed(_))));
        assert!(matches!(b.admit(1, 9, 0), Err(ServeError::Malformed(_))));
    }

    #[test]
    fn quarantine_shrinks_window_and_recovery_restores_it() {
        let mut b = batcher(8, 90);
        assert_eq!(b.window(), 90);
        b.set_health(1, 3);
        assert_eq!(b.window(), 30);
        b.set_health(0, 3);
        assert_eq!(b.window(), 1, "window never collapses to zero");
        b.set_health(3, 3);
        assert_eq!(b.window(), 90);
    }

    #[test]
    fn take_batch_is_whole_request_fifo() {
        let mut b = batcher(4, 64);
        b.admit(1, 2, 0).unwrap();
        b.admit(2, 2, 1).unwrap();
        b.admit(3, 1, 2).unwrap();
        let batch = b.take_batch();
        assert_eq!(
            batch.iter().map(|p| p.id).collect::<Vec<_>>(),
            vec![1, 2],
            "request 3 would overflow the 4-row cap"
        );
        assert_eq!(b.depth_rows(), 1);
        let rest = b.take_batch();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.first().map(|p| p.id), Some(3));
        assert!(b.is_empty());
        assert!(b.take_batch().is_empty());
    }

    #[test]
    fn oversized_front_flushes_alone() {
        let mut b = batcher(4, 64);
        b.admit(1, 4, 0).unwrap();
        b.admit(2, 1, 1).unwrap();
        let batch = b.take_batch();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.first().map(|p| p.rows), Some(4));
    }
}
