//! Framed TCP front-end: many client connections feeding one engine.
//!
//! The accept loop hands each connection to its own thread; a connection
//! carries one in-flight request at a time (submit → block on the
//! [`Ticket`] → write the reply), so slow clients self-throttle and the
//! engine's admission control is the only queue. All [`ServeMsgKind`]
//! dispatch lives in this file — `cargo xtask protocol` audits that every
//! kind is handled here, so a new wire message cannot be silently
//! dropped.
//!
//! [`Ticket`]: crate::engine::Ticket

use crate::engine::ServeHandle;
use crate::error::ServeError;
use crate::wire::{
    decode_predictions, decode_reject, encode_predictions, encode_reject, read_serve_frame,
    write_serve_frame, write_serve_frame_traced, ServeMsgKind,
};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use teamnet_core::TeamPrediction;
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::{derive_trace_id, TraceContext};
use teamnet_tensor::Tensor;

/// How often the non-blocking accept loop polls for the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running TCP listener feeding a [`ServeHandle`].
///
/// Dropping (or [`TcpServeFront::shutdown`]) stops accepting, joins the
/// accept thread, force-closes every accepted socket, then joins the
/// connection threads. The force-close matters: a connection thread
/// blocks in a frame read between requests, so without it shutdown
/// would wait forever on any client that is connected but idle.
#[derive(Debug)]
pub struct TcpServeFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    socks: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpServeFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting serving connections for `handle`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] when the bind fails.
    pub fn bind(addr: &str, handle: ServeHandle) -> Result<TcpServeFront, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Net(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Net(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Net(format!("set_nonblocking: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let socks: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let socks = Arc::clone(&socks);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Keep a duplicate handle so shutdown can
                            // force-close the socket under a blocked read.
                            if let Ok(dup) = stream.try_clone() {
                                socks.lock().push(dup);
                            }
                            let handle = handle.clone();
                            let worker =
                                std::thread::spawn(move || handle_connection(stream, &handle));
                            conns.lock().push(worker);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(TcpServeFront {
            addr: local,
            stop,
            accept: Some(accept),
            conns,
            socks,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins all serving threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Unblock connection threads parked in a frame read: an idle
        // client that never says goodbye must not wedge shutdown.
        for sock in std::mem::take(&mut *self.socks.lock()) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let conns: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock());
        for conn in conns {
            let _ = conn.join();
        }
    }
}

impl Drop for TcpServeFront {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves one connection: reads frames, dispatches by kind, writes the
/// reply. Returns when the client says goodbye, disconnects, or breaks
/// the protocol.
fn handle_connection(mut stream: TcpStream, handle: &ServeHandle) {
    loop {
        let frame = match read_serve_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e @ ServeError::Malformed(_)) => {
                // The stream may be desynchronized after a bad frame:
                // reject and hang up rather than mis-parse what follows.
                let _ = write_serve_frame(&mut stream, ServeMsgKind::Reject, 0, &encode_reject(&e));
                return;
            }
            Err(_) => return, // EOF / closed
        };
        match frame.kind {
            ServeMsgKind::Request => {
                // A traced request gets an end-to-end `serve.request`
                // span covering admission → round → reply, and the reply
                // frame echoes the trace (parented on that span) so the
                // tenant can correlate its request with the cluster's
                // cross-node DAG (DESIGN.md §17).
                let obs = handle.obs().clone();
                let req_span = frame.trace.map(|ctx| {
                    obs.span(
                        "serve.request",
                        &[("req", frame.req_id), ("trace", ctx.trace_id)],
                    )
                });
                let (kind, payload) = match process_request(handle, &frame.payload) {
                    Ok(preds) => (ServeMsgKind::Reply, encode_predictions(&preds)),
                    Err(e) => (ServeMsgKind::Reject, encode_reject(&e)),
                };
                let reply_ctx = frame.trace.map(|ctx| obs.tracer.current_ctx(ctx.trace_id));
                drop(req_span);
                if write_serve_frame_traced(&mut stream, kind, frame.req_id, reply_ctx, &payload)
                    .is_err()
                {
                    return;
                }
            }
            ServeMsgKind::Goodbye => return,
            ServeMsgKind::Reply | ServeMsgKind::Reject => {
                let err = ServeError::Malformed("client sent a server-side frame".into());
                let _ = write_serve_frame(
                    &mut stream,
                    ServeMsgKind::Reject,
                    frame.req_id,
                    &encode_reject(&err),
                );
                return;
            }
        }
    }
}

/// Decodes a request tensor, submits it, and blocks until the engine
/// resolves the ticket.
fn process_request(
    handle: &ServeHandle,
    payload: &[u8],
) -> Result<Vec<TeamPrediction>, ServeError> {
    let (dims, data) =
        decode_f32s(payload).map_err(|e| ServeError::Malformed(format!("request tensor: {e}")))?;
    let tensor = Tensor::from_vec(data, dims)
        .map_err(|e| ServeError::Malformed(format!("request tensor: {e}")))?;
    handle.submit(&tensor)?.wait()
}

/// A blocking client for the framed TCP serving protocol: the quickstart
/// path in README "Serving".
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    next_id: u64,
    trace_seed: Option<u64>,
}

impl ServeClient {
    /// Connects to a [`TcpServeFront`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] when the connection fails.
    pub fn connect(addr: &SocketAddr) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Net(format!("connect {addr}: {e}")))?;
        Ok(ServeClient {
            stream,
            next_id: 1,
            trace_seed: None,
        })
    }

    /// Stamps every subsequent request with a deterministic trace id
    /// derived from `seed` and the request id, so the server opens a
    /// `serve.request` span for it and echoes the trace on the reply.
    /// Untraced clients (the default) stay wire-identical to the
    /// pre-tracing protocol.
    pub fn set_trace_seed(&mut self, seed: u64) {
        self.trace_seed = Some(seed);
    }

    /// One blocking inference: sends the `[rows, features...]` tensor,
    /// returns the per-row winning predictions.
    ///
    /// # Errors
    ///
    /// The server's typed rejection ([`ServeError::Overloaded`],
    /// [`ServeError::Malformed`], ...), or [`ServeError::Closed`] when
    /// the connection drops.
    pub fn infer(&mut self, input: &Tensor) -> Result<Vec<TeamPrediction>, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.trace_seed.map(|seed| TraceContext {
            trace_id: derive_trace_id(seed, id),
            parent_span: 0,
        });
        write_serve_frame_traced(
            &mut self.stream,
            ServeMsgKind::Request,
            id,
            trace,
            &encode_f32s(input.dims(), input.data()),
        )?;
        loop {
            let frame = read_serve_frame(&mut self.stream)?;
            if frame.req_id != id {
                continue; // stray frame from an abandoned request
            }
            if let (Some(sent), Some(echo)) = (trace, frame.trace) {
                debug_assert_eq!(sent.trace_id, echo.trace_id);
            }
            return match frame.kind {
                ServeMsgKind::Reply => decode_predictions(&frame.payload),
                ServeMsgKind::Reject => Err(decode_reject(&frame.payload)?),
                ServeMsgKind::Request | ServeMsgKind::Goodbye => Err(ServeError::Malformed(
                    "server sent a client-side frame".into(),
                )),
            };
        }
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        // Best-effort clean goodbye so the server thread exits promptly.
        let _ = write_serve_frame(&mut self.stream, ServeMsgKind::Goodbye, 0, &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherConfig;
    use crate::engine::{ServeConfig, ServeEngine};
    use teamnet_core::runtime::{serve_worker, shutdown_workers, MasterConfig};
    use teamnet_net::ChannelTransport;
    use teamnet_nn::{ModelSpec, Sequential};

    fn expert(seed: u64) -> Sequential {
        teamnet_core::build_expert(&ModelSpec::mlp(2, 16), seed)
    }

    #[test]
    fn tcp_round_trip_reply_and_reject() {
        let nodes = ChannelTransport::mesh(2);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap();
            });
            let config = ServeConfig {
                batch: BatcherConfig {
                    max_batch_rows: 8,
                    max_delay_ns: 2_000_000, // 2 ms: keep the test quick
                    queue_cap_rows: 32,
                },
                input_dims: vec![1, 28, 28],
                master: MasterConfig::default(),
            };
            let mut engine = ServeEngine::new(&nodes[0], expert(0), config);
            let handle = engine.handle();
            let front = TcpServeFront::bind("127.0.0.1:0", handle.clone()).unwrap();
            let addr = front.local_addr();
            let master_node = &nodes[0];
            let engine_thread = scope.spawn(move |_| engine.run(master_node));

            let mut client = ServeClient::connect(&addr).unwrap();
            let preds = client
                .infer(&teamnet_tensor::Tensor::full([2, 1, 28, 28], 0.3))
                .unwrap();
            assert_eq!(preds.len(), 2);
            // A mis-shaped tensor comes back as a typed rejection, not a
            // dead connection: the same client keeps working after.
            let err = client
                .infer(&teamnet_tensor::Tensor::full([1, 9, 9], 0.3))
                .unwrap_err();
            assert!(matches!(err, ServeError::Malformed(_)), "{err:?}");
            let preds = client
                .infer(&teamnet_tensor::Tensor::full([1, 1, 28, 28], 0.9))
                .unwrap();
            assert_eq!(preds.len(), 1);

            drop(client); // goodbye
            handle.close();
            engine_thread.join().unwrap();
            front.shutdown();
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    /// Regression: `shutdown()` used to join connection threads that
    /// were still parked in a frame read, so any client that stayed
    /// connected without sending `Goodbye` wedged shutdown forever.
    /// Shutdown now force-closes accepted sockets first.
    #[test]
    fn shutdown_unblocks_idle_connections() {
        let nodes = ChannelTransport::mesh(2);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap();
            });
            let config = ServeConfig {
                batch: BatcherConfig {
                    max_batch_rows: 8,
                    max_delay_ns: 2_000_000,
                    queue_cap_rows: 32,
                },
                input_dims: vec![1, 28, 28],
                master: MasterConfig::default(),
            };
            let mut engine = ServeEngine::new(&nodes[0], expert(0), config);
            let handle = engine.handle();
            let front = TcpServeFront::bind("127.0.0.1:0", handle.clone()).unwrap();
            let addr = front.local_addr();
            let master_node = &nodes[0];
            let engine_thread = scope.spawn(move |_| engine.run(master_node));

            // One client completes a request then idles mid-connection;
            // another connects and never sends a single frame. Neither
            // says goodbye before shutdown.
            let mut chatty = ServeClient::connect(&addr).unwrap();
            let preds = chatty
                .infer(&teamnet_tensor::Tensor::full([1, 1, 28, 28], 0.4))
                .unwrap();
            assert_eq!(preds.len(), 1);
            let idle = ServeClient::connect(&addr).unwrap();

            handle.close();
            engine_thread.join().unwrap();

            let (tx, rx) = std::sync::mpsc::channel();
            let shutter = scope.spawn(move |_| {
                front.shutdown();
                let _ = tx.send(());
            });
            rx.recv_timeout(Duration::from_secs(10))
                .expect("shutdown wedged on idle connections");
            shutter.join().unwrap();

            drop(chatty); // goodbye onto a closed socket: best-effort, ignored
            drop(idle);
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn concurrent_clients_share_batches() {
        let nodes = ChannelTransport::mesh(2);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap();
            });
            let config = ServeConfig {
                batch: BatcherConfig {
                    max_batch_rows: 16,
                    max_delay_ns: 4_000_000,
                    queue_cap_rows: 64,
                },
                input_dims: vec![1, 28, 28],
                master: MasterConfig::default(),
            };
            let mut engine = ServeEngine::new(&nodes[0], expert(0), config);
            let handle = engine.handle();
            let front = TcpServeFront::bind("127.0.0.1:0", handle.clone()).unwrap();
            let addr = front.local_addr();
            let master_node = &nodes[0];
            let engine_thread = scope.spawn(move |_| engine.run(master_node));

            let clients: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move |_| {
                        let mut client = ServeClient::connect(&addr).unwrap();
                        for r in 0..3 {
                            let x = teamnet_tensor::Tensor::full(
                                [1, 1, 28, 28],
                                (i as f32) * 0.2 + (r as f32) * 0.05,
                            );
                            let preds = client.infer(&x).unwrap();
                            assert_eq!(preds.len(), 1);
                        }
                    })
                })
                .collect();
            for c in clients {
                c.join().unwrap();
            }
            handle.close();
            engine_thread.join().unwrap();
            front.shutdown();
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }
}
