//! The serving engine: admission → coalesce → one collaborative round →
//! demux.
//!
//! Many concurrent clients [`ServeHandle::submit`] row-batched tensors;
//! the engine coalesces whatever is pending under the [`Batcher`]'s dual
//! trigger into one batched tensor, runs it through a single
//! [`InferenceSession::infer`] round (broadcast to the whole team, argmin
//! entropy per row), and demuxes each request's rows back to its
//! [`Ticket`]. Because expert forwards are row-independent, every request
//! receives byte-for-byte the predictions a solo `infer` of its own
//! tensor would have produced — `tests/serve_props.rs` pins that
//! bijection property.
//!
//! Time is read exclusively from the injected [`Clock`] as nanosecond
//! offsets from the engine's construction instant, so a `ManualClock`
//! makes every admission decision, flush trigger and latency observation
//! deterministic (the serve soak asserts byte-identical trace + metrics
//! transcripts across identical seeds).
//!
//! Threading model: [`ServeEngine::pump_now`] is the deterministic
//! single-threaded driver (tests, soaks); [`ServeEngine::run`] wraps it
//! in a condvar loop for the TCP front-end, flushing when the deadline
//! trigger fires or a submission fills the batch.

use crate::batcher::{Batcher, BatcherConfig, PendingRequest};
use crate::error::ServeError;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use teamnet_core::health::PeerHealth;
use teamnet_core::runtime::{InferenceSession, MasterConfig};
use teamnet_core::TeamPrediction;
use teamnet_net::{Clock, Transport};
use teamnet_nn::Sequential;
use teamnet_obs::{Counter, Gauge, Histogram, Obs};
use teamnet_tensor::Tensor;

/// Serving policy: batching knobs, the expected per-row shape, and the
/// inference policy of the underlying session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dual-trigger batching and admission policy.
    pub batch: BatcherConfig,
    /// Required per-row feature dims: a submitted tensor must be shaped
    /// `[rows, input_dims...]`. Mis-shaped requests are rejected as
    /// [`ServeError::Malformed`] at the front door — they must never
    /// reach (let alone panic) a worker.
    pub input_dims: Vec<usize>,
    /// Policy for the collaborative rounds underneath; its `clock` and
    /// `obs` also drive the serving front-end, so spans, metrics and
    /// batching deadlines share one timeline.
    pub master: MasterConfig,
}

/// The eventual outcome of one admitted request.
type TicketResult = Result<Vec<TeamPrediction>, ServeError>;

/// Shared slot a request's result is delivered into.
#[derive(Debug, Default)]
struct TicketSlot {
    result: Mutex<Option<TicketResult>>,
    ready: Condvar,
}

/// A claim check for one submitted request: the in-process client half
/// of the serving protocol (the framed TCP front-end resolves tickets
/// into wire replies the same way).
#[derive(Debug, Clone)]
pub struct Ticket {
    slot: Arc<TicketSlot>,
}

impl Ticket {
    fn new() -> Self {
        Ticket {
            slot: Arc::new(TicketSlot::default()),
        }
    }

    fn fill(&self, result: TicketResult) {
        let mut slot = self.slot.result.lock();
        if slot.is_none() {
            *slot = Some(result);
            self.slot.ready.notify_all();
        }
    }

    /// Non-blocking poll; `None` until the request completes.
    pub fn try_take(&self) -> Option<TicketResult> {
        self.slot.result.lock().clone()
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Whatever [`ServeError`] the engine rejected the request with.
    pub fn wait(&self) -> TicketResult {
        let mut slot = self.slot.result.lock();
        loop {
            if let Some(result) = slot.clone() {
                return result;
            }
            self.slot.ready.wait(&mut slot);
        }
    }

    /// Blocks until the request completes or `timeout` elapses
    /// (`None` on timeout).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<TicketResult> {
        let deadline = Instant::now() + timeout; // lint: allow(det-clock)
        let mut slot = self.slot.result.lock();
        loop {
            if let Some(result) = slot.clone() {
                return Some(result);
            }
            if self.slot.ready.wait_until(&mut slot, deadline).timed_out() {
                return slot.clone();
            }
        }
    }
}

/// One admitted request's payload, keyed by id until its flush.
#[derive(Debug)]
struct QueuedRequest {
    data: Vec<f32>,
    ticket: Ticket,
}

/// Consecutive [`ServeError::Overloaded`] rejections (with no admission
/// in between) that trigger a flight-recorder dump: a short blip sheds a
/// request or two, a burst this long means the team is saturated or
/// shrunk, and the last ring of trace events explains which.
const OVERLOAD_DUMP_STREAK: u64 = 8;

/// Mutable front-door state behind one lock.
#[derive(Debug)]
struct FrontState {
    batcher: Batcher,
    requests: BTreeMap<u64, QueuedRequest>,
    next_id: u64,
    closed: bool,
    /// Consecutive overload rejections since the last admission.
    overload_streak: u64,
}

/// The shared front door: admission state plus the clock/obs handles
/// submission needs.
#[derive(Debug)]
struct Front {
    state: Mutex<FrontState>,
    /// Wakes the [`ServeEngine::run`] loop on submission or close.
    wake: Condvar,
    clock: Arc<dyn Clock>,
    /// All engine timestamps are offsets from here on `clock`.
    origin: Instant,
    input_dims: Vec<usize>,
    obs: Obs,
    g_depth: Gauge,
    c_admitted: Counter,
    c_rej_overload: Counter,
    c_rej_malformed: Counter,
}

impl Front {
    fn now_ns(&self) -> u64 {
        self.clock
            .now()
            .saturating_duration_since(self.origin)
            .as_nanos() as u64
    }
}

/// Cloneable submission handle: the in-process channel client.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    front: Arc<Front>,
}

impl ServeHandle {
    /// Submits one request shaped `[rows, input_dims...]`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] for a mis-shaped tensor,
    /// [`ServeError::Overloaded`] when admission control refuses it,
    /// [`ServeError::Closed`] after shutdown.
    pub fn submit(&self, input: &Tensor) -> Result<Ticket, ServeError> {
        let dims = input.dims();
        let (rows, features) = match dims.split_first() {
            Some((&rows, features)) => (rows, features),
            None => return Err(ServeError::Malformed("rank-0 request tensor".into())),
        };
        if features != self.front.input_dims.as_slice() {
            return Err(ServeError::Malformed(format!(
                "request rows shaped {features:?}, this engine serves {:?}",
                self.front.input_dims
            )));
        }
        let now_ns = self.front.now_ns();
        let mut st = self.front.state.lock();
        if st.closed {
            return Err(ServeError::Closed);
        }
        let id = st.next_id;
        match st.batcher.admit(id, rows, now_ns) {
            Ok(()) => st.overload_streak = 0,
            Err(e) => {
                match &e {
                    ServeError::Overloaded { depth, window } => {
                        self.front.c_rej_overload.inc();
                        st.overload_streak += 1;
                        if st.overload_streak == OVERLOAD_DUMP_STREAK {
                            // A sustained burst, not a blip: dump the
                            // flight-recorder ring (if armed) with the
                            // burst as its final event.
                            let _ = self.front.obs.flight_dump(
                                "flight.overload",
                                &[
                                    ("streak", st.overload_streak),
                                    ("depth", *depth as u64),
                                    ("window", *window as u64),
                                ],
                            );
                        }
                    }
                    _ => self.front.c_rej_malformed.inc(),
                }
                return Err(e);
            }
        }
        st.next_id += 1;
        let ticket = Ticket::new();
        st.requests.insert(
            id,
            QueuedRequest {
                data: input.data().to_vec(),
                ticket: ticket.clone(),
            },
        );
        self.front.c_admitted.inc();
        self.front.g_depth.set(st.batcher.depth_rows() as i64);
        drop(st);
        self.front.wake.notify_all();
        Ok(ticket)
    }

    /// Rows currently pending in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.front.state.lock().batcher.depth_rows()
    }

    /// The current admission window in rows: the configured queue cap
    /// scaled down to the live fraction of the team while the failure
    /// detector holds workers in quarantine (backpressure).
    pub fn admission_window(&self) -> usize {
        self.front.state.lock().batcher.window()
    }

    /// The engine's observability handle (shared with the underlying
    /// [`InferenceSession`]): the TCP front-end uses it to trace
    /// per-request spans on the same timeline as the rounds.
    pub fn obs(&self) -> &Obs {
        &self.front.obs
    }

    /// Marks the engine closed: future submissions fail with
    /// [`ServeError::Closed`]; pending requests still flush.
    pub fn close(&self) {
        self.front.state.lock().closed = true;
        self.front.wake.notify_all();
    }
}

/// The master-side serving engine. Owns the [`InferenceSession`] (so
/// worker health and quarantine decisions persist across batches) and
/// the master's local expert.
#[derive(Debug)]
pub struct ServeEngine {
    front: Arc<Front>,
    session: InferenceSession,
    expert: Sequential,
    h_batch_rows: Arc<Histogram>,
    h_latency: Arc<Histogram>,
    c_rounds_failed: Counter,
}

impl ServeEngine {
    /// Builds an engine serving `transport`'s cluster with the master's
    /// local `expert`.
    pub fn new(transport: &dyn Transport, expert: Sequential, config: ServeConfig) -> Self {
        let ServeConfig {
            batch,
            input_dims,
            master,
        } = config;
        let obs = master.obs.clone();
        let clock = Arc::clone(&master.clock);
        let session = InferenceSession::new(transport, master);
        let front = Arc::new(Front {
            state: Mutex::new(FrontState {
                batcher: Batcher::new(batch),
                requests: BTreeMap::new(),
                next_id: 0,
                closed: false,
                overload_streak: 0,
            }),
            wake: Condvar::new(),
            origin: clock.now(),
            clock,
            input_dims,
            g_depth: obs.metrics.gauge("serve.queue_depth"),
            c_admitted: obs.metrics.counter("serve.admitted"),
            c_rej_overload: obs.metrics.counter("serve.rejected.overloaded"),
            c_rej_malformed: obs.metrics.counter("serve.rejected.malformed"),
            obs,
        });
        ServeEngine {
            h_batch_rows: front.obs.metrics.histogram("serve.batch.rows"),
            h_latency: front.obs.metrics.histogram("serve.latency.ns"),
            c_rounds_failed: front.obs.metrics.counter("serve.rounds_failed"),
            front,
            session,
            expert,
        }
    }

    /// A new submission handle onto this engine.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            front: Arc::clone(&self.front),
        }
    }

    /// Read access to the underlying session's failure detector.
    pub fn session(&self) -> &InferenceSession {
        &self.session
    }

    /// Flushes one batch *if a trigger is due now* (size, deadline, or
    /// close-drain); returns the number of requests completed. This is
    /// the deterministic driver: tests advance a `ManualClock`, submit,
    /// and call this — no engine thread, no real sleeping.
    pub fn pump_now(&mut self, transport: &dyn Transport) -> usize {
        let now_ns = self.front.now_ns();
        let flush: Vec<(PendingRequest, QueuedRequest)> = {
            let mut st = self.front.state.lock();
            let due = st.batcher.ready(now_ns) || (st.closed && !st.batcher.is_empty());
            if !due {
                return 0;
            }
            let _coalesce_span = self.front.obs.span(
                "serve.coalesce",
                &[
                    ("pending_rows", st.batcher.depth_rows() as u64),
                    ("pending_requests", st.batcher.len() as u64),
                ],
            );
            let popped = st.batcher.take_batch();
            self.front.g_depth.set(st.batcher.depth_rows() as i64);
            popped
                .into_iter()
                .filter_map(|p| {
                    let req = st.requests.remove(&p.id)?;
                    Some((p, req))
                })
                .collect()
        };
        if flush.is_empty() {
            return 0;
        }
        let rows_total: usize = flush.iter().map(|(p, _)| p.rows).sum();
        let mut data =
            Vec::with_capacity(rows_total * self.front.input_dims.iter().product::<usize>());
        for (_, req) in &flush {
            data.extend_from_slice(&req.data);
        }
        let mut dims = vec![rows_total];
        dims.extend_from_slice(&self.front.input_dims);
        let images = match Tensor::from_vec(data, dims) {
            Ok(t) => t,
            Err(e) => {
                // Unreachable by construction (rows × validated feature
                // dims), but a typed rejection beats a panic if it ever
                // happens.
                let err = ServeError::Malformed(format!("batched tensor: {e}"));
                for (_, req) in &flush {
                    req.ticket.fill(Err(err.clone()));
                }
                return flush.len();
            }
        };
        self.h_batch_rows.observe(rows_total as u64);
        let outcome = {
            let _flush_span = self.front.obs.span(
                "serve.flush",
                &[
                    ("rows", rows_total as u64),
                    ("requests", flush.len() as u64),
                ],
            );
            self.session.infer(transport, &mut self.expert, &images)
        };
        let done_ns = self.front.now_ns();
        let completed = flush.len();
        match outcome {
            Ok(report) => {
                let mut offset = 0usize;
                for (p, req) in &flush {
                    let preds = report
                        .predictions
                        .get(offset..offset + p.rows)
                        .map(<[TeamPrediction]>::to_vec)
                        .ok_or_else(|| {
                            ServeError::Net("round returned too few prediction rows".into())
                        });
                    offset += p.rows;
                    self.h_latency
                        .observe(done_ns.saturating_sub(p.enqueued_ns));
                    req.ticket.fill(preds);
                }
                // Backpressure: narrow the admission window to the live
                // fraction of the team the detector reports.
                let total = report.peers.len().max(1);
                let live = report
                    .peers
                    .values()
                    .filter(|pr| pr.health == PeerHealth::Live)
                    .count();
                let mut st = self.front.state.lock();
                st.batcher.set_health(live, total);
            }
            Err(e) => {
                // The failed round itself already dumped the flight
                // recorder (if armed) inside `InferenceSession::infer`.
                self.c_rounds_failed.inc();
                let err = ServeError::Net(e.to_string());
                for (_, req) in &flush {
                    req.ticket.fill(Err(err.clone()));
                }
            }
        }
        completed
    }

    /// Runs the engine until [`ServeHandle::close`] is called and the
    /// queue has drained: the threaded driver behind the TCP front-end.
    /// Sleeps on the front-door condvar between flushes, waking early
    /// when a submission arrives (it may have filled the batch).
    pub fn run(&mut self, transport: &dyn Transport) {
        loop {
            {
                let mut st = self.front.state.lock();
                loop {
                    if st.closed {
                        break;
                    }
                    let now_ns = self.front.now_ns();
                    if st.batcher.ready(now_ns) {
                        break;
                    }
                    match st.batcher.due_at() {
                        None => self.front.wake.wait(&mut st),
                        Some(due) => {
                            let timeout = Duration::from_nanos(due.saturating_sub(now_ns));
                            let _ = self.front.wake.wait_for(&mut st, timeout);
                        }
                    }
                }
                if st.closed && st.batcher.is_empty() {
                    return;
                }
            }
            self.pump_now(transport);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamnet_core::runtime::{serve_worker, shutdown_workers};
    use teamnet_net::{ChannelTransport, ManualClock};
    use teamnet_nn::ModelSpec;

    fn expert(seed: u64) -> Sequential {
        teamnet_core::build_expert(&ModelSpec::mlp(2, 16), seed)
    }

    fn config(clock: Arc<ManualClock>) -> ServeConfig {
        ServeConfig {
            batch: BatcherConfig {
                max_batch_rows: 4,
                max_delay_ns: 8_000_000,
                queue_cap_rows: 16,
            },
            input_dims: vec![1, 28, 28],
            master: MasterConfig {
                worker_timeout: Duration::from_millis(500),
                clock,
                ..MasterConfig::default()
            },
        }
    }

    #[test]
    fn submit_pump_demux_round_trip() {
        let nodes = ChannelTransport::mesh(2);
        let clock = Arc::new(ManualClock::new());
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap();
            });
            let mut engine = ServeEngine::new(&nodes[0], expert(0), config(Arc::clone(&clock)));
            let handle = engine.handle();
            let t1 = handle.submit(&Tensor::full([1, 1, 28, 28], 0.2)).unwrap();
            let t2 = handle.submit(&Tensor::full([2, 1, 28, 28], 0.7)).unwrap();
            // Not due yet: neither trigger has fired.
            assert_eq!(engine.pump_now(&nodes[0]), 0);
            assert!(t1.try_take().is_none());
            // The 8 ms deadline fires on the virtual clock.
            clock.advance(Duration::from_millis(8));
            assert_eq!(engine.pump_now(&nodes[0]), 2);
            assert_eq!(t1.wait().unwrap().len(), 1);
            assert_eq!(t2.wait().unwrap().len(), 2);
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn size_trigger_flushes_without_clock_motion() {
        let nodes = ChannelTransport::mesh(2);
        let clock = Arc::new(ManualClock::new());
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap();
            });
            let mut engine = ServeEngine::new(&nodes[0], expert(0), config(Arc::clone(&clock)));
            let handle = engine.handle();
            let tickets: Vec<Ticket> = (0..4)
                .map(|i| {
                    handle
                        .submit(&Tensor::full([1, 1, 28, 28], 0.1 * i as f32))
                        .unwrap()
                })
                .collect();
            assert_eq!(engine.pump_now(&nodes[0]), 4, "4 of 4 rows: size trigger");
            for t in tickets {
                assert_eq!(t.wait().unwrap().len(), 1);
            }
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn malformed_and_overload_rejected_typed() {
        let nodes = ChannelTransport::mesh(1);
        let clock = Arc::new(ManualClock::new());
        let engine = ServeEngine::new(&nodes[0], expert(0), config(Arc::clone(&clock)));
        let handle = engine.handle();
        // Wrong feature dims.
        assert!(matches!(
            handle.submit(&Tensor::full([1, 7, 7], 0.0)),
            Err(ServeError::Malformed(_))
        ));
        // Over the 4-row batch cap.
        assert!(matches!(
            handle.submit(&Tensor::full([5, 1, 28, 28], 0.0)),
            Err(ServeError::Malformed(_))
        ));
        // Fill the 16-row admission window with 4-row requests, then
        // overflow it.
        for _ in 0..4 {
            handle.submit(&Tensor::full([4, 1, 28, 28], 0.0)).unwrap();
        }
        assert!(matches!(
            handle.submit(&Tensor::full([1, 1, 28, 28], 0.0)),
            Err(ServeError::Overloaded {
                depth: 16,
                window: 16
            })
        ));
    }

    #[test]
    fn close_drains_then_rejects() {
        let nodes = ChannelTransport::mesh(2);
        let clock = Arc::new(ManualClock::new());
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut e = expert(1);
                serve_worker(&nodes[1], 0, &mut e).unwrap();
            });
            let mut engine = ServeEngine::new(&nodes[0], expert(0), config(Arc::clone(&clock)));
            let handle = engine.handle();
            let ticket = handle.submit(&Tensor::full([1, 1, 28, 28], 0.4)).unwrap();
            handle.close();
            // Close-drain: the pending request still completes.
            assert_eq!(engine.pump_now(&nodes[0]), 1);
            assert!(ticket.wait().is_ok());
            assert!(matches!(
                handle.submit(&Tensor::full([1, 1, 28, 28], 0.4)),
                Err(ServeError::Closed)
            ));
            shutdown_workers(&nodes[0]).unwrap();
        })
        .unwrap();
    }
}
