//! Typed errors surfaced to serving clients.
//!
//! Every way a request can fail to produce predictions maps onto one
//! [`ServeError`] variant, so clients (in-process tickets and framed TCP
//! alike) receive a typed rejection instead of a hung connection or a
//! worker panic. `cargo xtask protocol` checks that every variant is both
//! produced somewhere outside this file and rendered back onto the wire.

use std::fmt;
use teamnet_net::NetError;

/// Why a serving request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: the pending queue already
    /// holds `depth` rows against a current admission window of `window`
    /// rows (the window shrinks while workers are quarantined).
    Overloaded {
        /// Queued rows at the moment of rejection.
        depth: usize,
        /// Admission window (max queued rows) at the moment of rejection.
        window: usize,
    },
    /// The request itself was undecodable or ill-shaped (wrong feature
    /// dims, zero rows, oversized batch, broken frame).
    Malformed(String),
    /// The collaborative round underneath failed with a transport error;
    /// carries the rendered [`NetError`] (the error itself is not
    /// cloneable, and one failed round fans out to every ticket in the
    /// batch).
    Net(String),
    /// The serving engine shut down before the request completed.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, window } => write!(
                f,
                "overloaded: {depth} rows queued against an admission window of {window}"
            ),
            ServeError::Malformed(what) => write!(f, "malformed request: {what}"),
            ServeError::Net(e) => write!(f, "inference round failed: {e}"),
            ServeError::Closed => write!(f, "serving engine closed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NetError> for ServeError {
    fn from(e: NetError) -> Self {
        ServeError::Net(e.to_string())
    }
}

impl ServeError {
    /// Stable wire code for the framed TCP protocol (see
    /// [`crate::wire`]): rejections cross the network as
    /// `(code, detail-string)` and decode back to a best-effort
    /// equivalent variant.
    pub fn wire_code(&self) -> u8 {
        match self {
            ServeError::Overloaded { .. } => 1,
            ServeError::Malformed(_) => 2,
            ServeError::Net(_) => 3,
            ServeError::Closed => 4,
        }
    }

    /// Human-readable detail carried alongside [`ServeError::wire_code`].
    /// For the string-carrying variants this is the inner detail itself,
    /// so `from_wire(code, detail)` round-trips them exactly.
    pub fn wire_detail(&self) -> String {
        match self {
            ServeError::Malformed(what) | ServeError::Net(what) => what.clone(),
            other => other.to_string(),
        }
    }

    /// Reconstructs a rejection from its wire `(code, detail)` pair. The
    /// structured fields of [`ServeError::Overloaded`] and the typed
    /// [`NetError`] do not round-trip — the client-side value preserves
    /// the category and the rendered detail, which is all a remote caller
    /// can act on.
    pub fn from_wire(code: u8, detail: &str) -> Self {
        match code {
            1 => ServeError::Overloaded {
                depth: 0,
                window: 0,
            },
            2 => ServeError::Malformed(detail.to_string()),
            4 => ServeError::Closed,
            _ => ServeError::Net(detail.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overloaded {
            depth: 130,
            window: 128,
        };
        assert!(e.to_string().contains("130"));
        assert!(e.to_string().contains("128"));
        let e = ServeError::Malformed("bad dims".into());
        assert!(e.to_string().contains("bad dims"));
    }

    #[test]
    fn net_errors_convert() {
        let e: ServeError = NetError::Closed.into();
        assert_eq!(e, ServeError::Net(NetError::Closed.to_string()));
    }

    #[test]
    fn wire_codes_round_trip_category() {
        let cases = [
            ServeError::Overloaded {
                depth: 9,
                window: 8,
            },
            ServeError::Malformed("x".into()),
            ServeError::Net(NetError::Closed.to_string()),
            ServeError::Closed,
        ];
        for e in cases {
            let back = ServeError::from_wire(e.wire_code(), &e.wire_detail());
            assert_eq!(back.wire_code(), e.wire_code(), "{e:?} -> {back:?}");
        }
    }
}
