//! # teamnet-serve
//!
//! The multi-tenant serving front-end for TeamNet collaborative
//! inference: ROADMAP item 2's "millions of users" layer, built on the
//! existing fault-tolerant runtime instead of beside it.
//!
//! TeamNet's competitive-expert strategy (ICDCS 2019, Section III) only
//! pays off when the master keeps every edge node busy, yet
//! [`InferenceSession::infer`] serves exactly one input batch at a time.
//! This crate multiplexes many concurrent client streams onto that
//! single-batch primitive:
//!
//! * [`Batcher`] — pure dual-trigger coalescing: flush at 64 pending
//!   rows or when the oldest request is 8 ms old (both configurable),
//!   with bounded-queue admission control and a window that narrows
//!   while workers are quarantined;
//! * [`ServeEngine`] / [`ServeHandle`] / [`Ticket`] — the engine: admit →
//!   coalesce → one fault-tolerant collaborative round → demux each
//!   request's argmin-entropy rows back to its caller. The in-process
//!   handle doubles as the test client;
//! * [`TcpServeFront`] / [`ServeClient`] — the framed TCP protocol
//!   ([`wire`]) for external clients;
//! * [`ServeError`] — typed rejections: a malformed client tensor or an
//!   overloaded queue surfaces as an error frame, never a worker panic.
//!
//! Every timestamp comes from the injected [`teamnet_net::Clock`], so a
//! `ManualClock` run is byte-stable end to end (`tests/serve_soak.rs`),
//! and `crates/serve/src/` is a `cargo xtask audit` determinism-taint
//! root. See DESIGN.md §16 for the architecture and the metrics
//! reference.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use teamnet_core::runtime::{serve_worker, shutdown_workers, MasterConfig};
//! use teamnet_net::{ChannelTransport, ManualClock};
//! use teamnet_nn::ModelSpec;
//! use teamnet_serve::{BatcherConfig, ServeConfig, ServeEngine};
//! use teamnet_tensor::Tensor;
//!
//! // A 2-node cluster; the worker serves in a background thread.
//! let nodes = ChannelTransport::mesh(2);
//! let clock = Arc::new(ManualClock::new());
//! crossbeam::thread::scope(|scope| {
//!     scope.spawn(|_| {
//!         let mut expert = teamnet_core::build_expert(&ModelSpec::mlp(2, 16), 1);
//!         serve_worker(&nodes[1], 0, &mut expert).unwrap();
//!     });
//!     let config = ServeConfig {
//!         batch: BatcherConfig::default(),
//!         input_dims: vec![1, 28, 28],
//!         master: MasterConfig { clock: Arc::clone(&clock) as Arc<_>, ..MasterConfig::default() },
//!     };
//!     let master_expert = teamnet_core::build_expert(&ModelSpec::mlp(2, 16), 0);
//!     let mut engine = ServeEngine::new(&nodes[0], master_expert, config);
//!     let handle = engine.handle();
//!     // Two tenants submit; the 8 ms deadline trigger flushes them as
//!     // one collaborative round.
//!     let a = handle.submit(&Tensor::full([1, 1, 28, 28], 0.2)).unwrap();
//!     let b = handle.submit(&Tensor::full([3, 1, 28, 28], 0.8)).unwrap();
//!     clock.advance(Duration::from_millis(8));
//!     engine.pump_now(&nodes[0]);
//!     assert_eq!(a.wait().unwrap().len(), 1);
//!     assert_eq!(b.wait().unwrap().len(), 3);
//!     shutdown_workers(&nodes[0]).unwrap();
//! })
//! .unwrap();
//! ```
//!
//! [`InferenceSession::infer`]: teamnet_core::runtime::InferenceSession::infer

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod error;
pub mod tcp;
pub mod wire;

pub use batcher::{Batcher, BatcherConfig, PendingRequest};
pub use engine::{ServeConfig, ServeEngine, ServeHandle, Ticket};
pub use error::ServeError;
pub use tcp::{ServeClient, TcpServeFront};
pub use wire::{ServeFrame, ServeMsgKind};
