//! A minimal Rust source "masker": replaces the contents of comments and
//! string/char literals with spaces so downstream passes can pattern-match
//! code without being fooled by text, while harvesting `// lint: allow(...)`
//! directives from the comments it erases.
//!
//! This is not a full lexer — it only understands the token classes whose
//! contents must not be scanned: line comments, (nested) block comments,
//! string literals, raw strings (`r#"…"#`, any hash depth, `b`/`br`
//! prefixes), and char literals (disambiguated from lifetimes).

use std::collections::BTreeMap;

/// A source file with comment/literal bodies blanked out.
pub struct Masked {
    /// Masked source, line by line (no trailing newlines).
    pub lines: Vec<String>,
    /// Lint rules explicitly allowed via comment directives, keyed by the
    /// 1-based line the directive's comment starts on.
    pub allows: BTreeMap<usize, Vec<String>>,
}

impl Masked {
    /// True if `rule` is allowed on `line`. A directive counts for its own
    /// line, the line directly below it (trailing comments and a comment on
    /// the preceding line both work), and — because rustfmt may wrap one
    /// statement over several lines — any later line of the statement that
    /// starts directly beneath it.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        if self.has(line, rule) || self.has(line.saturating_sub(1), rule) {
            return true;
        }
        // Walk upward while still inside the same statement: a previous
        // line that is blank (blanked comments included) never ends one,
        // and a code line only does when it closes with `;`/`,`/`{`/`}`.
        let mut probe = line;
        while probe > 1 {
            let prev = self.lines.get(probe - 2).map_or("", |l| l.trim());
            if !prev.is_empty() && prev.ends_with([';', ',', '{', '}']) {
                return false;
            }
            probe -= 1;
            if self.has(probe, rule) {
                return true;
            }
        }
        false
    }

    fn has(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Parses every `lint: allow(a, b)` directive inside a comment body.
fn harvest_directives(comment: &str, line: usize, allows: &mut BTreeMap<usize, Vec<String>>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for rule in rest[..end].split(',') {
            let rule = rule.trim().to_string();
            if !rule.is_empty() {
                allows.entry(line).or_default().push(rule);
            }
        }
        rest = &rest[end..];
    }
}

/// Masks `source`, keeping byte positions and line structure intact.
pub fn mask(source: &str) -> Masked {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allows = BTreeMap::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Copies the byte at `i` verbatim; masked regions call `blank` instead.
    fn blank(b: u8, out: &mut Vec<u8>) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                out.push(b);
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(bytes[i], &mut out);
                    i += 1;
                }
                harvest_directives(&source[start..i], line, &mut allows);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank(bytes[i], &mut out);
                        blank(bytes[i + 1], &mut out);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank(bytes[i], &mut out);
                        blank(bytes[i + 1], &mut out);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        blank(bytes[i], &mut out);
                        i += 1;
                    }
                }
                harvest_directives(&source[start..i], start_line, &mut allows);
            }
            b'"' => {
                // Ordinary string literal: mask body, honour escapes.
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            blank(bytes[i], &mut out);
                            if i + 1 < bytes.len() {
                                if bytes[i + 1] == b'\n' {
                                    line += 1;
                                }
                                blank(bytes[i + 1], &mut out);
                            }
                            i += 2;
                        }
                        b'"' => {
                            out.push(b'"');
                            i += 1;
                            break;
                        }
                        c => {
                            if c == b'\n' {
                                line += 1;
                            }
                            blank(c, &mut out);
                            i += 1;
                        }
                    }
                }
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i, &out) => {
                // Skip the prefix (`r`, `b`, `br`) and count hashes.
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
                    out.push(bytes[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    out.push(b'#');
                    hashes += 1;
                    j += 1;
                }
                debug_assert_eq!(bytes.get(j), Some(&b'"'));
                out.push(b'"');
                j += 1;
                // Raw body: ends at `"` followed by `hashes` hash marks.
                'body: while j < bytes.len() {
                    if bytes[j] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            out.push(b'"');
                            out.extend(std::iter::repeat(b'#').take(hashes));
                            j += 1 + hashes;
                            break 'body;
                        }
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    blank(bytes[j], &mut out);
                    j += 1;
                }
                i = j;
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                if is_lifetime(bytes, i) {
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                    while i < bytes.len() {
                        if bytes[i] == b'\\' {
                            blank(bytes[i], &mut out);
                            if i + 1 < bytes.len() {
                                blank(bytes[i + 1], &mut out);
                            }
                            i += 2;
                        } else if bytes[i] == b'\'' {
                            out.push(b'\'');
                            i += 1;
                            break;
                        } else {
                            blank(bytes[i], &mut out);
                            i += 1;
                        }
                    }
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }

    let masked = String::from_utf8(out).expect("masking preserves UTF-8 by construction");
    Masked {
        lines: masked.lines().map(str::to_string).collect(),
        allows,
    }
}

/// True if position `i` starts a raw/byte string prefix (`r"`, `r#"`, `b"`,
/// `br#"`, …) rather than an identifier that happens to end in `r`/`b`.
fn is_raw_or_byte_string(bytes: &[u8], i: usize, out: &[u8]) -> bool {
    if let Some(&prev) = out.last() {
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// True if the `'` at `i` begins a lifetime/label rather than a char literal.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&next) = bytes.get(i + 1) else {
        return true;
    };
    if !(next.is_ascii_alphabetic() || next == b'_') {
        return false;
    }
    // `'a'` is a char literal; `'a,` / `'a>` / `'static` are lifetimes.
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let m = mask("let s = \".unwrap()\"; // .unwrap() in comment\ncall();\n");
        assert!(!m.lines[0].contains(".unwrap()"));
        assert_eq!(m.lines[1], "call();");
    }

    #[test]
    fn harvests_allow_directives() {
        let m = mask("foo(); // lint: allow(no-unwrap, no-index)\nbar();\n");
        assert!(m.is_allowed(1, "no-unwrap"));
        assert!(m.is_allowed(1, "no-index"));
        assert!(
            m.is_allowed(2, "no-unwrap"),
            "directive covers the next line"
        );
        assert!(!m.is_allowed(3, "no-unwrap"));
    }

    #[test]
    fn directive_covers_a_wrapped_statement() {
        let m = mask(concat!(
            "// lint: allow(no-expect)\n",
            "let x = self\n",
            "    .cached\n",
            "    .expect(\"set\");\n",
            "let y = other.expect(\"boom\");\n",
        ));
        assert!(m.is_allowed(4, "no-expect"), "wrapped statement is covered");
        assert!(
            !m.is_allowed(5, "no-expect"),
            "the next statement is not covered"
        );
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let m = mask("let r = r#\"panic!(\"x\")\"#; let c = '\\''; let l: &'static str = \"\";\n");
        assert!(!m.lines[0].contains("panic!"));
        assert!(m.lines[0].contains("&'static str"));
    }

    #[test]
    fn keeps_line_numbers_through_block_comments() {
        let m = mask("/* one\ntwo\n lint: allow(no-panic) */\npanic!();\n");
        assert_eq!(m.lines.len(), 4);
        assert!(m.lines[3].contains("panic!"));
        // Directive is keyed to the comment's *start* line.
        assert!(m.is_allowed(1, "no-panic"));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_embedded_terminators() {
        // The body contains `"#` — only `"##` may close an `r##` string.
        let m = mask("let s = r##\"quote \"# panic!() still inside\"##; after();\n");
        assert!(!m.lines[0].contains("panic!"), "{}", m.lines[0]);
        assert!(!m.lines[0].contains("inside"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("after();"), "{}", m.lines[0]);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_masked() {
        let m = mask("let a = b\"unwrap()\"; let b = br#\"expect(\"x\")\"#; tail();\n");
        assert!(!m.lines[0].contains("unwrap"), "{}", m.lines[0]);
        assert!(!m.lines[0].contains("expect"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("tail();"), "{}", m.lines[0]);
    }

    #[test]
    fn nested_block_comments_end_at_the_outermost_close() {
        // Rust block comments nest: the first `*/` closes only the inner
        // comment, so `panic!()` between the two closers is still comment.
        let m = mask("/* outer /* inner */ panic!() */\ncode();\n");
        assert!(!m.lines[0].contains("panic!"), "{}", m.lines[0]);
        assert_eq!(m.lines[1], "code();");
    }

    #[test]
    fn byte_char_literals_are_masked_like_chars() {
        let m = mask("let a = b'x'; let q = b'\\''; let n = b'\\n'; rest();\n");
        assert!(!m.lines[0].contains('x'), "{}", m.lines[0]);
        assert!(!m.lines[0].contains("\\n"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("rest();"), "{}", m.lines[0]);
    }

    #[test]
    fn lifetimes_survive_next_to_char_literals() {
        // `'a>` and `'buf` are lifetimes and must stay; `'a'` and `'\''`
        // are char literals and must be blanked.
        let m = mask("fn f<'a>(s: &'a str, buf: &'buf [u8]) { let c = 'a'; let q = '\\''; }\n");
        assert!(m.lines[0].contains("<'a>"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("&'a str"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("&'buf"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("let c = ' '"), "{}", m.lines[0]);
        assert!(m.lines[0].contains("let q = '  '"), "{}", m.lines[0]);
    }

    #[test]
    fn loop_labels_are_not_char_literals() {
        let m = mask("'outer: loop { break 'outer; }\n");
        assert_eq!(m.lines[0], "'outer: loop { break 'outer; }");
    }

    #[test]
    fn allow_inside_a_block_comment_scopes_like_a_line_comment() {
        let m = mask("/* lint: allow(det-clock) */\nInstant::now();\nInstant::now();\n");
        assert!(m.is_allowed(2, "det-clock"), "line under the comment");
        assert!(!m.is_allowed(3, "det-clock"), "next statement is its own");
    }

    #[test]
    fn allow_walkup_stops_at_a_finished_statement() {
        let m = mask(concat!(
            "// lint: allow(no-unwrap)\n",
            "first().unwrap();\n",
            "second()\n",
            "    .unwrap();\n",
        ));
        assert!(m.is_allowed(2, "no-unwrap"));
        // Line 2 ends with `;`, so the wrapped statement on lines 3–4 is
        // a new statement the directive must not leak into.
        assert!(!m.is_allowed(4, "no-unwrap"));
    }

    #[test]
    fn directives_inside_strings_are_not_harvested() {
        let m = mask("let s = \"lint: allow(no-panic)\";\npanic!();\n");
        assert!(!m.is_allowed(1, "no-panic"));
        assert!(!m.is_allowed(2, "no-panic"));
    }
}
