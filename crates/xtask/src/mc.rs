//! `cargo xtask mc` — bounded explicit-state model checking of the
//! protocol state machines in `crates/core/src/fsm.rs` (DESIGN.md §15).
//!
//! The checker drives the **production transition functions** — the same
//! [`WorkerFsm`] / [`TransferFsm`] / [`GatherFsm`] the runtime shells use,
//! not a parallel spec — through an exhaustive breadth-first search over
//! message interleavings on a small-model cluster (1 master, 2 workers,
//! 1 expert), with a budgeted fault adversary that may drop, duplicate and
//! reorder frames, crash (blackhole) a worker, and fire a spurious master
//! deadline. BFS guarantees the first counterexample found is of minimal
//! depth; states are deduplicated by an FNV-1a 64 hash of a canonical
//! byte encoding, so explored-state and transition counts are byte-stable
//! run-to-run.
//!
//! Invariants checked on every reachable state:
//!
//! * **budget soundness** — a worker's charged hosted bytes never exceed
//!   certified capacity minus runtime floor, and the charge ledger equals
//!   the sum of resident experts (HostBudget never admits past capacity,
//!   never goes negative);
//! * **idempotence** — re-applying the identical frame to a worker or the
//!   gather fold never changes protocol state (duplicates / stale frames
//!   must be absorbed);
//! * **no stranded receiver memory** (at quiescence) — a non-crashed
//!   worker holding a resident or partial transfer the master has not
//!   placed is a violation unless a frame *addressed to that worker* was
//!   dropped (the directional excuse rule: a dropped worker→master ack is
//!   NOT an excuse — the ARQ must survive ack loss);
//! * **placement consistency** (at quiescence) — no expert double-hosted,
//!   and a recorded placement points at a worker that actually hosts it;
//! * **fault-free progress** — with no adversary budget spent, the
//!   transfer must complete on the first candidate;
//! * **termination** — every path quiesces (master concluded, network
//!   drained) within the depth budget; exceeding a budget is *truncation*
//!   and fails loudly unless `--allow-truncation` acknowledges it.
//!
//! As a negative control, every invocation re-runs the exploration with
//! [`FsmMutation::StrandOnLostFinalAck`] armed on worker 1 (the pre-§15
//! protocol bugs, kept compiled-in) and **requires** a violation, printing
//! its minimized trace as a message-sequence diagram — proof the checker
//! can still see the bug class it exists to prevent. A second scenario
//! exercises the gather leg (stale / corrupt / duplicate result frames
//! against the arg-min fold), and a fault-model cross-check replays seeded
//! schedules through [`crate::netmodel`] against the real
//! `ChaosTransport`.

use crate::netmodel;
use crate::Diagnostic;
use std::collections::{HashMap, HashSet, VecDeque};
use teamnet_core::fsm::{
    abort_frame, FsmMutation, GatherFsm, GatherVerdict, TransferFsm, TransferPhase, WorkerFsm,
    WorkerHooks,
};
use teamnet_core::runtime::encode_results;
use teamnet_core::{HostBudget, LoadAckMsg, LoadChunkMsg, LoadExpertMsg, TransferManifest};
use teamnet_net::{crc32, Envelope, NetError, PayloadKind};
use teamnet_nn::ModelSpec;

/// Depth budget: longest interleaving explored before truncation.
const MAX_DEPTH: usize = 64;
/// State budget: distinct canonical states before truncation.
const MAX_STATES: usize = 400_000;

const MASTER: usize = 0;
const EXPERT: u32 = 7;
const CHUNK_BYTES: usize = 2;
const BASE_ROUND: u64 = 9000;
/// Transfer candidates tried in order by the modeled master.
const CANDIDATES: [usize; 2] = [1, 2];

// Adversary budgets (small model: one of each fault class is enough to
// exercise every protocol branch; the budgets bound the state space).
const DROPS: u8 = 1;
const DUPS: u8 = 1;
const CRASHES: u8 = 1;
const SPURIOUS_TIMEOUTS: u8 = 1;
/// ARQ resends the modeled master may issue per exploration path. One is
/// enough to prove the ack-loss story (drop the final Done ack, resend
/// the chunk, survive via the idempotent re-ack); two swells the state
/// space ~4x without enabling any new protocol branch.
const RESENDS: u8 = 1;

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// One frame in the simulated network (an unordered multiset: delivery in
/// any order models reordering for free).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Frame {
    to: usize,
    from: usize,
    bytes: Vec<u8>,
}

/// One successor produced by a scenario action.
struct Outcome<S> {
    /// Message-sequence-diagram row describing the action.
    row: String,
    state: S,
    /// Action-specific violation (e.g. idempotence), if any.
    violation: Option<String>,
}

/// A protocol scenario the bounded explorer can exhaust.
trait Scenario {
    type State: Clone;
    fn node_names(&self) -> &'static [&'static str];
    fn initial(&self) -> Self::State;
    /// Canonical byte encoding: everything that determines future
    /// transitions, nothing else (counters and timings excluded).
    fn canonical(&self, s: &Self::State) -> Vec<u8>;
    /// All enabled actions, in a fixed deterministic order.
    fn successors(&self, s: &Self::State) -> Vec<Outcome<Self::State>>;
    /// State-wide invariants (budget soundness, quiescence checks).
    fn check(&self, s: &Self::State) -> Option<String>;
}

struct ExplorationReport {
    states: usize,
    transitions: usize,
    violation: Option<(Vec<String>, String)>,
    truncated: Option<String>,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Breadth-first exhaustive search with canonical-hash dedup. The first
/// violation reached is at minimal depth; its trace is reconstructed from
/// the parent map.
fn explore<Sc: Scenario>(sc: &Sc) -> ExplorationReport {
    let root = sc.initial();
    if let Some(msg) = sc.check(&root) {
        return ExplorationReport {
            states: 1,
            transitions: 0,
            violation: Some((Vec::new(), msg)),
            truncated: None,
        };
    }
    let root_hash = fnv1a64(&sc.canonical(&root));
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(root_hash);
    let mut parents: HashMap<u64, (u64, String)> = HashMap::new();
    let mut queue: VecDeque<(Sc::State, u64, usize)> = VecDeque::new();
    queue.push_back((root, root_hash, 0));
    let mut states = 1usize;
    let mut transitions = 0usize;
    let mut truncated: Option<String> = None;

    'bfs: while let Some((state, hash, depth)) = queue.pop_front() {
        let succ = sc.successors(&state);
        if succ.is_empty() {
            continue; // quiescent; already checked when generated
        }
        if depth >= MAX_DEPTH {
            truncated.get_or_insert_with(|| {
                format!("depth budget ({MAX_DEPTH}) reached before quiescence")
            });
            continue;
        }
        for out in succ {
            transitions += 1;
            let violation = out.violation.or_else(|| sc.check(&out.state));
            if let Some(msg) = violation {
                let mut trace = trace_to(&parents, hash);
                trace.push(out.row);
                return ExplorationReport {
                    states,
                    transitions,
                    violation: Some((trace, msg)),
                    truncated,
                };
            }
            let h = fnv1a64(&sc.canonical(&out.state));
            if visited.insert(h) {
                states += 1;
                parents.insert(h, (hash, out.row));
                if states > MAX_STATES {
                    truncated = Some(format!("state budget ({MAX_STATES}) exhausted"));
                    break 'bfs;
                }
                queue.push_back((out.state, h, depth + 1));
            }
        }
    }
    ExplorationReport {
        states,
        transitions,
        violation: None,
        truncated,
    }
}

fn trace_to(parents: &HashMap<u64, (u64, String)>, mut hash: u64) -> Vec<String> {
    let mut rows = Vec::new();
    while let Some((parent, row)) = parents.get(&hash) {
        rows.push(row.clone());
        hash = *parent;
    }
    rows.reverse();
    rows
}

// ---------------------------------------------------------------------------
// Message-sequence-diagram rendering
// ---------------------------------------------------------------------------

const COL_GAP: usize = 34;

fn col(i: usize) -> usize {
    2 + i * COL_GAP
}

fn msc_header(names: &[&str]) -> String {
    let width = col(names.len().saturating_sub(1)) + COL_GAP / 2;
    let mut row = vec![b' '; width];
    for (i, name) in names.iter().enumerate() {
        let start = col(i).saturating_sub(name.len() / 2);
        for (j, b) in name.bytes().enumerate() {
            if let Some(slot) = row.get_mut(start + j) {
                *slot = b;
            }
        }
    }
    String::from_utf8_lossy(&row).trim_end().to_string()
}

/// An arrow between two lifelines; `head` is '>'/'<' for delivery, 'X'
/// for a frame the adversary removed (drop / delivery into a crashed
/// node).
fn msc_message(n: usize, from: usize, to: usize, label: &str, head: u8) -> String {
    let width = col(n - 1) + 1;
    let mut row = vec![b' '; width];
    for i in 0..n {
        row[col(i)] = b'|';
    }
    let (lo, hi) = (col(from.min(to)), col(from.max(to)));
    for slot in row.iter_mut().take(hi).skip(lo + 1) {
        *slot = b'-';
    }
    if head == b'X' {
        row[(lo + hi) / 2] = b'X';
    } else if to > from {
        row[hi - 1] = b'>';
    } else {
        row[lo + 1] = b'<';
    }
    let span = hi - lo - 3;
    let label: String = label.chars().take(span).collect();
    let start = lo + 1 + (span.saturating_sub(label.len())) / 2 + 1;
    for (j, b) in label.bytes().enumerate() {
        if let Some(slot) = row.get_mut(start + j) {
            *slot = b;
        }
    }
    String::from_utf8_lossy(&row).trim_end().to_string()
}

/// A local event on one lifeline (crash, deadline expiry).
fn msc_note(n: usize, node: usize, label: &str) -> String {
    let width = col(n - 1) + 1;
    let mut row = vec![b' '; width];
    for i in 0..n {
        row[col(i)] = b'|';
    }
    row[col(node)] = b'*';
    let mut s = String::from_utf8_lossy(&row).trim_end().to_string();
    s.push_str("   * ");
    s.push_str(label);
    s
}

/// Human label for a frame, decoded down to the protocol message.
fn frame_label(frame: &Frame) -> String {
    let Ok(env) = Envelope::decode(&frame.bytes) else {
        return "undecodable frame".to_string();
    };
    let what = match env.kind {
        PayloadKind::LoadExpert => match LoadExpertMsg::decode(&env.payload) {
            Ok(LoadExpertMsg::Offer { expert, .. }) => format!("Offer e{expert}"),
            Ok(LoadExpertMsg::Release { expert }) => format!("Release e{expert}"),
            Ok(LoadExpertMsg::Abort { expert }) => format!("Abort e{expert}"),
            Err(_) => "LoadExpert?".to_string(),
        },
        PayloadKind::LoadChunk => match LoadChunkMsg::decode(&env.payload) {
            Ok(m) => format!("Chunk#{} e{}", m.index, m.expert),
            Err(_) => "LoadChunk?".to_string(),
        },
        PayloadKind::LoadAck => match LoadAckMsg::decode(&env.payload) {
            Ok(m) => format!("{:?}({}) e{}", m.status, m.arg, m.expert),
            Err(_) => "LoadAck?".to_string(),
        },
        other => format!("{other:?}"),
    };
    format!("{what} @r{}", env.round)
}

// ---------------------------------------------------------------------------
// Shared worker-delivery helper (idempotence checked at every delivery)
// ---------------------------------------------------------------------------

/// Hooks with no real models behind them: install always succeeds, forward
/// returns a canned payload. Everything protocol-visible stays inside the
/// FSM, so canned hooks cannot mask a protocol bug.
struct CannedHooks {
    forward_payload: Vec<u8>,
}

impl WorkerHooks for CannedHooks {
    fn forward(&mut self, _input: &[u8]) -> Result<Vec<u8>, NetError> {
        Ok(self.forward_payload.clone())
    }

    fn install(
        &mut self,
        _expert: u32,
        _manifest: &TransferManifest,
        _state: &[u8],
    ) -> Result<(), NetError> {
        Ok(())
    }

    fn evict(&mut self, _expert: u32) {}
}

/// Applies one frame to a worker, enqueues its replies, and checks the
/// idempotence invariant: the identical frame re-applied to the resulting
/// state must leave the canonical protocol state unchanged.
fn deliver_to_worker(
    worker: &mut WorkerFsm,
    node: usize,
    bytes: &[u8],
    forward_payload: &[u8],
    net: &mut Vec<Frame>,
) -> Option<String> {
    let mut hooks = CannedHooks {
        forward_payload: forward_payload.to_vec(),
    };
    let replies = match worker.step(bytes, &mut hooks) {
        Ok(replies) => replies,
        Err(e) => return Some(format!("worker {node} transition error: {e}")),
    };
    let snapshot = worker.canonical_protocol_bytes();
    let mut replayed = worker.clone();
    let _ = replayed.step(bytes, &mut hooks);
    if replayed.canonical_protocol_bytes() != snapshot {
        return Some(format!(
            "idempotence violated: duplicate delivery of [{}] mutates worker {node} protocol state",
            frame_label(&Frame {
                to: node,
                from: MASTER,
                bytes: bytes.to_vec()
            })
        ));
    }
    for reply in replies {
        net.push(Frame {
            to: reply.to,
            from: node,
            bytes: reply.encode(),
        });
    }
    None
}

// ---------------------------------------------------------------------------
// Scenario 1: recovery transfer (offer / chunk ARQ / abort / backtrack)
// ---------------------------------------------------------------------------

/// The modeled master: drives [`TransferFsm`] over the candidate list with
/// bounded ARQ resends, exactly like `RecoveryManager::transfer` minus the
/// wall clock.
#[derive(Clone)]
struct RecMaster {
    attempt: usize,
    fsm: Option<TransferFsm>,
    placed: Option<usize>,
    resends_left: u8,
    gave_up: bool,
}

#[derive(Clone)]
struct RecState {
    master: RecMaster,
    /// Worker node `w + 1` is `workers[w]`.
    workers: Vec<WorkerFsm>,
    crashed: Vec<bool>,
    /// Directional excuse ledger: true when a frame addressed TO worker
    /// `w + 1` was dropped by the adversary. Dropped worker→master frames
    /// do not set this — losing an ack must never strand memory.
    lost_to: Vec<bool>,
    net: Vec<Frame>,
    drops_left: u8,
    dups_left: u8,
    crashes_left: u8,
    spurious_left: u8,
}

struct Recovery {
    mutation: FsmMutation,
    manifest: TransferManifest,
    state_bytes: Vec<u8>,
}

impl Recovery {
    fn new(mutation: FsmMutation) -> Self {
        let state_bytes = vec![9u8, 8, 7, 6, 5];
        let manifest = TransferManifest {
            spec: ModelSpec::mlp(2, 4),
            num_chunks: state_bytes.len().div_ceil(CHUNK_BYTES) as u32,
            total_bytes: state_bytes.len() as u64,
            state_crc: crc32(&state_bytes),
            required_resident_bytes: 300,
        };
        Recovery {
            mutation,
            manifest,
            state_bytes,
        }
    }

    fn start_attempt(&self, master: &mut RecMaster, net: &mut Vec<Frame>) {
        let target = CANDIDATES[master.attempt];
        let fsm = TransferFsm::new(
            EXPERT,
            target,
            BASE_ROUND + master.attempt as u64,
            self.manifest.num_chunks,
        );
        if let Some(frame) = fsm.current_frame(&self.manifest, &self.state_bytes, CHUNK_BYTES) {
            net.push(Frame {
                to: frame.to,
                from: MASTER,
                bytes: frame.encode(),
            });
        }
        master.fsm = Some(fsm);
    }

    /// Current attempt concluded without placement: try the next
    /// candidate or give up.
    fn backtrack(&self, master: &mut RecMaster, net: &mut Vec<Frame>) {
        master.fsm = None;
        master.attempt += 1;
        if master.attempt < CANDIDATES.len() {
            self.start_attempt(master, net);
        } else {
            master.gave_up = true;
        }
    }

    fn master_on_frame(&self, master: &mut RecMaster, net: &mut Vec<Frame>, bytes: &[u8]) {
        let Ok(env) = Envelope::decode(bytes) else {
            return;
        };
        let Some(mut fsm) = master.fsm.take() else {
            return; // concluded; stale ack ignored
        };
        let Some(ack) = fsm.accept(&env) else {
            master.fsm = Some(fsm); // not this transfer's ack
            return;
        };
        fsm.on_ack(ack);
        match fsm.phase() {
            TransferPhase::Offering | TransferPhase::Streaming => {
                if let Some(frame) =
                    fsm.current_frame(&self.manifest, &self.state_bytes, CHUNK_BYTES)
                {
                    net.push(Frame {
                        to: frame.to,
                        from: MASTER,
                        bytes: frame.encode(),
                    });
                }
                master.fsm = Some(fsm);
            }
            TransferPhase::Complete => {
                master.placed = Some(fsm.target());
            }
            TransferPhase::Failed(fault) => {
                if fault.needs_abort() {
                    let abort = abort_frame(fsm.target(), fsm.round(), EXPERT);
                    net.push(Frame {
                        to: abort.to,
                        from: MASTER,
                        bytes: abort.encode(),
                    });
                }
                self.backtrack(master, net);
            }
        }
    }

    /// Deadline expiry on the current attempt: abort it (round-scoped)
    /// and backtrack — mirrors `RecoveryManager::transfer`'s timeout arm.
    fn master_timeout(&self, master: &mut RecMaster, net: &mut Vec<Frame>) {
        if let Some(fsm) = master.fsm.take() {
            let abort = abort_frame(fsm.target(), fsm.round(), EXPERT);
            net.push(Frame {
                to: abort.to,
                from: MASTER,
                bytes: abort.encode(),
            });
        }
        self.backtrack(master, net);
    }

    fn quiescent(&self, s: &RecState) -> bool {
        s.net.is_empty() && s.master.fsm.is_none()
    }
}

/// Indices of distinct frames in a sorted multiset (equal frames yield
/// one action — delivering either copy is the same transition).
fn distinct_frames(net: &[Frame]) -> Vec<usize> {
    let mut idxs = Vec::new();
    for i in 0..net.len() {
        if i == 0 || net[i] != net[i - 1] {
            idxs.push(i);
        }
    }
    idxs
}

impl Scenario for Recovery {
    type State = RecState;

    fn node_names(&self) -> &'static [&'static str] {
        &["master", "worker1", "worker2"]
    }

    fn initial(&self) -> RecState {
        let mut master = RecMaster {
            attempt: 0,
            fsm: None,
            placed: None,
            resends_left: RESENDS,
            gave_up: false,
        };
        let mut net = Vec::new();
        self.start_attempt(&mut master, &mut net);
        net.sort();
        RecState {
            master,
            workers: vec![
                // Worker 1 has certified spare for the expert (and carries
                // the mutation in the negative-control run)...
                WorkerFsm::with_mutation(MASTER, HostBudget::new(1000, 100), self.mutation),
                // ...worker 2 must refuse: spare 250 < required 300.
                WorkerFsm::new(MASTER, HostBudget::new(350, 100)),
            ],
            crashed: vec![false; CANDIDATES.len()],
            lost_to: vec![false; CANDIDATES.len()],
            net,
            drops_left: DROPS,
            dups_left: DUPS,
            crashes_left: CRASHES,
            spurious_left: SPURIOUS_TIMEOUTS,
        }
    }

    fn canonical(&self, s: &RecState) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(s.master.attempt as u8);
        out.push(u8::from(s.master.gave_up));
        out.push(s.master.placed.map_or(0, |w| w as u8 + 1));
        out.push(s.master.resends_left);
        match &s.master.fsm {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                out.push(f.target() as u8);
                out.extend_from_slice(&f.round().to_le_bytes());
                out.extend_from_slice(&f.exchange_salt().to_le_bytes());
                out.push(match f.phase() {
                    TransferPhase::Offering => 0,
                    TransferPhase::Streaming => 1,
                    TransferPhase::Complete | TransferPhase::Failed(_) => 2,
                });
            }
        }
        for w in &s.workers {
            let bytes = w.canonical_protocol_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        for &c in &s.crashed {
            out.push(u8::from(c));
        }
        for &l in &s.lost_to {
            out.push(u8::from(l));
        }
        out.extend_from_slice(&[s.drops_left, s.dups_left, s.crashes_left, s.spurious_left]);
        out.extend_from_slice(&(s.net.len() as u32).to_le_bytes());
        for f in &s.net {
            out.push(f.to as u8);
            out.push(f.from as u8);
            out.extend_from_slice(&(f.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&f.bytes);
        }
        out
    }

    fn successors(&self, s: &RecState) -> Vec<Outcome<RecState>> {
        let n = self.node_names().len();
        let mut out = Vec::new();
        let idxs = distinct_frames(&s.net);

        // Deliver any in-flight frame (reordering is free: any order).
        for &i in &idxs {
            let mut t = s.clone();
            let frame = t.net.remove(i);
            let label = frame_label(&frame);
            let mut violation = None;
            let row;
            if frame.to == MASTER {
                self.master_on_frame(&mut t.master, &mut t.net, &frame.bytes);
                row = msc_message(n, frame.from, frame.to, &label, b'>');
            } else if t.crashed[frame.to - 1] {
                // Delivery into a blackholed node is loss — but the crash
                // itself is the excuse, not the lost frame.
                row = msc_message(n, frame.from, frame.to, &label, b'X');
            } else {
                violation = deliver_to_worker(
                    &mut t.workers[frame.to - 1],
                    frame.to,
                    &frame.bytes,
                    &[],
                    &mut t.net,
                );
                row = msc_message(n, frame.from, frame.to, &label, b'>');
            }
            t.net.sort();
            out.push(Outcome {
                row,
                state: t,
                violation,
            });
        }

        // Adversary: drop a frame.
        if s.drops_left > 0 {
            for &i in &idxs {
                let mut t = s.clone();
                let frame = t.net.remove(i);
                if frame.to != MASTER {
                    t.lost_to[frame.to - 1] = true;
                }
                t.drops_left -= 1;
                let label = format!("DROP {}", frame_label(&frame));
                out.push(Outcome {
                    row: msc_message(n, frame.from, frame.to, &label, b'X'),
                    state: t,
                    violation: None,
                });
            }
        }

        // Adversary: duplicate a frame.
        if s.dups_left > 0 {
            for &i in &idxs {
                let mut t = s.clone();
                let frame = t.net[i].clone();
                let label = format!("DUP {}", frame_label(&frame));
                let row = msc_message(n, frame.from, frame.to, &label, b'>');
                t.net.push(frame);
                t.net.sort();
                t.dups_left -= 1;
                out.push(Outcome {
                    row,
                    state: t,
                    violation: None,
                });
            }
        }

        // Adversary: crash (blackhole) a worker.
        if s.crashes_left > 0 {
            for w in 0..s.workers.len() {
                if s.crashed[w] {
                    continue;
                }
                let mut t = s.clone();
                t.crashed[w] = true;
                t.crashes_left -= 1;
                out.push(Outcome {
                    row: msc_note(n, w + 1, "crash (blackhole)"),
                    state: t,
                    violation: None,
                });
            }
        }

        // Master ARQ resend of the in-flight frame.
        if s.master.resends_left > 0 {
            if let Some(fsm) = &s.master.fsm {
                if let Some(frame) =
                    fsm.current_frame(&self.manifest, &self.state_bytes, CHUNK_BYTES)
                {
                    let mut t = s.clone();
                    t.master.resends_left -= 1;
                    let net_frame = Frame {
                        to: frame.to,
                        from: MASTER,
                        bytes: frame.encode(),
                    };
                    let label = format!("RESEND {}", frame_label(&net_frame));
                    let row = msc_message(n, MASTER, net_frame.to, &label, b'>');
                    t.net.push(net_frame);
                    t.net.sort();
                    out.push(Outcome {
                        row,
                        state: t,
                        violation: None,
                    });
                }
            }
        }

        // Master deadline expiry. While a signal can still reach the
        // master — an ack in flight toward it, a frame in flight toward
        // the live current target (whose delivery generates an ack), or a
        // resend available — an expiry is *spurious* and consumes
        // adversary budget. Once the master is genuinely stuck (nothing
        // inbound, nothing deliverable to a live target, no resends) the
        // deadline MUST fire, free — which is what guarantees every
        // exploration path terminates AND makes "fault-free ⇒ placed on
        // worker 1" a theorem rather than a timing accident.
        if let Some(fsm) = &s.master.fsm {
            let target = fsm.target();
            let may_still_hear = s.net.iter().any(|f| f.to == MASTER)
                || (!s.crashed[target - 1] && s.net.iter().any(|f| f.to == target))
                || s.master.resends_left > 0;
            let free = !may_still_hear;
            if free || s.spurious_left > 0 {
                let mut t = s.clone();
                if !free {
                    t.spurious_left -= 1;
                }
                let label = format!(
                    "deadline expired @r{} — abort attempt, backtrack",
                    fsm.round()
                );
                self.master_timeout(&mut t.master, &mut t.net);
                t.net.sort();
                out.push(Outcome {
                    row: msc_note(n, MASTER, &label),
                    state: t,
                    violation: None,
                });
            }
        }

        out
    }

    fn check(&self, s: &RecState) -> Option<String> {
        // Budget soundness holds in every reachable state.
        for (w, worker) in s.workers.iter().enumerate() {
            let node = w + 1;
            let b = worker.budget();
            if b.hosted_bytes() + b.runtime_bytes() > b.capacity_bytes() {
                return Some(format!(
                    "worker {node} budget overcommitted: hosted {} + runtime {} > certified capacity {}",
                    b.hosted_bytes(),
                    b.runtime_bytes(),
                    b.capacity_bytes()
                ));
            }
            let residents: u64 = worker.hosted().values().map(|h| h.resident_bytes).sum();
            if residents != b.hosted_bytes() {
                return Some(format!(
                    "worker {node} charge ledger drift: residents sum {residents} != charged {}",
                    b.hosted_bytes()
                ));
            }
        }
        if !self.quiescent(s) {
            return None;
        }
        // Quiescence invariants.
        if s.drops_left == DROPS
            && s.dups_left == DUPS
            && s.crashes_left == CRASHES
            && s.spurious_left == SPURIOUS_TIMEOUTS
            && s.master.placed != Some(CANDIDATES[0])
        {
            return Some(format!(
                "fault-free execution did not place expert {EXPERT} on worker {}",
                CANDIDATES[0]
            ));
        }
        let live_hosts: Vec<usize> = s
            .workers
            .iter()
            .enumerate()
            .filter(|(w, worker)| !s.crashed[*w] && worker.hosted().contains_key(&EXPERT))
            .map(|(w, _)| w + 1)
            .collect();
        if live_hosts.len() > 1 {
            return Some(format!(
                "expert {EXPERT} double-hosted on workers {live_hosts:?}"
            ));
        }
        if let Some(p) = s.master.placed {
            if !s.crashed[p - 1] && !s.workers[p - 1].hosted().contains_key(&EXPERT) {
                return Some(format!(
                    "placement points at worker {p} but expert {EXPERT} is not resident there (zero-hosted)"
                ));
            }
        }
        for (w, worker) in s.workers.iter().enumerate() {
            let node = w + 1;
            if s.crashed[w] || s.lost_to[w] {
                continue; // crash or an inbound drop excuses leftovers
            }
            let hosts_unplaced =
                worker.hosted().contains_key(&EXPERT) && s.master.placed != Some(node);
            let partial_open = worker.partial().is_some();
            if hosts_unplaced || partial_open {
                return Some(format!(
                    "stranded receiver memory on worker {node}: hosted-unplaced={hosts_unplaced} \
                     partial={partial_open}, with no inbound drop or crash to excuse it \
                     (a lost worker→master ack is not an excuse)"
                ));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Scenario 2: inference session gather (stale / corrupt / dup results)
// ---------------------------------------------------------------------------

const SESSION_ROUND: u64 = 500;

/// Canned per-node result rows: `(label, entropy)`. Entropies are strictly
/// ordered so the expected arg-min winner is unambiguous for every
/// responder subset.
const LOCAL_RESULT: (usize, f32) = (0, 0.75);
const WORKER_RESULTS: [(usize, f32); 2] = [(1, 0.5), (2, 0.25)];

#[derive(Clone)]
struct SessState {
    gather: GatherFsm,
    /// Bit `p` set when peer `p` contributed a folded result.
    responded: u8,
    workers: Vec<WorkerFsm>,
    net: Vec<Frame>,
    drops_left: u8,
    dups_left: u8,
}

struct Session;

impl Session {
    fn expected_winner(responded: u8) -> (usize, usize, f32) {
        let mut best = (LOCAL_RESULT.0, MASTER, LOCAL_RESULT.1);
        for (w, &(label, entropy)) in WORKER_RESULTS.iter().enumerate() {
            let node = w + 1;
            if responded & (1 << node) != 0 && entropy < best.2 {
                best = (label, node, entropy);
            }
        }
        best
    }
}

impl Scenario for Session {
    type State = SessState;

    fn node_names(&self) -> &'static [&'static str] {
        &["master", "worker1", "worker2"]
    }

    fn initial(&self) -> SessState {
        let gather = GatherFsm::new(SESSION_ROUND, MASTER, 1, vec![LOCAL_RESULT], None, false);
        let input = Envelope::new(SESSION_ROUND, PayloadKind::Input, Vec::new()).encode();
        // Adversarial pre-staged traffic: a stale result from the previous
        // round that would WIN the arg-min if wrongly folded, and a
        // corrupt frame that would also win if its CRC failure were
        // ignored.
        let stale = Envelope::new(
            SESSION_ROUND - 1,
            PayloadKind::Result,
            encode_results(&[(9, 0.01)]),
        )
        .encode();
        let mut corrupt = Envelope::new(
            SESSION_ROUND,
            PayloadKind::Result,
            encode_results(&[(9, 0.02)]),
        )
        .encode();
        if let Some(b) = corrupt.last_mut() {
            *b ^= 0x20;
        }
        let mut net = vec![
            Frame {
                to: 1,
                from: MASTER,
                bytes: input.clone(),
            },
            Frame {
                to: 2,
                from: MASTER,
                bytes: input,
            },
            Frame {
                to: MASTER,
                from: 1,
                bytes: stale,
            },
            Frame {
                to: MASTER,
                from: 2,
                bytes: corrupt,
            },
        ];
        net.sort();
        SessState {
            gather,
            responded: 0,
            workers: vec![
                WorkerFsm::new(MASTER, HostBudget::unlimited()),
                WorkerFsm::new(MASTER, HostBudget::unlimited()),
            ],
            net,
            drops_left: DROPS,
            dups_left: DUPS,
        }
    }

    fn canonical(&self, s: &SessState) -> Vec<u8> {
        let mut out = Vec::new();
        for p in s.gather.clone().into_predictions() {
            out.extend_from_slice(&(p.label as u64).to_le_bytes());
            out.extend_from_slice(&(p.expert as u64).to_le_bytes());
            out.extend_from_slice(&p.entropy.to_bits().to_le_bytes());
        }
        out.push(s.responded);
        for w in &s.workers {
            let bytes = w.canonical_protocol_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out.extend_from_slice(&[s.drops_left, s.dups_left]);
        out.extend_from_slice(&(s.net.len() as u32).to_le_bytes());
        for f in &s.net {
            out.push(f.to as u8);
            out.push(f.from as u8);
            out.extend_from_slice(&(f.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&f.bytes);
        }
        out
    }

    fn successors(&self, s: &SessState) -> Vec<Outcome<SessState>> {
        let n = self.node_names().len();
        let mut out = Vec::new();
        let idxs = distinct_frames(&s.net);

        for &i in &idxs {
            let mut t = s.clone();
            let frame = t.net.remove(i);
            let label = frame_label(&frame);
            let row = msc_message(n, frame.from, frame.to, &label, b'>');
            let mut violation = None;
            if frame.to == MASTER {
                match t.gather.step(frame.from, &frame.bytes) {
                    GatherVerdict::Accepted { folded } => {
                        if folded {
                            t.responded |= 1 << frame.from;
                        }
                    }
                    GatherVerdict::Discarded(_) => {}
                    GatherVerdict::Fatal(e) => {
                        violation = Some(format!("lax-mode gather returned fatal: {e}"));
                    }
                }
                if violation.is_none() {
                    // Idempotence: re-folding the identical frame must not
                    // change the predictions (min-fold absorbs duplicates).
                    let before = t.gather.clone().into_predictions();
                    let mut again = t.gather.clone();
                    let _ = again.step(frame.from, &frame.bytes);
                    if again.into_predictions() != before {
                        violation = Some(format!(
                            "idempotence violated: duplicate gather frame [{label}] moved the arg-min"
                        ));
                    }
                }
            } else {
                let canned = encode_results(&[WORKER_RESULTS[frame.to - 1]]);
                violation = deliver_to_worker(
                    &mut t.workers[frame.to - 1],
                    frame.to,
                    &frame.bytes,
                    &canned,
                    &mut t.net,
                );
            }
            t.net.sort();
            out.push(Outcome {
                row,
                state: t,
                violation,
            });
        }

        if s.drops_left > 0 {
            for &i in &idxs {
                let mut t = s.clone();
                let frame = t.net.remove(i);
                t.drops_left -= 1;
                let label = format!("DROP {}", frame_label(&frame));
                out.push(Outcome {
                    row: msc_message(n, frame.from, frame.to, &label, b'X'),
                    state: t,
                    violation: None,
                });
            }
        }

        if s.dups_left > 0 {
            for &i in &idxs {
                let mut t = s.clone();
                let frame = t.net[i].clone();
                let label = format!("DUP {}", frame_label(&frame));
                let row = msc_message(n, frame.from, frame.to, &label, b'>');
                t.net.push(frame);
                t.net.sort();
                t.dups_left -= 1;
                out.push(Outcome {
                    row,
                    state: t,
                    violation: None,
                });
            }
        }

        out
    }

    fn check(&self, s: &SessState) -> Option<String> {
        if !s.net.is_empty() {
            return None;
        }
        // Quiescence: the fold must equal the arg-min recomputed
        // independently over exactly the responders — stale and corrupt
        // frames must have contributed nothing.
        let (label, expert, entropy) = Session::expected_winner(s.responded);
        let got = s.gather.clone().into_predictions();
        let Some(p) = got.first() else {
            return Some("gather lost its predictions".to_string());
        };
        if p.label != label || p.expert != expert || p.entropy != entropy {
            return Some(format!(
                "arg-min diverged from responders {{responded bits {:#05b}}}: got (label {}, expert {}, h {}), expected (label {label}, expert {expert}, h {entropy})",
                s.responded, p.label, p.expert, p.entropy
            ));
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs the full `cargo xtask mc` pass: recovery exploration, the mutant
/// negative control (which must violate), the session-gather exploration,
/// and the fault-model cross-check against the real `ChaosTransport`.
///
/// Returns the byte-stable summary lines (explored-state / transition
/// counts and the mutant's minimized counterexample); appends a
/// [`Diagnostic`] per failure. Timing goes to stderr in the caller, never
/// into these lines.
pub fn check(allow_truncation: bool, diags: &mut Vec<Diagnostic>) -> Vec<String> {
    let mut lines = Vec::new();

    let handle_truncation = |name: &str,
                             report: &ExplorationReport,
                             diags: &mut Vec<Diagnostic>,
                             lines: &mut Vec<String>| {
        if let Some(why) = &report.truncated {
            if allow_truncation {
                lines.push(format!(
                    "xtask mc: {name} — WARNING: exploration truncated ({why}); \
                         coverage bounded, accepted via --allow-truncation"
                ));
            } else {
                diags.push(Diagnostic {
                    path: format!("mc://{name}"),
                    line: 0,
                    rule: "mc-truncated",
                    message: format!(
                        "exploration truncated ({why}); results prove nothing about \
                             unexplored interleavings — raise the budget or acknowledge \
                             with --allow-truncation"
                    ),
                });
            }
        }
    };

    // 1. Recovery protocol, production transition functions: must be
    //    violation-free over the whole bounded state space.
    let recovery = Recovery::new(FsmMutation::None);
    let report = explore(&recovery);
    handle_truncation("recovery", &report, diags, &mut lines);
    match &report.violation {
        None => lines.push(format!(
            "xtask mc: recovery protocol — explored {} states, {} transitions; 0 violations",
            report.states, report.transitions
        )),
        Some((trace, message)) => diags.push(Diagnostic {
            path: "mc://recovery".to_string(),
            line: 0,
            rule: "mc-invariant",
            message: render_counterexample(&recovery, trace, message),
        }),
    }

    // 2. Negative control: the StrandOnLostFinalAck mutant MUST violate,
    //    and its minimized counterexample is printed as an MSC every run —
    //    proof the checker still sees the stranded-memory bug class.
    let mutant = Recovery::new(FsmMutation::StrandOnLostFinalAck);
    let mutant_report = explore(&mutant);
    match &mutant_report.violation {
        Some((trace, message)) => {
            lines.push(format!(
                "xtask mc: negative control — mutant caught after {} states ({} events, minimized):",
                mutant_report.states,
                trace.len()
            ));
            lines.push(render_counterexample(&mutant, trace, message));
        }
        None => diags.push(Diagnostic {
            path: "mc://negative-control".to_string(),
            line: 0,
            rule: "mc-negative-control",
            message: format!(
                "the StrandOnLostFinalAck mutant produced no invariant violation over {} \
                 states — the checker can no longer see the bug class it exists to prevent",
                mutant_report.states
            ),
        }),
    }

    // 3. Session gather leg.
    let session = Session;
    let report = explore(&session);
    handle_truncation("session", &report, diags, &mut lines);
    match &report.violation {
        None => lines.push(format!(
            "xtask mc: session gather — explored {} states, {} transitions; 0 violations",
            report.states, report.transitions
        )),
        Some((trace, message)) => diags.push(Diagnostic {
            path: "mc://session".to_string(),
            line: 0,
            rule: "mc-invariant",
            message: render_counterexample(&session, trace, message),
        }),
    }

    // 4. Fault-model cross-check: the adversary's drop/dup/reorder
    //    semantics must match the live ChaosTransport on seeded schedules.
    match netmodel::verify_seeds(&[1, 2, 3, 4, 5, 6, 7, 8]) {
        Ok(frames) => lines.push(format!(
            "xtask mc: fault model — {frames} frames replayed against ChaosTransport, 0 divergences"
        )),
        Err(e) => diags.push(Diagnostic {
            path: "mc://fault-model".to_string(),
            line: 0,
            rule: "mc-fault-model",
            message: e,
        }),
    }

    lines
}

fn render_counterexample<Sc: Scenario>(sc: &Sc, trace: &[String], message: &str) -> String {
    let mut out = String::new();
    out.push_str(&msc_header(sc.node_names()));
    out.push('\n');
    for row in trace {
        out.push_str(row);
        out.push('\n');
    }
    out.push_str("VIOLATION: ");
    out.push_str(message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_fsm_explores_clean() {
        let report = explore(&Recovery::new(FsmMutation::None));
        assert!(report.truncated.is_none(), "{:?}", report.truncated);
        assert!(
            report.violation.is_none(),
            "{}",
            report
                .violation
                .map(|(t, m)| format!("{m}\n{}", t.join("\n")))
                .unwrap_or_default()
        );
        assert!(report.states > 100, "suspiciously small state space");
    }

    #[test]
    fn mutant_is_caught_with_minimal_trace() {
        let report = explore(&Recovery::new(FsmMutation::StrandOnLostFinalAck));
        let (trace, message) = report.violation.expect("mutant must violate");
        assert!(
            message.contains("stranded"),
            "expected a stranded-memory violation, got: {message}"
        );
        assert!(!trace.is_empty());
    }

    #[test]
    fn session_gather_explores_clean() {
        let report = explore(&Session);
        assert!(report.truncated.is_none());
        assert!(
            report.violation.is_none(),
            "{}",
            report
                .violation
                .map(|(t, m)| format!("{m}\n{}", t.join("\n")))
                .unwrap_or_default()
        );
    }

    #[test]
    fn exploration_counts_are_deterministic() {
        let a = explore(&Recovery::new(FsmMutation::None));
        let b = explore(&Recovery::new(FsmMutation::None));
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn msc_rows_are_well_formed() {
        let header = msc_header(&["master", "worker1", "worker2"]);
        assert!(header.contains("master") && header.contains("worker2"));
        let row = msc_message(3, 0, 2, "Offer e7 @r9000", b'>');
        assert!(row.contains("Offer e7 @r9000"));
        assert!(row.ends_with('>') || row.contains('>'));
        let note = msc_note(3, 1, "crash (blackhole)");
        assert!(note.contains("crash"));
    }
}
