//! Pass 0: workspace manifest invariants.
//!
//! The build environment has no crates-io access, so every dependency in
//! `[workspace.dependencies]` must be a `path = …` entry (vendored stub or
//! workspace crate); a registry dependency would only fail at the first
//! clean build on another machine. Also pins resolver 2, which the
//! per-target feature unification of the bench crate relies on.

use crate::Diagnostic;
use std::fs;
use std::path::Path;

/// Checks the root `Cargo.toml`, appending diagnostics.
pub fn check(root: &Path, diags: &mut Vec<Diagnostic>) {
    let path = root.join("Cargo.toml");
    let Ok(text) = fs::read_to_string(&path) else {
        diags.push(Diagnostic {
            path: "Cargo.toml".into(),
            line: 1,
            rule: "workspace-manifest",
            message: "workspace manifest is unreadable".into(),
        });
        return;
    };

    if !text.contains("resolver = \"2\"") {
        diags.push(Diagnostic {
            path: "Cargo.toml".into(),
            line: 1,
            rule: "workspace-resolver",
            message: "workspace must pin resolver = \"2\"".into(),
        });
    }

    // Scan the [workspace.dependencies] table: every entry must be path-based.
    let mut in_table = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_table = trimmed == "[workspace.dependencies]";
            continue;
        }
        if !in_table || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.contains('=') && !trimmed.contains("path") {
            diags.push(Diagnostic {
                path: "Cargo.toml".into(),
                line: idx + 1,
                rule: "path-deps",
                message: format!(
                    "workspace dependency must be path-based (no registry access): {trimmed}"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_manifest_is_clean() {
        let root = crate::workspace_root();
        let mut diags = Vec::new();
        check(&root, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
