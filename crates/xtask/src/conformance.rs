//! FSM conformance audit: protocol dispatch must live in the checked
//! state machines (DESIGN.md §15).
//!
//! The model checker (`cargo xtask mc`) only proves anything about the
//! protocol if the *shipping* handlers are the transition functions it
//! drives. A handler that matches on `PayloadKind` outside
//! `crates/core/src/fsm.rs` is protocol logic the explorer never sees —
//! exactly how checked code rots into a parallel spec. Two rules, over
//! **non-test** lines of the `core` crate only:
//!
//! | rule           | requires                                              |
//! |----------------|-------------------------------------------------------|
//! | `fsm-dispatch` | no `PayloadKind::X` *dispatch* (match arm `=>`,       |
//! |                | or-pattern `\|`, or `if let … =`) outside `fsm.rs`;   |
//! |                | plain construction (`Envelope::new(_, PayloadKind::X, |
//! |                | …)`) and `==`/`!=` comparisons stay legal everywhere  |
//! | `fsm-coverage` | every `fn step` in `fsm.rs` names all `PayloadKind`   |
//! |                | variants (a transition or an explicit typed rejection |
//! |                | per kind) and contains no wildcard `_ =>` arm, which  |
//! |                | would silently swallow new kinds                      |
//!
//! Escapes use the usual `// lint: allow(<rule>)` on the offending line
//! (for `fsm-dispatch`) or on the `fn step` line (for `fsm-coverage`).

use crate::protocol::enum_variants;
use crate::symbols::Model;
use crate::Diagnostic;

const FSM_FILE: &str = "crates/core/src/fsm.rs";
const PAYLOAD_FILE: &str = "crates/net/src/envelope.rs";
const DISPATCH_CRATE: &str = "core";

/// Runs both conformance rules. Returns `(dispatch_sites, step_fns)`
/// audited, for the summary line.
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> (usize, usize) {
    let sites = check_dispatch(model, diags);
    let steps = check_coverage(model, diags);
    (sites, steps)
}

/// `fsm-dispatch`: flags `PayloadKind::<Variant>` used as a dispatch
/// pattern in non-test `core` code outside `fsm.rs`. Returns the number
/// of `PayloadKind::` sites inspected.
fn check_dispatch(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    let mut inspected = 0usize;
    for file in &model.files {
        if file.crate_name != DISPATCH_CRATE || file.rel_path == FSM_FILE {
            continue;
        }
        for (idx, line) in file.masked.lines.iter().enumerate() {
            if file.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for tail in dispatch_tails(line) {
                inspected += 1;
                if is_dispatch_tail(tail) && !file.masked.is_allowed(idx + 1, "fsm-dispatch") {
                    diags.push(Diagnostic {
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        rule: "fsm-dispatch",
                        message: format!(
                            "`PayloadKind` dispatched outside the checked state machines \
                             ({FSM_FILE}); route this handler through an fsm `step` \
                             function so `cargo xtask mc` can explore it: `{}`",
                            line.trim()
                        ),
                    });
                }
            }
        }
    }
    inspected
}

/// For each `PayloadKind::<Ident>` occurrence on `line`, yields the text
/// immediately following the variant identifier.
fn dispatch_tails(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = line.get(start..).and_then(|s| s.find("PayloadKind::")) {
        let after = start + pos + "PayloadKind::".len();
        let rest = line.get(after..).unwrap_or("");
        let ident_len = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .count();
        if ident_len > 0 {
            out.push(rest.get(ident_len..).unwrap_or(""));
        }
        start = after + ident_len.max(1);
    }
    out
}

/// Whether the text after a `PayloadKind::<Variant>` token marks a
/// dispatch: a match arm (`=>`), an or-pattern (`|`, but not `||` or
/// `|=`), or an `if let` binding (`= ` that is not `==`).
fn is_dispatch_tail(tail: &str) -> bool {
    let t = tail.trim_start();
    if t.starts_with("=>") {
        return true;
    }
    if t.starts_with('|') && !t.starts_with("||") && !t.starts_with("|=") {
        return true;
    }
    // `if let PayloadKind::X = expr` — a `=` not part of `==` / `=>`.
    t.starts_with('=') && !t.starts_with("==") && !t.starts_with("=>")
}

/// `fsm-coverage`: every `fn step` in `fsm.rs` must name every
/// `PayloadKind` variant (transition or explicit typed rejection) and
/// must not contain a wildcard `_ =>` arm. Returns the number of `step`
/// functions audited.
fn check_coverage(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    let Some(variants) = enum_variants(model, PAYLOAD_FILE, "PayloadKind") else {
        diags.push(Diagnostic {
            path: PAYLOAD_FILE.to_string(),
            line: 1,
            rule: "fsm-coverage",
            message: "could not locate `pub enum PayloadKind` to audit step coverage".into(),
        });
        return 0;
    };
    let Some(file_idx) = model.files.iter().position(|f| f.rel_path == FSM_FILE) else {
        diags.push(Diagnostic {
            path: FSM_FILE.to_string(),
            line: 1,
            rule: "fsm-coverage",
            message: "protocol state-machine module is missing; \
                      the mc explorer has nothing to drive"
                .into(),
        });
        return 0;
    };
    let file = &model.files[file_idx];
    let mut audited = 0usize;
    for f in &model.fns {
        if f.file != file_idx || f.name != "step" || f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        audited += 1;
        if file.masked.is_allowed(f.line, "fsm-coverage") {
            continue;
        }
        let body = &file.masked.lines[start..=end.min(file.masked.lines.len() - 1)];
        for (variant, _) in &variants {
            let needle = format!("PayloadKind::{variant}");
            let named = body.iter().any(|l| {
                l.find(&needle).is_some_and(|pos| {
                    // Word boundary: `PayloadKind::Load` must not satisfy
                    // coverage of `LoadExpert`.
                    !l[pos + needle.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                })
            });
            if !named {
                diags.push(Diagnostic {
                    path: FSM_FILE.to_string(),
                    line: f.line,
                    rule: "fsm-coverage",
                    message: format!(
                        "fn step has no transition or typed rejection for \
                         `PayloadKind::{variant}`; every kind must be handled explicitly"
                    ),
                });
            }
        }
        for (j, l) in body.iter().enumerate() {
            if l.trim_start().starts_with("_ =>") {
                diags.push(Diagnostic {
                    path: FSM_FILE.to_string(),
                    line: start + j + 1,
                    rule: "fsm-coverage",
                    message: "wildcard `_ =>` arm in an fsm step function would silently \
                              swallow new payload kinds; name each variant explicitly"
                        .into(),
                });
            }
        }
    }
    audited
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUMS: &str = "pub enum PayloadKind {\n    Input,\n    Result,\n    LoadAck,\n}\n";

    /// A conforming fsm: one step fn naming every variant, no wildcard.
    const GOOD_FSM: &str = "pub fn step() {\n    match kind {\n        PayloadKind::Input => a(),\n        PayloadKind::Result => b(),\n        PayloadKind::LoadAck => reject(),\n    }\n}\n";

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let mut inputs = vec![("net", "crates/net/src/envelope.rs", ENUMS)];
        inputs.extend_from_slice(files);
        let model = Model::build(&inputs);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn conforming_layout_passes() {
        let diags = run(&[
            ("core", "crates/core/src/fsm.rs", GOOD_FSM),
            (
                "core",
                "crates/core/src/runtime.rs",
                "fn shell() {\n    send(Envelope::new(round, PayloadKind::Input, payload));\n    if env.kind != PayloadKind::LoadAck {\n        skip();\n    }\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dispatch_bypass_fixture_is_caught() {
        // The deliberately-bad fixture from the issue: a handler matching
        // payloads directly instead of routing through fsm::step.
        let diags = run(&[
            ("core", "crates/core/src/fsm.rs", GOOD_FSM),
            (
                "core",
                "crates/core/src/shadow.rs",
                "fn rogue_handler(env: Envelope) {\n    match env.kind {\n        PayloadKind::Input => process(env),\n        PayloadKind::Result | PayloadKind::LoadAck => drop(env),\n    }\n}\n",
            ),
        ]);
        let dispatch: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.rule == "fsm-dispatch").collect();
        assert_eq!(dispatch.len(), 3, "{diags:?}");
        assert!(dispatch.iter().all(|d| d.path.ends_with("shadow.rs")));
    }

    #[test]
    fn if_let_dispatch_is_caught_but_comparisons_are_not() {
        let diags = run(&[
            ("core", "crates/core/src/fsm.rs", GOOD_FSM),
            (
                "core",
                "crates/core/src/runtime.rs",
                "fn shell(env: Envelope) {\n    if let PayloadKind::Input = env.kind {\n        go();\n    }\n    let fine = env.kind == PayloadKind::Result;\n}\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "fsm-dispatch");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn dispatch_inside_fsm_and_tests_is_legal() {
        let diags = run(&[
            ("core", "crates/core/src/fsm.rs", GOOD_FSM),
            (
                "core",
                "crates/core/src/runtime.rs",
                "fn shell() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        match k {\n            PayloadKind::Input => {}\n            PayloadKind::Result | PayloadKind::LoadAck => {}\n        }\n    }\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn incomplete_step_coverage_is_caught() {
        // step handles Input but is silent on Result and LoadAck.
        let diags = run(&[(
            "core",
            "crates/core/src/fsm.rs",
            "pub fn step() {\n    match kind {\n        PayloadKind::Input => a(),\n        other => ignore(other),\n    }\n}\n",
        )]);
        let missing: Vec<&str> = diags
            .iter()
            .filter(|d| d.rule == "fsm-coverage")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(missing.len(), 2, "{diags:?}");
        assert!(missing.iter().any(|m| m.contains("PayloadKind::Result")));
        assert!(missing.iter().any(|m| m.contains("PayloadKind::LoadAck")));
    }

    #[test]
    fn wildcard_arm_in_step_is_caught() {
        let diags = run(&[(
            "core",
            "crates/core/src/fsm.rs",
            "pub fn step() {\n    match kind {\n        PayloadKind::Input => a(),\n        PayloadKind::Result => b(),\n        PayloadKind::LoadAck => c(),\n        _ => swallow(),\n    }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "fsm-coverage");
        assert!(diags[0].message.contains("wildcard"));
    }

    #[test]
    fn variant_prefix_does_not_satisfy_coverage() {
        // Naming `LoadAckExtra` must not count as covering `LoadAck`.
        let diags = run(&[(
            "core",
            "crates/core/src/fsm.rs",
            "pub fn step() {\n    match kind {\n        PayloadKind::Input => a(),\n        PayloadKind::Result => b(),\n        PayloadKind::LoadAckExtra => c(),\n        other => reject(other),\n    }\n}\n",
        )]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "fsm-coverage" && d.message.contains("`PayloadKind::LoadAck`")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_fsm_module_is_loud() {
        let diags = run(&[("core", "crates/core/src/runtime.rs", "fn shell() {}\n")]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "fsm-coverage" && d.message.contains("missing")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_escapes_both_rules() {
        let diags = run(&[
            (
                "core",
                "crates/core/src/fsm.rs",
                "// lint: allow(fsm-coverage)\npub fn step() {\n    match kind {\n        PayloadKind::Input => a(),\n        _ => swallow(),\n    }\n}\n",
            ),
            (
                "core",
                "crates/core/src/legacy.rs",
                "fn old(k: PayloadKind) {\n    // lint: allow(fsm-dispatch)\n    if let PayloadKind::Input = k {\n        go();\n    }\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
