//! Model-vs-reality check for the `mc` fault adversary.
//!
//! `cargo xtask mc` explores protocol interleavings under an abstract
//! fault adversary (drop / duplicate / reorder). That adversary is only
//! trustworthy if its fault semantics match what the runtime's
//! [`ChaosTransport`] actually does to frames. This module replays the
//! exported probabilistic fault plan ([`plan_fates`]) through a pure model
//! of `ChaosTransport::send` — including the delay buffer's
//! release-before-current-frame ordering and its `swap_remove` scan — and
//! asserts the *exact delivery sequence* (count, order, bytes) against a
//! live `ChaosTransport` over an in-memory mesh, across seeded schedules.
//!
//! Any divergence means one of the twins drifted: either the runtime
//! changed its fault semantics (update the model *and* DESIGN.md §15) or
//! the model rotted. Both are CI failures.

use std::time::Duration;
use teamnet_net::{
    plan_fates, ChannelTransport, ChaosConfig, ChaosTransport, FaultFate, NodeId, Tag, Transport,
};

const TAG: Tag = Tag(0x7E57);

/// The fault mix used for cross-checking: every probabilistic fate is
/// reachable, and the schedule below includes an empty payload to pin the
/// corrupt-draw short-circuit.
fn cross_check_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_prob: 0.2,
        delay_prob: 0.25,
        corrupt_prob: 0.15,
        duplicate_prob: 0.2,
        max_delay_msgs: 3,
    }
}

/// A deterministic 30-frame schedule with varied payload lengths
/// (frame 7 is empty: the corrupt draw must be skipped for it).
fn schedule() -> Vec<(NodeId, Vec<u8>)> {
    (0..30u8)
        .map(|i| {
            let payload = if i == 7 {
                Vec::new()
            } else {
                vec![i; 1 + (i as usize % 9)]
            };
            (1, payload)
        })
        .collect()
}

/// Pure model of `ChaosTransport::send` applied to a whole schedule:
/// returns the exact `(to, payload)` delivery sequence the wrapped inner
/// transport will observe, including duplicates, corrupted bytes, delayed
/// releases and the final `flush()` drain.
///
/// Mirrored semantics (kept in lockstep with `crates/net/src/faults.rs`):
///
/// * the offer counter is 1-based; fates come from [`plan_fates`];
/// * a delayed frame is buffered with `release_at = offered + hold`
///   (`hold >= 1`, so it never self-releases on its own offer);
/// * on every offer, due frames are released **before** the current
///   frame's delivery, scanning the buffer with `swap_remove` (the last
///   element replaces the removed slot and the index does not advance);
/// * corruption XORs byte `bit / 8` with `1 << (bit % 8)` when in range;
/// * duplication delivers the same bytes twice back-to-back;
/// * `flush()` drains the remaining delay buffer in vector order.
pub fn replay_deliveries(
    config: &ChaosConfig,
    frames: &[(NodeId, Vec<u8>)],
) -> Vec<(NodeId, Vec<u8>)> {
    let lens: Vec<usize> = frames.iter().map(|(_, p)| p.len()).collect();
    let fates = plan_fates(config, &lens);
    let mut pending: Vec<(u64, NodeId, Vec<u8>)> = Vec::new();
    let mut out = Vec::new();
    for (i, ((to, payload), fate)) in frames.iter().zip(&fates).enumerate() {
        let offered = (i + 1) as u64;
        if let FaultFate::Delay { hold } = fate {
            pending.push((offered + hold, *to, payload.clone()));
        }
        let mut j = 0;
        while j < pending.len() {
            if pending[j].0 <= offered {
                let (_, dest, bytes) = pending.swap_remove(j);
                out.push((dest, bytes));
            } else {
                j += 1;
            }
        }
        match fate {
            FaultFate::Deliver => out.push((*to, payload.clone())),
            FaultFate::Drop | FaultFate::Delay { .. } => {}
            FaultFate::Corrupt { bit } => {
                let mut mutated = payload.clone();
                if let Some(byte) = mutated.get_mut((bit / 8) as usize) {
                    *byte ^= 1 << (bit % 8);
                }
                out.push((*to, mutated));
            }
            FaultFate::Duplicate => {
                out.push((*to, payload.clone()));
                out.push((*to, payload.clone()));
            }
        }
    }
    for (_, dest, bytes) in pending {
        out.push((dest, bytes));
    }
    out
}

/// Replays the cross-check schedule for each seed against a live
/// [`ChaosTransport`] and demands byte-identical delivery sequences.
/// Returns the total number of deliveries verified.
///
/// # Errors
///
/// A human-readable description of the first divergence (missing, extra,
/// out-of-order or byte-different delivery), prefixed with the seed.
pub fn verify_seeds(seeds: &[u64]) -> Result<usize, String> {
    let mut total = 0;
    for &seed in seeds {
        total += verify_one(seed).map_err(|e| format!("seed {seed}: {e}"))?;
    }
    Ok(total)
}

fn verify_one(seed: u64) -> Result<usize, String> {
    let config = cross_check_config(seed);
    let frames = schedule();
    let expected = replay_deliveries(&config, &frames);

    let mut nodes = ChannelTransport::mesh(2);
    let receiver = nodes.pop().ok_or("mesh(2) returned fewer than 2 nodes")?;
    let sender = nodes.pop().ok_or("mesh(2) returned fewer than 2 nodes")?;
    let chaos = ChaosTransport::with_config(sender, config);
    for (to, payload) in &frames {
        chaos
            .send(*to, TAG, payload)
            .map_err(|e| format!("send failed: {e}"))?;
    }
    chaos.flush();

    for (k, (_, want)) in expected.iter().enumerate() {
        let got = receiver
            .recv(0, TAG, Duration::from_millis(500))
            .map_err(|e| {
                format!(
                    "delivery {k}: model predicts a frame of {} bytes, transport produced none ({e})",
                    want.len()
                )
            })?;
        if got != *want {
            return Err(format!(
                "delivery {k} diverged: model predicts {want:?}, transport delivered {got:?}"
            ));
        }
    }
    if let Ok(extra) = receiver.recv(0, TAG, Duration::from_millis(20)) {
        return Err(format!(
            "transport delivered an extra {}-byte frame the model did not predict",
            extra.len()
        ));
    }
    Ok(expected.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_model_is_identity() {
        let config = ChaosConfig {
            seed: 3,
            ..ChaosConfig::default()
        };
        let frames = schedule();
        assert_eq!(replay_deliveries(&config, &frames), frames);
    }

    /// The property satellite: across a seed sweep the model's delivery
    /// sequence matches the real `ChaosTransport` byte-for-byte — same
    /// drops, same duplicate ordering, same corrupted bits, same delayed
    /// release points.
    #[test]
    fn model_matches_transport_across_seed_sweep() {
        let seeds: Vec<u64> = (0..64).collect();
        let total = verify_seeds(&seeds).expect("model diverged from ChaosTransport");
        assert!(
            total > 1000,
            "sweep verified suspiciously few deliveries ({total})"
        );
    }

    #[test]
    fn model_covers_every_fate_in_the_sweep() {
        let mut seen = [false; 5];
        for seed in 0..64 {
            let config = cross_check_config(seed);
            let lens: Vec<usize> = schedule().iter().map(|(_, p)| p.len()).collect();
            for fate in plan_fates(&config, &lens) {
                let idx = match fate {
                    FaultFate::Deliver => 0,
                    FaultFate::Drop => 1,
                    FaultFate::Delay { .. } => 2,
                    FaultFate::Corrupt { .. } => 3,
                    FaultFate::Duplicate => 4,
                };
                seen[idx] = true;
            }
        }
        assert_eq!(
            seen, [true; 5],
            "cross-check mix fails to exercise every fault fate"
        );
    }
}
