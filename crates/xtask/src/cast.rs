//! Narrowing-cast audit: flags unchecked truncating `as` casts on the
//! wire-format and resource-certification paths.
//!
//! A `usize as u32` silently wraps on 64-bit hosts: a frame length, tensor
//! dimension or byte count above `u32::MAX` would encode as garbage and
//! the receiver would mis-frame every following byte. The same failure
//! mode corrupts a resource certificate, where a truncated byte count
//! turns an honest upper bound into an under-estimate that admits an
//! expert onto a device it cannot fit on. This pass walks the call graph
//! from the codec, envelope and cost-model roots and rejects, in any
//! reachable non-test function, an `as` cast to a type of 32 bits or
//! fewer (rule `cast-truncate`).
//!
//! Casts that are provably in range — guarded by an explicit bounds
//! assertion, or reading a value that entered as the target type — are
//! escaped with a statement-scoped `// lint: allow(cast-truncate)`
//! comment citing the guard, exactly like the determinism-taint escapes.
//!
//! Reachability is the name-based over-approximation of
//! [`crate::symbols`] (DESIGN.md §10): it may audit unrelated same-named
//! functions, which is extra scrutiny, not a false *negative*.

use crate::symbols::Model;
use crate::Diagnostic;
use std::collections::BTreeSet;

/// Files whose functions seed the reachability walk: everything that
/// serializes bytes for the wire, plus the static cost model whose
/// numbers gate device admission.
const ROOT_FILES: &[&str] = &[
    "crates/net/src/codec.rs",
    "crates/net/src/envelope.rs",
    "crates/nn/src/cost.rs",
];

/// Target types whose `as` casts can drop bits from the wider integers
/// (`usize`/`u64`/`i64`) these paths compute with.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs the pass, appending diagnostics. Returns the number of reachable
/// functions audited (for the summary line).
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    let roots: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_test)
        .filter(|(_, f)| {
            model
                .files
                .get(f.file)
                .is_some_and(|sf| ROOT_FILES.contains(&sf.rel_path.as_str()))
        })
        .map(|(idx, _)| idx)
        .collect();
    let reachable = model.reachable(roots);

    let mut audited_lines: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &idx in &reachable {
        let Some(f) = model.fns.get(idx) else {
            continue;
        };
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = model.files.get(f.file) else {
            continue;
        };
        for (j, line) in file
            .masked
            .lines
            .iter()
            .enumerate()
            .take(end + 1)
            .skip(start)
        {
            if file.test_mask.get(j).copied().unwrap_or(false) {
                continue;
            }
            if !audited_lines.insert((f.file, j)) {
                continue;
            }
            let lineno = j + 1;
            if file.masked.is_allowed(lineno, "cast-truncate") {
                continue;
            }
            for target in narrowing_casts(line) {
                diags.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: lineno,
                    rule: "cast-truncate",
                    message: format!(
                        "narrowing `as {target}` can silently truncate (in `{}`, reachable \
                         from a wire/cost root); bounds-check first, then \
                         `// lint: allow(cast-truncate)` citing the guard",
                        model.fn_display(idx)
                    ),
                });
            }
        }
    }
    reachable.len()
}

/// The narrowing target types cast to on `line`, word-bounded on both
/// sides so `as usize` or an identifier like `as_u32` never matches.
fn narrowing_casts(line: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for &target in NARROW_TARGETS {
        let needle = format!(" as {target}");
        let mut from = 0usize;
        while let Some(pos) = line.get(from..).and_then(|rest| rest.find(&needle)) {
            let at = from + pos;
            let end = at + needle.len();
            let bounded = line
                .get(end..)
                .and_then(|rest| rest.chars().next())
                .map_or(true, |c| !c.is_alphanumeric() && c != '_');
            if bounded && !hits.contains(&target) {
                hits.push(target);
            }
            from = end;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Model;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let model = Model::build(files);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn narrowing_cast_in_a_root_is_caught() {
        // Deliberately-bad fixture: an unchecked length truncation in the
        // frame encoder, the exact bug class the rule exists for.
        let diags = run(&[(
            "net",
            "crates/net/src/codec.rs",
            "pub fn encode_frame(payload: &[u8]) {\n    \
             let len = payload.len() as u32;\n    put(len);\n}\n",
        )]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "cast-truncate" && d.line == 2),
            "{diags:?}"
        );
    }

    #[test]
    fn cast_reachable_through_a_call_is_caught() {
        let diags = run(&[
            (
                "nn",
                "crates/nn/src/cost.rs",
                "pub fn framed_tensor_bytes(&self, dims: &[usize]) -> u64 {\n    \
                 header_field(dims.len())\n}\n",
            ),
            (
                "nn",
                "crates/nn/src/helpers.rs",
                "pub fn header_field(n: usize) -> u64 {\n    (n as u16).into()\n}\n",
            ),
        ]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "cast-truncate" && d.path.ends_with("helpers.rs")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_comment_escapes_a_guarded_cast() {
        let diags = run(&[(
            "net",
            "crates/net/src/codec.rs",
            "pub fn encode_frame(payload: &[u8]) {\n    \
             assert!(payload.len() <= MAX_FRAME_LEN);\n    \
             // lint: allow(cast-truncate)\n    \
             let len = payload.len() as u32;\n    put(len);\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unreachable_and_test_casts_are_exempt() {
        let diags = run(&[(
            "net",
            "crates/net/src/tcp.rs",
            "fn helper(n: usize) -> u32 {\n    n as u32\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t(n: usize) -> u8 {\n        n as u8\n    }\n}\n",
        )]);
        assert!(diags.is_empty(), "tcp.rs is not a root: {diags:?}");
    }

    #[test]
    fn widening_and_lookalike_tokens_do_not_match() {
        assert!(narrowing_casts("let x = n as u64;").is_empty());
        assert!(narrowing_casts("let x = n as usize;").is_empty());
        assert!(narrowing_casts("let x = v.as_u32();").is_empty());
        assert_eq!(narrowing_casts("let x = n as u32;"), vec!["u32"]);
        assert_eq!(narrowing_casts("(n as u8, m as i16)"), vec!["u8", "i16"]);
    }
}
