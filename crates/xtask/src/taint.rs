//! Determinism taint audit: flags sources of run-to-run nondeterminism
//! reachable from the protocol and simulation paths.
//!
//! A seeded chaos run is only replayable if nothing on the protocol path
//! consults hasher state, the wall clock, or OS entropy. This pass walks
//! the call graph from the **determinism roots** — envelope/codec
//! encode/decode, entropy scoring, the master inference runtime, and the
//! whole discrete-event simulator — and rejects, in any reachable
//! non-test function:
//!
//! | rule        | rejects                                               |
//! |-------------|-------------------------------------------------------|
//! | `det-map`   | `HashMap`/`HashSet` (unseeded hasher ⇒ iteration and  |
//! |             | tie-break order varies per process)                   |
//! | `det-clock` | `Instant::now()` / `SystemTime::now()` (wall-clock    |
//! |             | reads belong behind the injectable `Clock`)           |
//! | `det-rng`   | `thread_rng()` / `from_entropy()` / `rand::random()`  |
//! |             | (OS-seeded randomness; use a seeded `DetRng`/StdRng)  |
//!
//! Escape with a statement-scoped `// lint: allow(<rule>)` comment at the
//! site — e.g. the single sanctioned `Instant::now()` inside
//! `SystemClock` and the condvar wall-clock deadlines in the mailbox.
//!
//! Reachability is the name-based over-approximation of
//! [`crate::symbols`]: it may pull in unrelated same-named functions
//! (extra scrutiny, harmless) but cannot follow function pointers or
//! macro-generated calls (documented in DESIGN.md §10).

use crate::symbols::Model;
use crate::Diagnostic;
use std::collections::BTreeSet;

/// Files whose functions seed the reachability walk. Everything under
/// `crates/simnet/src/` and `crates/obs/src/` is a root as well: the
/// simulator for replayability, the observability crate because a wall
/// clock smuggled into a tracer or sink would silently break the
/// byte-identical trace contract of `tests/obs_determinism.rs`.
const ROOT_FILES: &[&str] = &[
    "crates/net/src/envelope.rs",
    "crates/net/src/codec.rs",
    "crates/core/src/entropy.rs",
    "crates/core/src/runtime.rs",
    // The recovery subsystem must re-place experts identically across
    // identical seeds: a wall-clock or hasher here would break the
    // byte-identical transcripts of `tests/recovery_soak.rs`.
    "crates/core/src/recover.rs",
    "crates/tensor/src/pool.rs",
    // The resource certificate must be byte-stable across runs: a clock,
    // hasher or entropy read here would make `cargo xtask cost --check`
    // flap.
    "crates/nn/src/cost.rs",
];

const SIMNET_PREFIX: &str = "crates/simnet/src/";
const OBS_PREFIX: &str = "crates/obs/src/";
/// The serving front-end is a root too: every admission decision and
/// flush trigger reads the injected `Clock`, and `tests/serve_soak.rs`
/// asserts byte-identical trace/metrics transcripts across identical
/// seeds — a wall-clock or hasher anywhere in the serve path breaks it.
const SERVE_PREFIX: &str = "crates/serve/src/";

/// Runs the taint pass, appending diagnostics. Returns the number of
/// reachable functions audited (for the summary line).
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    let roots: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_test)
        .filter(|(_, f)| {
            model.files.get(f.file).is_some_and(|sf| {
                ROOT_FILES.contains(&sf.rel_path.as_str())
                    || sf.rel_path.starts_with(SIMNET_PREFIX)
                    || sf.rel_path.starts_with(OBS_PREFIX)
                    || sf.rel_path.starts_with(SERVE_PREFIX)
            })
        })
        .map(|(idx, _)| idx)
        .collect();
    let reachable = model.reachable(roots);

    // A function may be reached through several names; audit each body
    // line once even when fn extents overlap (nested fns).
    let mut audited_lines: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &idx in &reachable {
        let Some(f) = model.fns.get(idx) else {
            continue;
        };
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = model.files.get(f.file) else {
            continue;
        };
        for (j, line) in file
            .masked
            .lines
            .iter()
            .enumerate()
            .take(end + 1)
            .skip(start)
        {
            if file.test_mask.get(j).copied().unwrap_or(false) {
                continue;
            }
            if !audited_lines.insert((f.file, j)) {
                continue;
            }
            let lineno = j + 1;
            let site = model.fn_display(idx);
            for (rule, pattern, why) in RULES {
                if line.contains(pattern) && !file.masked.is_allowed(lineno, rule) {
                    diags.push(Diagnostic {
                        path: file.rel_path.clone(),
                        line: lineno,
                        rule,
                        message: format!("{why} (in `{site}`, reachable from a determinism root)"),
                    });
                }
            }
        }
    }
    reachable.len()
}

type Rule = (&'static str, &'static str, &'static str);

const RULES: &[Rule] = &[
    (
        "det-map",
        "HashMap",
        "HashMap iteration order depends on unseeded hasher state; use BTreeMap",
    ),
    (
        "det-map",
        "HashSet",
        "HashSet iteration order depends on unseeded hasher state; use BTreeSet",
    ),
    (
        "det-clock",
        "Instant::now()",
        "wall-clock read on a protocol path; take time from the injected Clock",
    ),
    (
        "det-clock",
        "SystemTime::now()",
        "wall-clock read on a protocol path; take time from the injected Clock",
    ),
    (
        "det-rng",
        "thread_rng(",
        "OS-seeded randomness on a protocol path; use a seeded DetRng/StdRng",
    ),
    (
        "det-rng",
        "from_entropy(",
        "OS-seeded randomness on a protocol path; use a seeded DetRng/StdRng",
    ),
    (
        "det-rng",
        "rand::random(",
        "OS-seeded randomness on a protocol path; use a seeded DetRng/StdRng",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Model;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let model = Model::build(files);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn hashmap_reachable_from_a_root_is_caught() {
        // decode (a root file fn) calls pick, which iterates a HashMap.
        let diags = run(&[(
            "net",
            "crates/net/src/envelope.rs",
            "pub fn decode(b: u8) {\n    pick(b);\n}\n\
             fn pick(b: u8) {\n    let m: HashMap<u8, u8> = make();\n    m.iter();\n}\n",
        )]);
        assert!(
            diags.iter().any(|d| d.rule == "det-map" && d.line == 5),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_nondeterminism_is_not_flagged() {
        let diags = run(&[(
            "net",
            "crates/net/src/tcp.rs",
            "fn connect_helper() {\n    let d = Instant::now();\n    use_it(d);\n}\n",
        )]);
        assert!(diags.is_empty(), "tcp.rs is not a root: {diags:?}");
    }

    #[test]
    fn clock_read_is_caught_and_escapable() {
        let diags = run(&[(
            "core",
            "crates/core/src/runtime.rs",
            "pub fn infer() {\n    let bad = Instant::now();\n    \
             // lint: allow(det-clock)\n    let fine = Instant::now();\n    use_both(bad, fine);\n}\n",
        )]);
        let clock: Vec<_> = diags.iter().filter(|d| d.rule == "det-clock").collect();
        assert_eq!(clock.len(), 1, "{diags:?}");
        assert_eq!(clock[0].line, 2);
    }

    #[test]
    fn rng_reachable_through_a_method_call_is_caught() {
        // simnet files are roots wholesale; the rng sits one hop away in
        // another crate, reached by method-name resolution.
        let diags = run(&[
            (
                "simnet",
                "crates/simnet/src/sim.rs",
                "pub fn step(&mut self) {\n    self.link.jitter();\n}\n",
            ),
            (
                "net",
                "crates/net/src/faults.rs",
                "pub fn jitter(&self) -> u64 {\n    thread_rng().gen()\n}\n",
            ),
        ]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "det-rng" && d.path.ends_with("faults.rs")),
            "{diags:?}"
        );
    }

    #[test]
    fn wall_clock_smuggled_into_a_trace_sink_is_caught() {
        // Deliberately-bad fixture: a sink that stamps records with
        // `Instant::now()` would desynchronize two identical seeded runs —
        // every obs file is a taint root, so the pass must flag it.
        let diags = run(&[(
            "obs",
            "crates/obs/src/trace.rs",
            "pub fn record(&self, line: &str) {\n    \
             let stamp = Instant::now();\n    self.push(stamp, line);\n}\n",
        )]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "det-clock" && d.path.ends_with("trace.rs") && d.line == 2),
            "{diags:?}"
        );
    }

    #[test]
    fn hashmap_in_a_metrics_registry_is_caught() {
        let diags = run(&[(
            "obs",
            "crates/obs/src/metrics.rs",
            "pub fn snapshot(&self) {\n    \
             let m: HashMap<String, u64> = gather();\n    emit(m);\n}\n",
        )]);
        assert!(
            diags.iter().any(|d| d.rule == "det-map" && d.line == 2),
            "{diags:?}"
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = run(&[(
            "core",
            "crates/core/src/runtime.rs",
            "pub fn infer() {\n    ok();\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() {\n        let x = Instant::now();\n    }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
