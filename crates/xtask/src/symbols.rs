//! A lightweight per-crate symbol table and function-level call graph.
//!
//! Built on the comment/string-masked source from [`crate::lexer`], this
//! module gives the audit passes ([`crate::locks`], [`crate::taint`],
//! [`crate::protocol`]) three things a line-oriented lint cannot offer:
//!
//! 1. **Function extents** — which lines belong to which `fn`, with
//!    `#[cfg(test)]` code identified so passes only judge shipping code;
//! 2. **Call edges** — for every function, the set of callee *names* it
//!    invokes (free calls, method calls and the last segment of path
//!    calls all collapse to a bare name);
//! 3. **Reachability** — BFS over those edges from a root set.
//!
//! Callee resolution is purely name-based: a call to `recv(` links to
//! *every* workspace function named `recv`, regardless of receiver type.
//! This over-approximates the true call graph (extra edges, never missing
//! ones for direct calls), which is the safe direction for taint and
//! lock-order analysis. The known false-negative holes — function
//! pointers, callbacks invoked through variables, and macros expanding to
//! calls — are documented in DESIGN.md §10.

use crate::lexer::{self, Masked};
use crate::lint;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// One masked source file plus the metadata every pass needs.
pub struct SourceFile {
    /// Crate directory name (`net`, `core`, …).
    pub crate_name: String,
    /// Workspace-relative path with `/` separators (diagnostic location).
    pub rel_path: String,
    /// Comment/string-masked source with `lint: allow` directives.
    pub masked: Masked,
    /// `test_mask[i]` is true when 0-based line `i` is inside
    /// `#[cfg(test)]`-gated code.
    pub test_mask: Vec<bool>,
}

/// One function definition.
pub struct FnInfo {
    /// Bare function name (no path, no generics).
    pub name: String,
    /// Index into [`Model::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based inclusive line range of the whole item (signature through
    /// closing brace); `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// True when the definition sits inside `#[cfg(test)]` code.
    pub is_test: bool,
    /// Bare names of everything this function calls.
    pub calls: BTreeSet<String>,
}

/// The whole-workspace model the audit passes run against.
pub struct Model {
    /// Every scanned file.
    pub files: Vec<SourceFile>,
    /// Every function found, in file order.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Words that look like calls lexically but never are (control flow,
/// bindings) or that are ubiquitous constructors whose edges would only
/// add noise. Everything else followed by `(` counts as a call; edges to
/// names with no workspace definition are simply dropped at resolution.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "let", "fn", "move", "as",
    "where", "impl", "dyn", "ref", "mut", "pub", "use", "crate", "super", "break", "continue",
    "struct", "enum", "trait", "type", "const", "static", "unsafe", "extern", "async", "await",
    "Some", "None", "Ok", "Err", "Fn", "FnMut", "FnOnce",
];

impl Model {
    /// Builds a model from in-memory sources: `(crate_name, rel_path,
    /// source)` triples. Used directly by the audit passes' unit tests.
    pub fn build(inputs: &[(&str, &str, &str)]) -> Model {
        let mut files = Vec::new();
        for (crate_name, rel_path, source) in inputs {
            let masked = lexer::mask(source);
            let test_mask = lint::test_lines(&masked.lines);
            files.push(SourceFile {
                crate_name: (*crate_name).to_string(),
                rel_path: (*rel_path).to_string(),
                masked,
                test_mask,
            });
        }
        let mut fns = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            extract_fns(file, file_idx, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(idx);
        }
        Model {
            files,
            fns,
            by_name,
        }
    }

    /// Loads every library crate under `<root>/crates/` (same file set the
    /// lint pass scans: `src/**`, excluding `src/bin/`).
    pub fn load_workspace(root: &Path) -> Model {
        let mut inputs: Vec<(String, String, String)> = Vec::new();
        for krate in lint::library_crates(root) {
            let crate_name = krate
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("?")
                .to_string();
            for file in lint::rust_files(&krate.join("src")) {
                let Ok(text) = fs::read_to_string(&file) else {
                    continue;
                };
                let rel = lint::display_path(root, &file).replace('\\', "/");
                inputs.push((crate_name.clone(), rel, text));
            }
        }
        let borrowed: Vec<(&str, &str, &str)> = inputs
            .iter()
            .map(|(c, p, s)| (c.as_str(), p.as_str(), s.as_str()))
            .collect();
        Model::build(&borrowed)
    }

    /// Indices of every function named `name` (empty slice if none).
    pub fn fns_by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// BFS over call edges from `roots`, restricted to non-test
    /// functions. The result includes the roots themselves.
    pub fn reachable(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.into_iter().collect();
        let mut queue: Vec<usize> = seen.iter().copied().collect();
        while let Some(idx) = queue.pop() {
            let Some(f) = self.fns.get(idx) else { continue };
            for callee in &f.calls {
                for &target in self.fns_by_name(callee) {
                    let is_test = self.fns.get(target).is_some_and(|t| t.is_test);
                    if !is_test && seen.insert(target) {
                        queue.push(target);
                    }
                }
            }
        }
        seen
    }

    /// `path:line fn name` — the location string used in diagnostics.
    pub fn fn_display(&self, idx: usize) -> String {
        match (self.fns.get(idx), self.fns.get(idx).map(|f| f.file)) {
            (Some(f), Some(file)) => {
                let path = self.files.get(file).map_or("?", |sf| sf.rel_path.as_str());
                format!("{path}:{} fn {}", f.line, f.name)
            }
            _ => "?".to_string(),
        }
    }

    /// Total number of call edges (for the summary line).
    pub fn call_edge_count(&self) -> usize {
        self.fns.iter().map(|f| f.calls.len()).sum()
    }
}

/// Callee names invoked on one masked line (public wrapper used by the
/// lock pass to follow calls made while a guard is held).
pub fn calls_on_line(line: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    extract_calls(line, &mut out);
    out
}

/// Finds every `fn` item in `file` and records its extent and call set.
fn extract_fns(file: &SourceFile, file_idx: usize, out: &mut Vec<FnInfo>) {
    let lines = &file.masked.lines;
    for (idx, line) in lines.iter().enumerate() {
        for name in fn_names_on_line(line) {
            let body = fn_body_range(lines, idx);
            let mut calls = BTreeSet::new();
            if let Some((start, end)) = body {
                for body_line in lines.iter().take(end + 1).skip(start) {
                    extract_calls(body_line, &mut calls);
                }
            }
            out.push(FnInfo {
                name,
                file: file_idx,
                line: idx + 1,
                body,
                is_test: file.test_mask.get(idx).copied().unwrap_or(false),
                calls,
            });
        }
    }
}

/// Names of functions *defined* on this line (`fn name`), with a word
/// boundary before `fn` so `often fn`-like identifiers don't match.
fn fn_names_on_line(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find("fn ") {
        let at = start + pos;
        start = at + 3;
        let left_ok = at == 0
            || !bytes
                .get(at - 1)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
        if !left_ok {
            continue;
        }
        let rest = line[at + 3..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            out.push(name);
        }
    }
    out
}

/// The 0-based inclusive line range of the item starting at `fn_line`:
/// from the `fn` keyword through the brace that closes its body. `None`
/// when a `;` arrives before any `{` (a bodyless signature).
fn fn_body_range(lines: &[String], fn_line: usize) -> Option<(usize, usize)> {
    for (j, line) in lines.iter().enumerate().skip(fn_line) {
        // Only the signature may end in `;` before its body opens; inspect
        // character order on the first line that contains either.
        let brace = line.find('{');
        let semi = if j == fn_line {
            // Skip anything before the `fn` keyword itself.
            line.find("fn ")
                .and_then(|p| line[p..].find(';').map(|s| p + s))
        } else {
            line.find(';')
        };
        match (brace, semi) {
            (Some(b), Some(s)) if s < b => return None,
            (Some(_), _) => return Some((fn_line, lint::matching_brace_end(lines, j))),
            (None, Some(_)) => return None,
            (None, None) => continue,
        }
    }
    None
}

/// Collects callee names on one masked line: any identifier directly
/// followed by `(` (whitespace allowed) that is not a keyword, a macro
/// (`name!`), or a lifetime.
fn extract_calls(line: &str, out: &mut BTreeSet<String>) {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let name = &line[start..i];
            let lifetime = start > 0 && bytes[start - 1] == b'\'';
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if bytes.get(j) == Some(&b'(')
                && !lifetime
                && !NON_CALL_WORDS.contains(&name)
                && name != "fn"
            {
                // A definition (`fn name(`) is not a call to itself.
                let is_def = line[..start].trim_end().ends_with("fn");
                if !is_def {
                    out.insert(name.to_string());
                }
            }
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Model {
        Model::build(&[("net", "crates/net/src/x.rs", src)])
    }

    #[test]
    fn finds_fns_and_extents() {
        let m = model("pub fn alpha() {\n    beta();\n}\n\nfn beta() {}\n");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "alpha");
        assert_eq!(m.fns[0].body, Some((0, 2)));
        assert_eq!(m.fns[1].name, "beta");
        assert!(m.fns[0].calls.contains("beta"));
    }

    #[test]
    fn bodyless_signatures_have_no_extent() {
        let m = model("trait T {\n    fn sig(&self) -> u32;\n    fn has_body(&self) -> u32 {\n        sig()\n    }\n}\n");
        let sig = &m.fns[m.fns_by_name("sig")[0]];
        assert_eq!(sig.body, None);
        let has_body = &m.fns[m.fns_by_name("has_body")[0]];
        assert!(has_body.body.is_some());
    }

    #[test]
    fn method_and_path_calls_collapse_to_names() {
        let m = model(
            "fn go() {\n    self.mailbox.recv(1);\n    foo::bar::baz();\n    helper ();\n}\n",
        );
        let calls = &m.fns[0].calls;
        assert!(calls.contains("recv"));
        assert!(calls.contains("baz"));
        assert!(calls.contains("helper"));
        assert!(!calls.contains("foo"), "path prefixes are not calls");
    }

    #[test]
    fn macros_keywords_and_strings_are_not_calls() {
        let m = model("fn go() {\n    println!(\"fake_call()\");\n    if x { return; }\n    let v = vec![real(0)];\n}\n");
        let calls = &m.fns[0].calls;
        assert!(!calls.contains("println"));
        assert!(!calls.contains("fake_call"), "string contents are masked");
        assert!(!calls.contains("if"));
        assert!(calls.contains("real"));
    }

    #[test]
    fn reachability_walks_the_graph_and_skips_tests() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn c() { island(); }\n}\n";
        let m = model(src);
        let a = m.fns_by_name("a")[0];
        let reach = m.reachable([a]);
        let names: Vec<&str> = reach.iter().map(|&i| m.fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"], "test `c` and `island` excluded");
    }

    #[test]
    fn test_fns_are_marked() {
        let m = model("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!m.fns[m.fns_by_name("prod")[0]].is_test);
        assert!(m.fns[m.fns_by_name("t")[0]].is_test);
    }
}
