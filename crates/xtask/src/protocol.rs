//! Protocol exhaustiveness audit: wire-enum variants must be exercised.
//!
//! The wire protocol is only as tested as the variants that actually
//! flow through it. A `PayloadKind` that nothing constructs is dead wire
//! format; one the master's dispatch never handles is a silent drop when
//! a peer sends it; a `NetError` nothing produces is an error path the
//! fault-tolerance tests can never reach. This pass parses the two
//! protocol enums and checks, over **non-test** lines only:
//!
//! | rule                  | requires                                        |
//! |-----------------------|-------------------------------------------------|
//! | `protocol-constructed`| each `PayloadKind` variant is built somewhere   |
//! |                       | *outside* `envelope.rs` (the defining file and  |
//! |                       | its wire codec don't count as real producers)   |
//! | `protocol-handled`    | each `PayloadKind` variant is matched in the    |
//! |                       | protocol state machines, `crates/core/src/fsm.rs`|
//! | `error-produced`      | each `NetError` variant is constructed outside  |
//! |                       | `error.rs` (its `Display`/`From` impls within   |
//! |                       | the defining file don't count)                  |
//!
//! Known over-approximation: a `PayloadKind::X` in a match *pattern*
//! counts as "constructed" — we accept that because every current
//! variant that is matched is also genuinely built, and distinguishing
//! the two needs real parsing (DESIGN.md §10). Escapes use the usual
//! `// lint: allow(<rule>)` on the variant's definition line.

use crate::symbols::Model;
use crate::Diagnostic;

const PAYLOAD_FILE: &str = "crates/net/src/envelope.rs";
const ERROR_FILE: &str = "crates/net/src/error.rs";
const DISPATCH_FILE: &str = "crates/core/src/fsm.rs";
const SERVE_WIRE_FILE: &str = "crates/serve/src/wire.rs";
const SERVE_ERROR_FILE: &str = "crates/serve/src/error.rs";
const SERVE_DISPATCH_FILE: &str = "crates/serve/src/tcp.rs";

/// Runs the exhaustiveness pass. Returns the number of enum variants
/// audited (for the summary line).
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    let mut audited = 0;
    audited += check_enum(
        model,
        diags,
        "PayloadKind",
        PAYLOAD_FILE,
        &[
            Requirement {
                rule: "protocol-constructed",
                scope: Scope::AnywhereExceptDefiningFile,
                missing: "is never constructed outside its defining file; dead wire format?",
            },
            Requirement {
                rule: "protocol-handled",
                scope: Scope::OnlyIn(DISPATCH_FILE),
                missing:
                    "is never handled in the protocol state machines (crates/core/src/fsm.rs); \
                          peers sending it would be silently dropped",
            },
        ],
    );
    audited += check_enum(
        model,
        diags,
        "NetError",
        ERROR_FILE,
        &[Requirement {
            rule: "error-produced",
            scope: Scope::AnywhereExceptDefiningFile,
            missing: "is never produced outside its defining file; unreachable error path",
        }],
    );
    audited += check_enum(
        model,
        diags,
        "ServeMsgKind",
        SERVE_WIRE_FILE,
        &[
            Requirement {
                rule: "protocol-constructed",
                scope: Scope::AnywhereExceptDefiningFile,
                missing:
                    "is never constructed outside its defining file; dead serving wire format?",
            },
            Requirement {
                rule: "protocol-handled",
                scope: Scope::OnlyIn(SERVE_DISPATCH_FILE),
                missing: "is never handled by the serving front-end (crates/serve/src/tcp.rs); \
                          clients sending it would be silently dropped",
            },
        ],
    );
    audited += check_enum(
        model,
        diags,
        "ServeError",
        SERVE_ERROR_FILE,
        &[Requirement {
            rule: "error-produced",
            scope: Scope::AnywhereExceptDefiningFile,
            missing: "is never produced outside its defining file; unreachable rejection path",
        }],
    );
    audited
}

struct Requirement {
    rule: &'static str,
    scope: Scope,
    missing: &'static str,
}

enum Scope {
    /// `Enum::Variant` must appear in some non-test line of any file
    /// other than the one defining the enum.
    AnywhereExceptDefiningFile,
    /// `Enum::Variant` must appear in a non-test line of this file.
    OnlyIn(&'static str),
}

fn check_enum(
    model: &Model,
    diags: &mut Vec<Diagnostic>,
    enum_name: &str,
    defining_file: &str,
    reqs: &[Requirement],
) -> usize {
    // A defining file absent from the model altogether means the model
    // is a partial fixture (the unit tests below); a present file whose
    // enum cannot be found means the audit anchor rotted — diagnose it.
    let Some(def_idx) = model.files.iter().position(|f| f.rel_path == defining_file) else {
        return 0;
    };
    let Some(variants) = enum_variants(model, defining_file, enum_name) else {
        diags.push(Diagnostic {
            path: defining_file.to_string(),
            line: 1,
            rule: "protocol-constructed",
            message: format!("could not locate `pub enum {enum_name}` to audit"),
        });
        return 0;
    };
    for (variant, def_line) in &variants {
        let needle = format!("{enum_name}::{variant}");
        for req in reqs {
            let found = model.files.iter().enumerate().any(|(idx, file)| {
                match req.scope {
                    Scope::AnywhereExceptDefiningFile => {
                        if idx == def_idx {
                            return false;
                        }
                    }
                    Scope::OnlyIn(path) => {
                        if file.rel_path != path {
                            return false;
                        }
                    }
                }
                file.masked.lines.iter().enumerate().any(|(j, line)| {
                    !file.test_mask.get(j).copied().unwrap_or(false) && line.contains(&needle)
                })
            });
            let def_file = &model.files[def_idx];
            if !found && !def_file.masked.is_allowed(*def_line, req.rule) {
                diags.push(Diagnostic {
                    path: defining_file.to_string(),
                    line: *def_line,
                    rule: req.rule,
                    message: format!("`{needle}` {}", req.missing),
                });
            }
        }
    }
    variants.len()
}

/// Parses the variant names (and their 1-based definition lines) of
/// `pub enum <name>` in `rel_path`, from the comment/string-masked
/// source. Returns `None` if the enum is not found.
pub(crate) fn enum_variants(
    model: &Model,
    rel_path: &str,
    enum_name: &str,
) -> Option<Vec<(String, usize)>> {
    let file = model.files.iter().find(|f| f.rel_path == rel_path)?;
    let lines = &file.masked.lines;
    let header = format!("pub enum {enum_name}");
    let start = lines.iter().position(|l| {
        l.contains(&header)
            && l[l.find(&header).unwrap() + header.len()..]
                .chars()
                .next()
                .map_or(true, |c| !c.is_alphanumeric() && c != '_')
    })?;
    let end = crate::lint::matching_brace_end(lines, start);

    let mut variants = Vec::new();
    let mut depth = 0usize; // brace depth relative to the enum body
    for (j, line) in lines.iter().enumerate().take(end + 1).skip(start) {
        if depth == if j == start { 0 } else { 1 } {
            // Variant names start a (possibly attribute-prefixed) line
            // inside the body with an uppercase identifier; struct-variant
            // fields are snake_case and deeper, so neither matches.
            let after_body_open = if j == start {
                match line.find('{') {
                    Some(pos) => &line[pos + 1..],
                    None => "",
                }
            } else {
                line.as_str()
            };
            let trimmed = after_body_open.trim_start();
            let ident: String = trimmed
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push((ident, j + 1));
            }
        }
        depth += line.matches('{').count();
        depth = depth.saturating_sub(line.matches('}').count());
    }
    Some(variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Model;

    const ENUMS: &str =
        "pub enum PayloadKind {\n    Batch,\n    Logits { round: u64 },\n    Probe,\n}\n";
    const ERRORS: &str = "pub enum NetError {\n    Timeout,\n    Closed,\n}\n";

    fn run(extra: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let mut files = vec![
            ("net", "crates/net/src/envelope.rs", ENUMS),
            ("net", "crates/net/src/error.rs", ERRORS),
        ];
        files.extend_from_slice(extra);
        let model = Model::build(&files);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn unconstructed_and_unhandled_variants_are_caught() {
        // Batch is constructed and handled; Logits is constructed but not
        // handled; Probe is neither. Timeout is produced, Closed is not.
        let diags = run(&[
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn dispatch() {\n    handle(PayloadKind::Batch);\n    NetError::Timeout;\n}\n",
            ),
            (
                "net",
                "crates/net/src/mailbox.rs",
                "fn emit() {\n    make(PayloadKind::Logits { round: 0 });\n}\n",
            ),
        ]);
        let rules: Vec<(&str, &str)> = diags
            .iter()
            .map(|d| (d.rule, d.message.split('`').nth(1).unwrap()))
            .collect();
        assert!(
            rules.contains(&("protocol-handled", "PayloadKind::Logits")),
            "{diags:?}"
        );
        assert!(
            rules.contains(&("protocol-constructed", "PayloadKind::Probe")),
            "{diags:?}"
        );
        assert!(
            rules.contains(&("protocol-handled", "PayloadKind::Probe")),
            "{diags:?}"
        );
        assert!(
            rules.contains(&("error-produced", "NetError::Closed")),
            "{diags:?}"
        );
        assert!(
            !rules
                .iter()
                .any(|(_, n)| *n == "PayloadKind::Batch" || *n == "NetError::Timeout"),
            "{diags:?}"
        );
    }

    #[test]
    fn construction_inside_the_defining_file_does_not_count() {
        // envelope.rs itself constructs Probe (e.g. in its wire codec);
        // that must not satisfy protocol-constructed.
        let enums_with_codec = "pub enum PayloadKind {\n    Batch,\n    Logits { round: u64 },\n    Probe,\n}\n\
             fn from_wire() {\n    PayloadKind::Probe;\n    PayloadKind::Batch;\n    PayloadKind::Logits { round: 0 };\n}\n";
        let model = Model::build(&[
            ("net", "crates/net/src/envelope.rs", enums_with_codec),
            ("net", "crates/net/src/error.rs", ERRORS),
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn dispatch() {\n    handle(PayloadKind::Batch);\n    handle(PayloadKind::Logits { round: 0 });\n    NetError::Timeout;\n    NetError::Closed;\n}\n",
            ),
            (
                "net",
                "crates/net/src/mailbox.rs",
                "fn emit() {\n    make(PayloadKind::Batch);\n    make(PayloadKind::Logits { round: 0 });\n}\n",
            ),
        ]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        // Probe is built only inside envelope.rs itself, which must not
        // count — so both requirements fire for it, and nothing else.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(
            diags
                .iter()
                .all(|d| d.message.contains("PayloadKind::Probe")),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.rule == "protocol-constructed"));
        assert!(diags.iter().any(|d| d.rule == "protocol-handled"));
    }

    #[test]
    fn test_only_usage_does_not_count() {
        let diags = run(&[(
            "core",
            "crates/core/src/fsm.rs",
            "fn dispatch() {\n    handle(PayloadKind::Batch);\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() {\n        PayloadKind::Probe;\n        NetError::Closed;\n    }\n}\n",
        )]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "protocol-handled" && d.message.contains("Probe")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "error-produced" && d.message.contains("Closed")),
            "{diags:?}"
        );
    }

    // The recovery protocol's wire enums, as fixtures: the three
    // re-placement variants must satisfy both protocol rules.
    const RECOVERY_ENUMS: &str = "pub enum PayloadKind {\n    Input,\n    Result,\n    LoadExpert,\n    LoadChunk,\n    LoadAck,\n}\n";

    #[test]
    fn recovery_variants_constructed_and_handled_pass() {
        // Mirrors the real topology: recover.rs constructs all three
        // recovery kinds (master side), fsm.rs handles them in the
        // worker/master state machines.
        let model = Model::build(&[
            ("net", "crates/net/src/envelope.rs", RECOVERY_ENUMS),
            ("net", "crates/net/src/error.rs", ERRORS),
            (
                "core",
                "crates/core/src/recover.rs",
                "fn transfer() {\n    send(PayloadKind::LoadExpert);\n    send(PayloadKind::LoadChunk);\n    expect(PayloadKind::LoadAck);\n    NetError::Timeout;\n    NetError::Closed;\n}\n",
            ),
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn dispatch() {\n    handle(PayloadKind::Input);\n    handle(PayloadKind::Result);\n    handle(PayloadKind::LoadExpert);\n    handle(PayloadKind::LoadChunk);\n    handle(PayloadKind::LoadAck);\n}\n",
            ),
            (
                "net",
                "crates/net/src/mailbox.rs",
                "fn emit() {\n    make(PayloadKind::Input);\n    make(PayloadKind::Result);\n    make(PayloadKind::LoadAck);\n}\n",
            ),
        ]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unhandled_load_chunk_is_caught() {
        // Deliberately-bad fixture: LoadChunk is constructed by the
        // migration sender but missing from the dispatch — exactly the
        // silent-drop regression this rule exists to catch.
        let model = Model::build(&[
            ("net", "crates/net/src/envelope.rs", RECOVERY_ENUMS),
            ("net", "crates/net/src/error.rs", ERRORS),
            (
                "core",
                "crates/core/src/recover.rs",
                "fn transfer() {\n    send(PayloadKind::LoadExpert);\n    send(PayloadKind::LoadChunk);\n    expect(PayloadKind::LoadAck);\n    NetError::Timeout;\n    NetError::Closed;\n}\n",
            ),
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn dispatch() {\n    handle(PayloadKind::Input);\n    handle(PayloadKind::Result);\n    handle(PayloadKind::LoadExpert);\n    handle(PayloadKind::LoadAck);\n}\n",
            ),
            (
                "net",
                "crates/net/src/mailbox.rs",
                "fn emit() {\n    make(PayloadKind::Input);\n    make(PayloadKind::Result);\n}\n",
            ),
        ]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "protocol-handled");
        assert!(
            diags[0].message.contains("PayloadKind::LoadChunk"),
            "{}",
            diags[0].message
        );
    }

    // The serving front-end's wire enum, as fixtures: every kind must be
    // constructed somewhere and dispatched in tcp.rs.
    const SERVE_ENUMS: &str =
        "pub enum ServeMsgKind {\n    Request,\n    Reply,\n    Reject,\n    Goodbye,\n}\n";
    const SERVE_ERRORS: &str = "pub enum ServeError {\n    Overloaded,\n    Closed,\n}\n";

    #[test]
    fn serve_kind_missing_from_dispatch_is_caught() {
        // Goodbye is sent by clients but absent from the tcp.rs dispatch:
        // an idle client's hangup frame would be silently dropped.
        let model = Model::build(&[
            ("net", "crates/net/src/envelope.rs", ENUMS),
            ("net", "crates/net/src/error.rs", ERRORS),
            ("serve", "crates/serve/src/wire.rs", SERVE_ENUMS),
            ("serve", "crates/serve/src/error.rs", SERVE_ERRORS),
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn dispatch() {\n    handle(PayloadKind::Batch);\n    handle(PayloadKind::Logits { round: 0 });\n    handle(PayloadKind::Probe);\n    NetError::Timeout;\n    NetError::Closed;\n}\n",
            ),
            (
                "net",
                "crates/net/src/mailbox.rs",
                "fn emit() {\n    make(PayloadKind::Batch);\n    make(PayloadKind::Logits { round: 0 });\n    make(PayloadKind::Probe);\n}\n",
            ),
            (
                "serve",
                "crates/serve/src/tcp.rs",
                "fn serve() {\n    handle(ServeMsgKind::Request);\n    handle(ServeMsgKind::Reply);\n    handle(ServeMsgKind::Reject);\n    ServeError::Overloaded;\n    ServeError::Closed;\n}\n",
            ),
            (
                "serve",
                "crates/serve/src/engine.rs",
                "fn client() {\n    send(ServeMsgKind::Goodbye);\n}\n",
            ),
        ]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "protocol-handled");
        assert!(
            diags[0].message.contains("ServeMsgKind::Goodbye"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn unproduced_serve_error_is_caught() {
        let model = Model::build(&[
            ("serve", "crates/serve/src/error.rs", SERVE_ERRORS),
            (
                "serve",
                "crates/serve/src/engine.rs",
                "fn admit() {\n    reject(ServeError::Overloaded);\n}\n",
            ),
        ]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "error-produced");
        assert!(
            diags[0].message.contains("ServeError::Closed"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn allow_on_the_variant_line_escapes() {
        let enums = "pub enum PayloadKind {\n    Batch,\n    // lint: allow(protocol-constructed)\n    // lint: allow(protocol-handled)\n    Probe,\n}\n";
        let model = Model::build(&[
            ("net", "crates/net/src/envelope.rs", enums),
            ("net", "crates/net/src/error.rs", ERRORS),
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn dispatch() {\n    handle(PayloadKind::Batch);\n    NetError::Timeout;\n    NetError::Closed;\n}\n",
            ),
            (
                "net",
                "crates/net/src/mailbox.rs",
                "fn emit() {\n    make(PayloadKind::Batch);\n}\n",
            ),
        ]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn struct_variant_fields_are_not_mistaken_for_variants() {
        let model = Model::build(&[(
            "net",
            "crates/net/src/envelope.rs",
            "pub enum PayloadKind {\n    Logits {\n        round: u64,\n        bytes: Vec<u8>,\n    },\n}\n",
        )]);
        let variants = enum_variants(&model, "crates/net/src/envelope.rs", "PayloadKind").unwrap();
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Logits"]);
    }
}
