//! The invariant lint pass: scans non-test library code for panic-prone
//! constructs and checks crate-root hygiene headers.
//!
//! Rule IDs (also the names accepted by `// lint: allow(<rule>)`):
//!
//! | rule            | rejects                                              |
//! |-----------------|------------------------------------------------------|
//! | `no-unwrap`     | `.unwrap()` on `Option`/`Result`                     |
//! | `no-expect`     | `.expect(...)`                                       |
//! | `no-panic`      | `panic!(...)`                                        |
//! | `no-todo`       | `todo!` / `unimplemented!`                           |
//! | `no-index`      | unchecked `x[i]` indexing (net/core crates only)     |
//! | `transport-stats` | `Transport` impls without a forwarding `stats()`   |
//! | `forbid-unsafe` | crate roots missing `#![forbid(unsafe_code)]`        |
//! | `missing-docs`  | crate roots missing a `missing_docs` lint header     |

use crate::lexer;
use crate::symbols::{Model, SourceFile};
use crate::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates where unchecked indexing is rejected outright: a bad index in the
/// distributed runtime or wire protocol kills a live inference, whereas the
/// numeric kernels index in tight loops under their own invariants.
const INDEX_CHECKED_CRATES: &[&str] = &["net", "core"];

/// Runs the lint pass over an already-lexed workspace [`Model`] (the
/// sources are masked exactly once per xtask invocation and shared with
/// the audit passes), appending diagnostics. Returns `(files, lines)`
/// scanned for the summary.
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> (usize, usize) {
    let mut files = 0usize;
    let mut lines = 0usize;
    for file in &model.files {
        if file.rel_path.ends_with("/src/lib.rs") {
            check_crate_root(file, diags);
        }
        let (f, l) = check_file(file, diags);
        files += f;
        lines += l;
    }
    (files, lines)
}

/// Library crates: every `crates/*` directory with a `src/lib.rs`.
pub fn library_crates(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.join("src/lib.rs").is_file() {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// All `.rs` files under `dir`, excluding `src/bin/` (CLI binaries may exit
/// loudly) — recursion is shallow here, the workspace has no deep trees.
pub(crate) fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "bin") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Crate-root hygiene headers. Inner attributes carry no strings or
/// comments, so the masked lines preserve them verbatim.
fn check_crate_root(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let has = |needle: &str| file.masked.lines.iter().any(|l| l.contains(needle));
    if !has("#![forbid(unsafe_code)]") {
        diags.push(Diagnostic {
            path: file.rel_path.clone(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root must carry #![forbid(unsafe_code)]".into(),
        });
    }
    if !has("#![warn(missing_docs)]") && !has("#![deny(missing_docs)]") {
        diags.push(Diagnostic {
            path: file.rel_path.clone(),
            line: 1,
            rule: "missing-docs",
            message: "crate root must enable the missing_docs lint".into(),
        });
    }
}

fn check_file(file: &SourceFile, diags: &mut Vec<Diagnostic>) -> (usize, usize) {
    let rel = &file.rel_path;
    let masked = &file.masked;
    let skip = &file.test_mask;
    let index_checked = INDEX_CHECKED_CRATES.contains(&file.crate_name.as_str());

    for (idx, line) in masked.lines.iter().enumerate() {
        let lineno = idx + 1;
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let mut hits: Vec<(&'static str, String)> = Vec::new();
        if line.contains(".unwrap()") {
            hits.push((
                "no-unwrap",
                "call .unwrap() may panic; return a typed error".into(),
            ));
        }
        if line.contains(".expect(") {
            hits.push((
                "no-expect",
                "call .expect() may panic; return a typed error".into(),
            ));
        }
        if contains_bang_macro(line, "panic") {
            hits.push((
                "no-panic",
                "panic! aborts a live inference; return an error".into(),
            ));
        }
        if contains_bang_macro(line, "todo") || contains_bang_macro(line, "unimplemented") {
            hits.push(("no-todo", "unfinished code path".into()));
        }
        if index_checked && has_unchecked_index(line) {
            hits.push((
                "no-index",
                "unchecked indexing may panic; use .get() or validate first".into(),
            ));
        }
        for (rule, message) in hits {
            if !masked.is_allowed(lineno, rule) {
                diags.push(Diagnostic {
                    path: rel.clone(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        }
    }
    check_transport_impls(masked, skip, rel, diags);
    (1, masked.lines.len())
}

/// The `transport-stats` rule: every `impl … Transport for …` block must
/// define `fn stats(`, and the body must not be a bare
/// `TransportStats::default()` stub. Wrappers that forget to forward
/// `stats()` silently zero every counter behind them — exactly the kind of
/// observability rot that makes chaos-test failures undebuggable.
fn check_transport_impls(
    masked: &lexer::Masked,
    skip: &[bool],
    rel: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut i = 0usize;
    while i < masked.lines.len() {
        let line = masked.lines.get(i).map(String::as_str).unwrap_or("");
        if skip.get(i).copied().unwrap_or(false) || !is_transport_impl(line) {
            i += 1;
            continue;
        }
        let end = matching_brace_end(&masked.lines, i);
        let impl_lineno = i + 1;
        let mut stats_line: Option<usize> = None;
        for (j, body_line) in masked.lines.iter().enumerate().take(end + 1).skip(i) {
            if body_line.contains("fn stats(") {
                stats_line = Some(j);
                break;
            }
        }
        match stats_line {
            None => {
                if !masked.is_allowed(impl_lineno, "transport-stats") {
                    diags.push(Diagnostic {
                        path: rel.to_string(),
                        line: impl_lineno,
                        rule: "transport-stats",
                        message: "Transport impl must define stats(); without it the \
                                  transport's counters are invisible to callers"
                            .into(),
                    });
                }
            }
            Some(j) => {
                let body_end = matching_brace_end(&masked.lines, j);
                let body: String = masked
                    .lines
                    .iter()
                    .take(body_end + 1)
                    .skip(j)
                    .map(|l| l.trim())
                    .collect::<Vec<_>>()
                    .join(" ");
                let after_open = body.split_once('{').map(|(_, b)| b).unwrap_or("");
                let inner = after_open
                    .rsplit_once('}')
                    .map(|(b, _)| b)
                    .unwrap_or(after_open)
                    .trim();
                if inner == "TransportStats::default()"
                    && !masked.is_allowed(j + 1, "transport-stats")
                {
                    diags.push(Diagnostic {
                        path: rel.to_string(),
                        line: j + 1,
                        rule: "transport-stats",
                        message: "stats() returns a default stub; forward or aggregate the \
                                  underlying transport's counters"
                            .into(),
                    });
                }
            }
        }
        i = end + 1;
    }
}

/// True if `line` opens an `impl … Transport for …` block (not a trait
/// definition, not an inherent impl, not a `SomethingTransport for`).
fn is_transport_impl(line: &str) -> bool {
    if !line.trim_start().starts_with("impl") {
        return false;
    }
    let Some(pos) = line.find("Transport for ") else {
        return false;
    };
    pos == 0
        || !line
            .get(..pos)
            .and_then(|prefix| prefix.chars().next_back())
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Index of the line holding the `}` that closes the first `{` at or after
/// line `start` (clamped to the last line if braces never balance).
pub(crate) fn matching_brace_end(lines: &[String], start: usize) -> usize {
    let mut depth = 0i32;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if opened && depth == 0 {
                return j;
            }
        }
    }
    lines.len().saturating_sub(1)
}

/// Marks lines inside `#[cfg(test)]`-gated items (brace-matched from the
/// attribute) so the lint only fires on shipping code.
pub(crate) fn test_lines(lines: &[String]) -> Vec<bool> {
    let mut skip = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            // Walk forward to the first `{`, then to its matching `}`.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                skip[j] = true;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break 'outer;
                    }
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    skip
}

/// True if `line` invokes `name!` as a macro (word-boundary on the left).
fn contains_bang_macro(line: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(&needle) {
        let at = start + pos;
        let boundary = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Heuristic for unchecked index/slice expressions: `[` directly after an
/// identifier character, `]`, or `)` is an `Index` use (`buf[i]`,
/// `&frame[..n]`); `#[attr]`, `vec![…]`, array types and literals are not.
fn has_unchecked_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b']' || prev == b')' {
            return true;
        }
    }
    false
}

pub(crate) fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bang_macro_word_boundary() {
        assert!(contains_bang_macro("panic!(\"x\")", "panic"));
        assert!(!contains_bang_macro("should_panic!(\"x\")", "panic"));
        assert!(!contains_bang_macro("no macros here", "panic"));
    }

    #[test]
    fn index_heuristic() {
        assert!(has_unchecked_index("let x = buf[i];"));
        assert!(has_unchecked_index("let s = &frame[..n];"));
        assert!(!has_unchecked_index("#[derive(Debug)]"));
        assert!(!has_unchecked_index("let v = vec![0u8; 4];"));
        assert!(!has_unchecked_index("fn f(x: [u8; 4]) {}"));
    }

    fn transport_diags(text: &str) -> Vec<Diagnostic> {
        let masked = lexer::mask(text);
        let skip = vec![false; masked.lines.len()];
        let mut diags = Vec::new();
        check_transport_impls(&masked, &skip, "x.rs", &mut diags);
        diags
    }

    #[test]
    fn transport_impl_without_stats_is_flagged() {
        let diags = transport_diags(
            "impl Transport for Foo {\n    fn send(&self) {}\n}\n\
             impl<T: Transport> Transport for Bar<T> {\n    fn send(&self) {}\n}\n",
        );
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "transport-stats"));
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 4);
    }

    #[test]
    fn transport_stats_stub_is_flagged() {
        let diags = transport_diags(
            "impl Transport for Foo {\n    fn stats(&self) -> TransportStats {\n        \
             TransportStats::default()\n    }\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "transport-stats");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn forwarding_stats_passes() {
        let diags = transport_diags(
            "impl Transport for Foo {\n    fn stats(&self) -> TransportStats {\n        \
             self.inner.stats()\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_transport_impls_are_ignored() {
        let diags = transport_diags(
            "impl Foo {\n    fn go(&self) {}\n}\n\
             impl MyTransport for Foo {\n    fn go(&self) {}\n}\n\
             pub trait Transport {\n    fn stats(&self);\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_blocks_are_skipped() {
        let lines: Vec<String> = [
            "fn a() {}",
            "#[cfg(test)]",
            "mod tests {",
            "    fn b() {}",
            "}",
            "fn c() {}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let skip = test_lines(&lines);
        assert_eq!(skip, vec![false, true, true, true, true, false]);
    }
}
