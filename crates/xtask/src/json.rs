//! Machine-readable diagnostics: `--json` rendering for every xtask pass.
//!
//! The schema is deliberately tiny and **stable** — each diagnostic is an
//! object with exactly four keys, in this order:
//!
//! ```json
//! {"rule": "no-unwrap", "file": "crates/net/src/x.rs", "line": 7, "message": "..."}
//! ```
//!
//! A clean run renders `[]`. Diagnostics are sorted by
//! `(file, line, rule, message)` so the output is byte-stable regardless of
//! pass execution order. The golden test below pins the exact bytes against
//! `testdata/diagnostics.golden.json`; editors of this module must update
//! the golden file *consciously*, because downstream tooling (CI annotators,
//! editor integrations) parses this format.
//!
//! Rendering is hand-rolled rather than routed through `serde_json` so the
//! key order and whitespace are pinned by this file alone, not by a
//! dependency's internals.

use crate::Diagnostic;

/// Renders diagnostics as a JSON array, one object per line, sorted and
/// byte-stable. Returns `"[]"` (plus newline) when `diags` is empty.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut rows: Vec<&Diagnostic> = diags.iter().collect();
    rows.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    if rows.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, d) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{comma}\n",
            escape(d.rule),
            escape(&d.path),
            d.line,
            escape(&d.message),
        ));
    }
    out.push_str("]\n");
    out
}

/// JSON string escaping (RFC 8259 §7): quote, backslash, and control
/// characters; everything else passes through as UTF-8.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/net/src/faults.rs".into(),
                line: 12,
                rule: "no-unwrap",
                message: "call .unwrap() may panic; return a typed error".into(),
            },
            Diagnostic {
                path: "crates/core/src/fsm.rs".into(),
                line: 0,
                rule: "fsm-coverage",
                message: "quoted \"needle\" and a\ttab".into(),
            },
            Diagnostic {
                path: "crates/core/src/fsm.rs".into(),
                line: 40,
                rule: "fsm-dispatch",
                message: "backslash \\ case".into(),
            },
        ]
    }

    /// The load-bearing test: the rendered bytes for a fixed diagnostic
    /// set must match the checked-in golden file exactly. A mismatch means
    /// the `--json` schema changed — update the golden file only if every
    /// consumer of the format is updated with it.
    #[test]
    fn golden_schema_is_pinned() {
        let rendered = render(&sample());
        let golden = include_str!("testdata/diagnostics.golden.json");
        assert_eq!(
            rendered, golden,
            "--json output drifted from testdata/diagnostics.golden.json; \
             the schema is a public contract"
        );
    }

    #[test]
    fn empty_renders_as_empty_array() {
        assert_eq!(render(&[]), "[]\n");
    }

    #[test]
    fn output_is_sorted_not_insertion_ordered() {
        let rendered = render(&sample());
        let fsm_pos = rendered.find("fsm-coverage").unwrap_or(usize::MAX);
        let unwrap_pos = rendered.find("no-unwrap").unwrap_or(0);
        assert!(
            fsm_pos < unwrap_pos,
            "core paths must sort before net paths:\n{rendered}"
        );
    }

    #[test]
    fn escaping_covers_controls() {
        assert_eq!(
            escape("a\"b\\c\nd\te\u{1}"),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }
}
