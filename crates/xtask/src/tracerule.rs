//! Trace-propagation audit: every envelope / serve-frame send site in
//! `core` and `serve` must attach a trace context (DESIGN.md §17).
//!
//! Cross-node causal tracing only works if *every* hop stamps the frame:
//! one untraced send site and the receiver's spans fall out of the
//! assembled DAG as orphans. The rule is function-scoped over **non-test**
//! lines: a function that sends protocol frames
//! (`transport.send(...)`, `write_serve_frame(...)`,
//! `encode_serve_frame(...)`) must show evidence of trace attachment
//! somewhere in its body — `with_trace(`, `encode_traced(`, a `_traced(`
//! variant, `send_ctx(`, `current_ctx(` or `send_event(`.
//!
//! | exempt                       | why                                    |
//! |------------------------------|----------------------------------------|
//! | `crates/core/src/fsm.rs`     | pure FSMs are trace-free by design     |
//! |                              | (§15); their IO shells attach contexts |
//! | sends of a literal `&[]`     | raw unenveloped frames (shutdown)      |
//! | `// lint: allow(trace-propagation)` | pass-through helpers whose      |
//! |                              | callers pre-stamp the payload          |

use crate::symbols::Model;
use crate::Diagnostic;

const FSM_FILE: &str = "crates/core/src/fsm.rs";
const RULE: &str = "trace-propagation";

/// Send-site anchors: calls that put a protocol frame on the wire.
const ANCHORS: [&str; 3] = [
    "transport.send(",
    "write_serve_frame(",
    "encode_serve_frame(",
];

/// Evidence that the enclosing function attaches a trace context.
const EVIDENCE: [&str; 6] = [
    "with_trace(",
    "encode_traced(",
    "_traced(",
    "send_ctx(",
    "current_ctx(",
    "send_event(",
];

/// Runs the rule over the `core` and `serve` crates. Returns the number
/// of send sites audited, for the summary line.
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    let mut audited = 0usize;
    for f in &model.fns {
        if f.is_test {
            continue;
        }
        let Some(file) = model.files.get(f.file) else {
            continue;
        };
        let in_scope =
            (file.crate_name == "core" && file.rel_path != FSM_FILE) || file.crate_name == "serve";
        if !in_scope {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let end = end.min(file.masked.lines.len().saturating_sub(1));
        let body = &file.masked.lines[start..=end];
        let has_evidence = body.iter().any(|l| EVIDENCE.iter().any(|e| l.contains(e)));
        for (j, line) in body.iter().enumerate() {
            let idx = start + j;
            if file.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            if !ANCHORS.iter().any(|a| anchors_call(line, a)) {
                continue;
            }
            audited += 1;
            // Raw unenveloped frames (shutdown pings) carry no trace.
            if line.contains("&[]") {
                continue;
            }
            if has_evidence || file.masked.is_allowed(idx + 1, RULE) {
                continue;
            }
            diags.push(Diagnostic {
                path: file.rel_path.clone(),
                line: idx + 1,
                rule: RULE,
                message: format!(
                    "protocol frame sent without attaching a trace context; stamp it \
                     (`with_trace` / `encode_traced` / a `_traced` frame writer) so the \
                     receiver's spans stay connected in the assembled cross-node DAG: `{}`",
                    line.trim()
                ),
            });
        }
    }
    audited
}

/// Whether `line` calls `anchor` itself (not a `_traced` superset of it):
/// the match must not be immediately preceded by an identifier character
/// and the anchor text itself must end at the `(`.
fn anchors_call(line: &str, anchor: &str) -> bool {
    let mut from = 0usize;
    while let Some(pos) = line.get(from..).and_then(|s| s.find(anchor)) {
        let at = from + pos;
        let preceded = at > 0
            && line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if !preceded {
            return true;
        }
        from = at + anchor.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let model = Model::build(files);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn traced_send_sites_pass() {
        let diags = run(&[(
            "core",
            "crates/core/src/runtime.rs",
            "fn shell(t: &dyn Transport) {\n    let ctx = obs.tracer.current_ctx(trace_id);\n    let payload = env.clone().with_trace(ctx).encode();\n    transport.send(peer, TAG_INPUT, &payload).unwrap();\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn untraced_send_fixture_is_caught() {
        // The deliberately-bad fixture from the issue: an envelope encoded
        // and sent with no trace context anywhere in the function.
        let diags = run(&[(
            "core",
            "crates/core/src/rogue.rs",
            "fn rogue(t: &dyn Transport) {\n    let payload = Envelope::new(round, PayloadKind::Input, body).encode();\n    transport.send(peer, TAG_INPUT, &payload).unwrap();\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn untraced_serve_frame_is_caught_and_traced_writer_passes() {
        let diags = run(&[(
            "serve",
            "crates/serve/src/rogue.rs",
            "fn reply(w: &mut dyn Write) {\n    write_serve_frame(w, ServeMsgKind::Reply, id, &payload).unwrap();\n}\nfn reply_traced(w: &mut dyn Write) {\n    write_serve_frame_traced(w, ServeMsgKind::Reply, id, ctx, &payload).unwrap();\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn fsm_raw_frames_tests_and_allow_are_exempt() {
        let diags = run(&[
            // Pure FSMs are out of scope entirely.
            (
                "core",
                "crates/core/src/fsm.rs",
                "fn emit(t: &dyn Transport) {\n    transport.send(peer, TAG_INPUT, &frame.encode()).unwrap();\n}\n",
            ),
            // A raw `&[]` frame (shutdown) has no envelope to stamp.
            (
                "core",
                "crates/core/src/runtime.rs",
                "fn shutdown(t: &dyn Transport) {\n    transport.send(peer, TAG_SHUTDOWN, &[]).unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        transport.send(0, TAG_INPUT, &payload).unwrap();\n    }\n}\n",
            ),
            // Pass-through helper whose caller pre-stamps the payload.
            (
                "core",
                "crates/core/src/retry.rs",
                "fn forward(t: &dyn Transport, payload: &[u8]) {\n    // lint: allow(trace-propagation)\n    transport.send(peer, TAG_INPUT, payload).unwrap();\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
