//! Pass 2: drives the `teamnet-nn` static shape checker over every model
//! builder at each configuration the paper evaluates (MLP-2/4/8 on 28×28
//! digits, SS-8/14/26 on 32×32 images), and self-tests the checker by
//! confirming it rejects a deliberately mis-wired stack.

use crate::Diagnostic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use teamnet_nn::{check_model, Dense, Layer, ModelSpec, Sequential};

/// The paper's model grid (Table 1 / Section VI-A). Shared with the
/// resource-certification pass ([`crate::cost`]) so both audits cover the
/// same configurations.
pub(crate) fn paper_specs() -> Vec<(String, ModelSpec)> {
    let mut specs = Vec::new();
    for layers in [2usize, 4, 8] {
        specs.push((format!("MLP-{layers}"), ModelSpec::mlp(layers, 128)));
    }
    for depth in [8usize, 14, 26] {
        specs.push((format!("SS-{depth}"), ModelSpec::shake_shake(depth, 16)));
    }
    specs
}

/// Checks every builder, appending diagnostics. Returns the number of
/// configurations audited.
pub fn check(diags: &mut Vec<Diagnostic>) -> usize {
    let specs = paper_specs();
    for (name, spec) in &specs {
        match spec.build_checked(0) {
            Ok(net) => {
                // `build_checked` validated wiring; cross-check the declared
                // output against the dynamic `out_dims` bookkeeping too.
                let mut dims = vec![1];
                dims.extend(spec.input_dims());
                let declared = net.out_dims(&dims);
                if declared != vec![1, spec.classes()] {
                    diags.push(Diagnostic {
                        path: format!("nn::models ({name})"),
                        line: 0,
                        rule: "shape-check",
                        message: format!(
                            "builder declares output {declared:?}, spec wants [1, {}]",
                            spec.classes()
                        ),
                    });
                }
            }
            Err(e) => diags.push(Diagnostic {
                path: format!("nn::models ({name})"),
                line: 0,
                rule: "shape-check",
                message: e.to_string(),
            }),
        }
    }

    // Negative control: if the checker accepts an obviously mis-wired net,
    // the pass above proves nothing — fail loudly.
    let mut rng = StdRng::seed_from_u64(0);
    let mut bad = Sequential::new();
    bad.push(Dense::new(784, 128, &mut rng));
    bad.push(Dense::new(256, 10, &mut rng));
    match check_model(&bad, &[784]) {
        Err(e) if e.layer_index() == Some(1) => {}
        other => diags.push(Diagnostic {
            path: "nn::shape_check (self-test)".into(),
            line: 0,
            rule: "shape-check",
            message: format!("mis-wired stack not rejected at layer 1: {other:?}"),
        }),
    }
    specs.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_is_clean() {
        let mut diags = Vec::new();
        let n = check(&mut diags);
        assert_eq!(n, 6);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
