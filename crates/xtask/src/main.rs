//! `cargo xtask` — workspace tooling for the TeamNet reproduction.
//!
//! Three subcommands, each exiting non-zero on any diagnostic:
//!
//! **`cargo xtask check`** — fast per-line invariants:
//!
//! 0. **Manifest audit** — workspace resolver + path-only dependencies
//!    (see [`manifest`]).
//! 1. **Invariant lints** — rejects panic-prone constructs in non-test
//!    library code and enforces crate-root hygiene headers (see [`lint`]
//!    for the rule table; suppress a finding with `// lint: allow(<rule>)`).
//! 2. **Static shape check** — builds every model configuration from the
//!    paper through `teamnet-nn`'s `shape_check` pass (see [`shapes`]).
//!
//! **`cargo xtask audit`** — symbol-aware cross-crate analysis over a
//! per-crate symbol table and function-level call graph (see [`symbols`]):
//!
//! 1. **Lock order** — lock-acquisition graph across `net`/`core`; fails
//!    on inconsistent ordering cycles and locks held across network I/O
//!    (see [`locks`]; rules `lock-order`, `lock-across-io`).
//! 2. **Determinism taint** — hasher/clock/entropy nondeterminism
//!    reachable from protocol encode/decode, the inference runtime, and
//!    the simulator (see [`taint`]; rules `det-map`, `det-clock`,
//!    `det-rng`).
//! 3. **Protocol exhaustiveness** — every `PayloadKind` variant built and
//!    dispatched, every `NetError` variant produced (see [`protocol`];
//!    rules `protocol-constructed`, `protocol-handled`, `error-produced`).
//! 4. **Narrowing casts** — unchecked truncating `as` casts reachable
//!    from the codec/envelope/cost roots (see [`cast`]; rule
//!    `cast-truncate`).
//!
//! **`cargo xtask cost`** — static per-expert resource certification:
//! prices the full paper model grid (parameter bytes, FLOPs, liveness-
//! analyzed peak activation bytes, framed bytes-on-wire) through
//! `teamnet_nn::cost` and writes `COST.json` at the workspace root; with
//! `--check` it diffs against the checked-in file instead and fails on
//! drift (see [`cost`]). Each run self-tests by rejecting a deliberately
//! mis-costed fixture.
//!
//! **`cargo xtask trace-report <trace.jsonl>`** — ingests a span trace
//! written by a `teamnet_obs::JsonlSink` and prints the per-span latency
//! table (count / p50 / p99 / total, from the log2-bucket histograms of
//! `teamnet_obs::report`). Exits non-zero on a malformed event line or an
//! empty span table — the CI traced-smoke stage relies on both.
//!
//! Implemented with `std` only: the sandbox has no crates-io access, so no
//! `syn`/`clippy-utils`; both commands work on comment/string-masked
//! source (see [`lexer`]).

mod cast;
mod cost;
mod lexer;
mod lint;
mod locks;
mod manifest;
mod protocol;
mod shapes;
mod symbols;
mod taint;

use std::path::PathBuf;
use std::process::ExitCode;

/// One finding from any pass; rendered as `path:line: [rule] message`.
#[derive(Debug)]
pub struct Diagnostic {
    /// Workspace-relative file path (or a logical location for pass 2).
    pub path: String,
    /// 1-based line, or 0 when the finding has no line.
    pub line: usize,
    /// Stable rule identifier, also the `lint: allow(...)` key.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(),
        Some("audit") => run_audit(),
        Some("cost") => run_cost(args.iter().any(|a| a == "--check")),
        Some("trace-report") => run_trace_report(args.get(1).map(String::as_str)),
        Some(other) => {
            eprintln!(
                "unknown subcommand `{other}`; usage: cargo xtask <check|audit|cost|trace-report>"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <check|audit|cost [--check]|trace-report FILE.jsonl>");
            ExitCode::from(2)
        }
    }
}

fn run_trace_report(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask trace-report FILE.jsonl");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match teamnet_obs::report::analyze(&text) {
        Ok(report) => {
            if report.rows.is_empty() {
                eprintln!("trace-report: {path} contains no completed spans");
                return ExitCode::FAILURE;
            }
            print!("{}", teamnet_obs::report::render_table(&report));
            println!(
                "{} event(s), {} span name(s)",
                report.events,
                report.rows.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_check() -> ExitCode {
    let root = workspace_root();
    let mut diags = Vec::new();

    manifest::check(&root, &mut diags);
    let (files, lines) = lint::check(&root, &mut diags);
    let configs = shapes::check(&mut diags);

    if diags.is_empty() {
        println!(
            "xtask check: OK — manifest audited, {files} files / {lines} lines linted, \
             {configs} model configurations shape-checked"
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("xtask check: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn run_cost(check_only: bool) -> ExitCode {
    let mut diags = Vec::new();
    let certified = cost::check(check_only, &mut diags);

    if diags.is_empty() {
        let action = if check_only {
            "matches the computed table"
        } else {
            "written"
        };
        println!(
            "xtask cost: OK — {certified} model configuration(s) certified \
             (params / FLOPs / liveness peak / wire bytes); {} {action}; \
             negative control: mis-costed fixture rejected",
            cost::COST_FILE
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("xtask cost: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn run_audit() -> ExitCode {
    let root = workspace_root();
    let model = symbols::Model::load_workspace(&root);
    let mut diags = Vec::new();

    let locks = locks::check(&model, &mut diags);
    let tainted = taint::check(&model, &mut diags);
    let variants = protocol::check(&model, &mut diags);
    let cast_audited = cast::check(&model, &mut diags);

    if diags.is_empty() {
        println!(
            "xtask audit: OK — {} fns / {} call edges modeled; lock order consistent \
             across {locks} lock(s), no lock held across I/O; determinism taint clean \
             over {tainted} reachable fn(s); {variants} protocol variant(s) constructed, \
             dispatched and produced; no unchecked narrowing cast over {cast_audited} \
             wire/cost-reachable fn(s)",
            model.fns.len(),
            model.call_edge_count(),
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("xtask audit: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
