//! `cargo xtask` — workspace tooling for the TeamNet reproduction.
//!
//! The only subcommand today is `check`, which runs three passes and exits
//! non-zero on any diagnostic:
//!
//! 0. **Manifest audit** — workspace resolver + path-only dependencies
//!    (see [`manifest`]).
//! 1. **Invariant lints** — rejects panic-prone constructs in non-test
//!    library code and enforces crate-root hygiene headers (see [`lint`]
//!    for the rule table; suppress a finding with `// lint: allow(<rule>)`).
//! 2. **Static shape check** — builds every model configuration from the
//!    paper through `teamnet-nn`'s `shape_check` pass (see [`shapes`]).
//!
//! Implemented with `std` only: the sandbox has no crates-io access, so no
//! `syn`/`clippy-utils`; the lint pass works on comment/string-masked
//! source (see [`lexer`]).

mod lexer;
mod lint;
mod manifest;
mod shapes;

use std::path::PathBuf;
use std::process::ExitCode;

/// One finding from any pass; rendered as `path:line: [rule] message`.
#[derive(Debug)]
pub struct Diagnostic {
    /// Workspace-relative file path (or a logical location for pass 2).
    pub path: String,
    /// 1-based line, or 0 when the finding has no line.
    pub line: usize,
    /// Stable rule identifier, also the `lint: allow(...)` key.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; usage: cargo xtask check");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask check");
            ExitCode::from(2)
        }
    }
}

fn run_check() -> ExitCode {
    let root = workspace_root();
    let mut diags = Vec::new();

    manifest::check(&root, &mut diags);
    let (files, lines) = lint::check(&root, &mut diags);
    let configs = shapes::check(&mut diags);

    if diags.is_empty() {
        println!(
            "xtask check: OK — manifest audited, {files} files / {lines} lines linted, \
             {configs} model configurations shape-checked"
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("xtask check: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
