//! `cargo xtask` — workspace tooling for the TeamNet reproduction.
//!
//! Subcommands, each exiting non-zero on any diagnostic. Every analysis
//! subcommand accepts `--json`, which prints the diagnostics to stdout as
//! a stable machine-readable array (see [`json`]; the schema is pinned by
//! a golden-file test) and moves the human summary to stderr.
//!
//! **`cargo xtask check [--json]`** — fast per-line invariants:
//!
//! 0. **Manifest audit** — workspace resolver + path-only dependencies
//!    (see [`manifest`]).
//! 1. **Invariant lints** — rejects panic-prone constructs in non-test
//!    library code and enforces crate-root hygiene headers (see [`lint`]
//!    for the rule table; suppress a finding with `// lint: allow(<rule>)`).
//! 2. **Static shape check** — builds every model configuration from the
//!    paper through `teamnet-nn`'s `shape_check` pass (see [`shapes`]).
//!
//! **`cargo xtask audit [--json]`** — symbol-aware cross-crate analysis.
//! The workspace is lexed and its symbol table + call graph built **once**
//! (see [`symbols`]) and shared across all passes; the summary line
//! reports per-pass timings:
//!
//! 1. **Lock order** — lock-acquisition graph across `net`/`core`; fails
//!    on inconsistent ordering cycles and locks held across network I/O
//!    (see [`locks`]; rules `lock-order`, `lock-across-io`).
//! 2. **Determinism taint** — hasher/clock/entropy nondeterminism
//!    reachable from protocol encode/decode, the inference runtime, and
//!    the simulator (see [`taint`]; rules `det-map`, `det-clock`,
//!    `det-rng`).
//! 3. **Protocol exhaustiveness** — every `PayloadKind` variant built and
//!    dispatched, every `NetError` variant produced (see [`protocol`];
//!    rules `protocol-constructed`, `protocol-handled`, `error-produced`).
//! 4. **Narrowing casts** — unchecked truncating `as` casts reachable
//!    from the codec/envelope/cost roots (see [`cast`]; rule
//!    `cast-truncate`).
//! 5. **FSM conformance** — every `PayloadKind` dispatch in `core` must
//!    live inside the pure transition functions of `core::fsm`, and every
//!    `step` function must handle every payload variant without a
//!    wildcard arm (see [`conformance`]; rules `fsm-dispatch`,
//!    `fsm-coverage`).
//! 6. **Trace propagation** — every envelope / serve-frame send site in
//!    `core` and `serve` must attach a trace context so cross-node traces
//!    assemble without orphans (see [`tracerule`]; rule
//!    `trace-propagation`).
//!
//! **`cargo xtask mc [--json] [--allow-truncation]`** — bounded
//! explicit-state model checking of the protocol FSMs: exhaustive BFS
//! over message interleavings on a small-model cluster with a budgeted
//! fault adversary, a compiled-in protocol mutant as negative control
//! (its minimized counterexample is printed as a message-sequence
//! diagram), and a seeded cross-check of the fault adversary against the
//! live `ChaosTransport` (see [`mc`] and [`netmodel`]; DESIGN.md §15).
//! Explored-state and transition counts on stdout are byte-stable
//! run-to-run; timings go to stderr. Exceeding an exploration budget
//! fails loudly unless `--allow-truncation` acknowledges the bounded
//! coverage.
//!
//! **`cargo xtask cost [--check] [--json]`** — static per-expert resource
//! certification: prices the full paper model grid (parameter bytes,
//! FLOPs, liveness-analyzed peak activation bytes, framed bytes-on-wire)
//! through `teamnet_nn::cost` and writes `COST.json` at the workspace
//! root; with `--check` it diffs against the checked-in file instead and
//! fails on drift (see [`cost`]). Each run self-tests by rejecting a
//! deliberately mis-costed fixture.
//!
//! **`cargo xtask trace-report <trace.jsonl>`** — ingests a span trace
//! written by a `teamnet_obs::JsonlSink` and prints the per-span latency
//! table (count / p50 / p99 / total, from the log2-bucket histograms of
//! `teamnet_obs::report`). Exits non-zero on a malformed event line or an
//! empty span table — the CI traced-smoke stage relies on both.
//!
//! **`cargo xtask trace-assemble NODE=FILE.jsonl [NODE=FILE.jsonl ...]
//! [--dag]`** — merges per-node JSONL traces into one causal DAG
//! (`teamnet_obs::assemble`), reconciling clocks from per-edge send/recv
//! deltas, and prints the byte-stable per-round critical-path table
//! attributing each round's wall time to compute / wire / wait / retry.
//! Orphan spans or malformed lines exit non-zero — the CI cross-node
//! assembly stage relies on it.
//!
//! Implemented with `std` only: the sandbox has no crates-io access, so no
//! `syn`/`clippy-utils`; the static passes work on comment/string-masked
//! source (see [`lexer`]). The `mc` subcommand additionally links the
//! workspace crates themselves — it checks the *production* transition
//! functions, not a parallel model.

mod cast;
mod conformance;
mod cost;
mod json;
mod lexer;
mod lint;
mod locks;
mod manifest;
mod mc;
mod netmodel;
mod protocol;
mod shapes;
mod symbols;
mod taint;
mod tracerule;

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One finding from any pass; rendered as `path:line: [rule] message`.
#[derive(Debug)]
pub struct Diagnostic {
    /// Workspace-relative file path (or a logical location like
    /// `mc://recovery` for passes without a source file).
    pub path: String,
    /// 1-based line, or 0 when the finding has no line.
    pub line: usize,
    /// Stable rule identifier, also the `lint: allow(...)` key.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    match args.first().map(String::as_str) {
        Some("check") => run_check(json),
        Some("audit") => run_audit(json),
        Some("mc") => run_mc(json, args.iter().any(|a| a == "--allow-truncation")),
        Some("cost") => run_cost(args.iter().any(|a| a == "--check"), json),
        Some("trace-report") => run_trace_report(args.get(1).map(String::as_str)),
        Some("trace-assemble") => run_trace_assemble(&args[1..]),
        Some(other) => {
            eprintln!(
                "unknown subcommand `{other}`; usage: \
                 cargo xtask <check|audit|mc|cost|trace-report|trace-assemble>"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo xtask <check [--json]|audit [--json]|mc [--json] \
                 [--allow-truncation]|cost [--check] [--json]|trace-report FILE.jsonl|\
                 trace-assemble NODE=FILE.jsonl [NODE=FILE.jsonl ...] [--dag]>"
            );
            ExitCode::from(2)
        }
    }
}

/// Runs one pass, recording its wall time for the summary line.
fn timed<T>(
    timings: &mut Vec<(&'static str, Duration)>,
    name: &'static str,
    pass: impl FnOnce() -> T,
) -> T {
    let start = Instant::now();
    let out = pass();
    timings.push((name, start.elapsed()));
    out
}

fn render_timings(timings: &[(&'static str, Duration)]) -> String {
    timings
        .iter()
        .map(|(name, d)| format!("{name} {}ms", d.as_millis()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Shared epilogue: renders diagnostics (JSON to stdout in `--json` mode,
/// human-readable to stderr otherwise) and the OK summary, and picks the
/// exit code.
fn finish(pass: &str, json_mode: bool, diags: &[Diagnostic], ok_summary: String) -> ExitCode {
    if json_mode {
        print!("{}", json::render(diags));
    }
    if diags.is_empty() {
        if json_mode {
            eprintln!("{ok_summary}");
        } else {
            println!("{ok_summary}");
        }
        ExitCode::SUCCESS
    } else {
        if !json_mode {
            for d in diags {
                eprintln!("{d}");
            }
        }
        eprintln!("xtask {pass}: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn run_trace_report(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask trace-report FILE.jsonl");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match teamnet_obs::report::analyze(&text) {
        Ok(report) => {
            if report.rows.is_empty() {
                eprintln!("trace-report: {path} contains no completed spans");
                return ExitCode::FAILURE;
            }
            print!("{}", teamnet_obs::report::render_table(&report));
            println!(
                "{} event(s), {} span name(s)",
                report.events,
                report.rows.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `trace-assemble NODE=FILE.jsonl ...` — merges per-node JSONL traces
/// into one causal DAG (re-parenting cross-node spans along the trace
/// contexts the frames carried), reconciles clocks from per-edge
/// send/recv deltas, and prints the byte-stable per-round critical-path
/// attribution table. `--dag` additionally prints the assembled span
/// forest. Orphan spans (a remote parent no input file accounts for) and
/// malformed lines fail loudly with a non-zero exit.
fn run_trace_assemble(args: &[String]) -> ExitCode {
    let mut inputs: Vec<(u64, String)> = Vec::new();
    let mut dag = false;
    for arg in args {
        if arg == "--dag" {
            dag = true;
            continue;
        }
        let parsed = arg
            .split_once('=')
            .and_then(|(node, path)| Some((node.parse::<u64>().ok()?, path)));
        let Some((node, path)) = parsed else {
            eprintln!("trace-assemble: bad argument `{arg}` (want NODE=FILE.jsonl)");
            return ExitCode::from(2);
        };
        match std::fs::read_to_string(path) {
            Ok(text) => inputs.push((node, text)),
            Err(e) => {
                eprintln!("trace-assemble: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if inputs.is_empty() {
        eprintln!(
            "usage: cargo xtask trace-assemble NODE=FILE.jsonl [NODE=FILE.jsonl ...] [--dag]"
        );
        return ExitCode::from(2);
    }
    match teamnet_obs::assemble::assemble(&inputs) {
        Ok(assembled) => {
            for w in &assembled.warnings {
                eprintln!("trace-assemble: warning: {w}");
            }
            if dag {
                print!("{}", assembled.render_dag());
            }
            print!("{}", assembled.critical_path_report());
            println!(
                "{} span(s), {} wire edge(s) across {} node(s)",
                assembled.spans.len(),
                assembled.edges.len(),
                assembled.skews.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-assemble: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_check(json_mode: bool) -> ExitCode {
    let root = workspace_root();
    let mut diags = Vec::new();
    let mut timings = Vec::new();

    // The workspace is lexed and masked exactly once; every pass below
    // shares the same model instead of re-reading the tree.
    let model = timed(&mut timings, "lex+symbols", || {
        symbols::Model::load_workspace(&root)
    });
    timed(&mut timings, "manifest", || {
        manifest::check(&root, &mut diags)
    });
    let (files, lines) = timed(&mut timings, "lint", || lint::check(&model, &mut diags));
    let configs = timed(&mut timings, "shapes", || shapes::check(&mut diags));

    finish(
        "check",
        json_mode,
        &diags,
        format!(
            "xtask check: OK — manifest audited, {files} files / {lines} lines linted, \
             {configs} model configurations shape-checked [{}]",
            render_timings(&timings)
        ),
    )
}

fn run_cost(check_only: bool, json_mode: bool) -> ExitCode {
    let mut diags = Vec::new();
    let certified = cost::check(check_only, &mut diags);
    let action = if check_only {
        "matches the computed table"
    } else {
        "written"
    };
    finish(
        "cost",
        json_mode,
        &diags,
        format!(
            "xtask cost: OK — {certified} model configuration(s) certified \
             (params / FLOPs / liveness peak / wire bytes); {} {action}; \
             negative control: mis-costed fixture rejected",
            cost::COST_FILE
        ),
    )
}

fn run_audit(json_mode: bool) -> ExitCode {
    let root = workspace_root();
    let mut diags = Vec::new();
    let mut timings = Vec::new();

    // Lex + symbol tables are built once and shared by all five passes.
    let model = timed(&mut timings, "lex+symbols", || {
        symbols::Model::load_workspace(&root)
    });
    let locks = timed(&mut timings, "locks", || locks::check(&model, &mut diags));
    let tainted = timed(&mut timings, "taint", || taint::check(&model, &mut diags));
    let variants = timed(&mut timings, "protocol", || {
        protocol::check(&model, &mut diags)
    });
    let cast_audited = timed(&mut timings, "cast", || cast::check(&model, &mut diags));
    let (dispatch_sites, step_fns) = timed(&mut timings, "fsm-conformance", || {
        conformance::check(&model, &mut diags)
    });
    let send_sites = timed(&mut timings, "trace-propagation", || {
        tracerule::check(&model, &mut diags)
    });

    finish(
        "audit",
        json_mode,
        &diags,
        format!(
            "xtask audit: OK — {} fns / {} call edges modeled; lock order consistent \
             across {locks} lock(s), no lock held across I/O; determinism taint clean \
             over {tainted} reachable fn(s); {variants} protocol variant(s) constructed, \
             dispatched and produced; no unchecked narrowing cast over {cast_audited} \
             wire/cost-reachable fn(s); {dispatch_sites} payload dispatch site(s) \
             confined to core::fsm, {step_fns} step fn(s) fully covered; \
             {send_sites} send site(s) attach trace contexts [{}]",
            model.fns.len(),
            model.call_edge_count(),
            render_timings(&timings)
        ),
    )
}

fn run_mc(json_mode: bool, allow_truncation: bool) -> ExitCode {
    let mut diags = Vec::new();
    let mut timings = Vec::new();
    let lines = timed(&mut timings, "mc", || {
        mc::check(allow_truncation, &mut diags)
    });

    // The explored-state / transition counts are byte-stable run-to-run;
    // anything timing-dependent stays on stderr so stdout can be diffed.
    for line in &lines {
        if json_mode {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    eprintln!("xtask mc timings: [{}]", render_timings(&timings));
    finish(
        "mc",
        json_mode,
        &diags,
        "xtask mc: OK — all invariants hold over the explored state space; \
         negative control caught; fault model matches ChaosTransport"
            .to_string(),
    )
}
