//! Lock-order audit: builds a lock-acquisition graph for the `net` and
//! `core` crates and rejects (a) cyclic acquisition orders and (b)
//! transport I/O performed while a lock guard is held.
//!
//! Rule IDs: `lock-order` (a cycle in the acquisition graph, including a
//! re-acquisition of the same non-reentrant lock) and `lock-across-io`
//! (`send`/`recv`/`recv_any` called with a guard live — with parking_lot
//! mutexes a blocked receive wedges every other thread touching that
//! lock).
//!
//! ## How locks are identified
//!
//! An acquisition site is a `.lock()`, `.read()` or `.write()` call with
//! empty argument lists (`io::Read::read(&mut buf)` never matches). The
//! lock's identity is the receiver token chain (`self.` stripped)
//! prefixed by the owning crate: `self.queues.lock()` in `net` is lock
//! `net:queues`. Identity is lexical — two fields with the same name in
//! different structs of one crate collapse into one node. That
//! over-merging can only create false *positives* (extra edges), never
//! hide a real cycle between distinctly-named locks.
//!
//! ## Guard lifetimes
//!
//! A `let`-bound guard (`let g = x.lock();`) is live from its binding
//! until brace depth drops below the binding statement's depth or an
//! explicit `drop(g)` — the same scope rustc gives it, minus
//! non-lexical-lifetime shrinking (again the conservative direction). An
//! acquisition that is not `let`-bound is a temporary: it dies at the end
//! of its own statement and never enters the held set.
//!
//! While a guard for lock `A` is live, acquiring lock `B` adds edge
//! `A → B`; calling a function whose transitive lock set contains `B`
//! adds the same edge (call edges resolved by name via
//! [`crate::symbols`]). `lock-across-io` is intra-procedural only; see
//! DESIGN.md §10 for the documented false-negative holes.

use crate::symbols::{calls_on_line, Model};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose locking is audited (the protocol-critical ones).
const LOCK_AUDITED_CRATES: &[&str] = &["net", "core"];

/// Transport calls that must not run under a lock.
const IO_CALLS: &[&str] = &["send", "recv", "recv_any"];

/// One lock acquisition found in a function body.
#[derive(Debug, Clone)]
struct Acquisition {
    /// Crate-qualified lock identity, e.g. `net:queues`.
    lock: String,
    /// 1-based source line.
    line: usize,
    /// Guard variable when `let`-bound; `None` for temporaries.
    guard: Option<String>,
    /// Brace depth at the start of the binding statement.
    depth: i32,
}

/// Runs the lock-order pass over `model`, appending diagnostics.
/// Returns the number of distinct locks seen (for the summary line).
pub fn check(model: &Model, diags: &mut Vec<Diagnostic>) -> usize {
    // Pass 1: per-function direct lock sets and intra-procedural events.
    let mut direct_locks: Vec<BTreeSet<String>> = vec![BTreeSet::new(); model.fns.len()];
    for (idx, f) in model.fns.iter().enumerate() {
        if !audited(model, idx) {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = model.files.get(f.file) else {
            continue;
        };
        for (j, line) in file
            .masked
            .lines
            .iter()
            .enumerate()
            .take(end + 1)
            .skip(start)
        {
            for acq in acquisitions_on_line(line, &file.crate_name, j + 1) {
                direct_locks[idx].insert(acq.lock);
            }
        }
    }

    // Pass 2: transitive lock sets through the call graph (fixpoint).
    let transitive = transitive_locks(model, &direct_locks);

    // Pass 3: walk each audited function tracking live guards; emit
    // edges and lock-across-io findings.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (idx, f) in model.fns.iter().enumerate() {
        if !audited(model, idx) {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = model.files.get(f.file) else {
            continue;
        };
        let rel = file.rel_path.clone();
        let mut depth = 0i32;
        let mut held: Vec<Acquisition> = Vec::new();
        for (j, line) in file
            .masked
            .lines
            .iter()
            .enumerate()
            .take(end + 1)
            .skip(start)
        {
            let lineno = j + 1;
            let depth_at_start = depth;
            // Guards die when their scope closes. Compute end-of-line
            // depth first so a `}` on this line can retire guards before
            // events later on the same line are judged (a close brace
            // precedes code only in degenerate formatting; conservative
            // either way).
            let mut min_depth = depth;
            for ch in line.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        min_depth = min_depth.min(depth);
                    }
                    _ => {}
                }
            }
            held.retain(|g| g.depth <= min_depth);
            // Explicit early drop.
            held.retain(|g| {
                g.guard
                    .as_deref()
                    .is_none_or(|name| !line.contains(&format!("drop({name})")))
            });

            let acqs = acquisitions_on_line(line, &file.crate_name, lineno);

            // Events against currently-held guards (bound on earlier lines).
            if !held.is_empty() {
                for acq in &acqs {
                    for h in &held {
                        if h.lock != acq.lock || h.line != acq.line {
                            add_edge(&mut edges, &h.lock, &acq.lock, &rel, lineno);
                        }
                    }
                }
                let mut callee_locks: BTreeSet<&str> = BTreeSet::new();
                let mut io_hit = false;
                for callee in calls_on_line(line) {
                    if IO_CALLS.contains(&callee.as_str()) {
                        io_hit = true;
                    }
                    for &target in model.fns_by_name(&callee) {
                        for l in &transitive[target] {
                            callee_locks.insert(l);
                        }
                    }
                }
                if io_hit && !file.masked.is_allowed(lineno, "lock-across-io") {
                    let holders: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                    diags.push(Diagnostic {
                        path: rel.clone(),
                        line: lineno,
                        rule: "lock-across-io",
                        message: format!(
                            "transport send/recv while holding lock(s) {}; a blocked \
                             peer wedges every thread contending on them",
                            holders.join(", ")
                        ),
                    });
                }
                for l in callee_locks {
                    for h in &held {
                        if h.lock != l {
                            add_edge(&mut edges, &h.lock, l, &rel, lineno);
                        } else if !file.masked.is_allowed(lineno, "lock-order") {
                            diags.push(Diagnostic {
                                path: rel.clone(),
                                line: lineno,
                                rule: "lock-order",
                                message: format!(
                                    "call may re-acquire non-reentrant lock {l} already \
                                     held here (self-deadlock)",
                                ),
                            });
                        }
                    }
                }
            }

            // New let-bound guards enter the held set after their own
            // line's events (a guard is not held "across" its own
            // acquisition statement).
            for acq in acqs {
                if acq.guard.is_some() && !file.masked.is_allowed(lineno, "lock-order") {
                    held.push(Acquisition {
                        depth: depth_at_start,
                        ..acq
                    });
                }
            }
        }
    }

    // Pass 4: cycle detection over the acquisition graph.
    let locks: BTreeSet<String> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .chain(direct_locks.iter().flatten().cloned())
        .collect();
    for cycle in find_cycles(&edges) {
        let provenance: Vec<String> = cycle
            .windows(2)
            .filter_map(|w| edges.get(&(w[0].clone(), w[1].clone())))
            .map(|(p, l)| format!("{p}:{l}"))
            .collect();
        diags.push(Diagnostic {
            path: provenance.first().cloned().unwrap_or_else(|| "?".into()),
            line: 0,
            rule: "lock-order",
            message: format!(
                "cyclic lock acquisition order {} (edges at {})",
                cycle.join(" -> "),
                provenance.join(", ")
            ),
        });
    }
    locks.len()
}

fn audited(model: &Model, idx: usize) -> bool {
    let Some(f) = model.fns.get(idx) else {
        return false;
    };
    if f.is_test {
        return false;
    }
    model
        .files
        .get(f.file)
        .is_some_and(|sf| LOCK_AUDITED_CRATES.contains(&sf.crate_name.as_str()))
}

fn add_edge(
    edges: &mut BTreeMap<(String, String), (String, usize)>,
    from: &str,
    to: &str,
    path: &str,
    line: usize,
) {
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert_with(|| (path.to_string(), line));
}

/// Closes each function's direct lock set over the call graph.
fn transitive_locks(model: &Model, direct: &[BTreeSet<String>]) -> Vec<BTreeSet<String>> {
    let mut out: Vec<BTreeSet<String>> = direct.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for idx in 0..model.fns.len() {
            let Some(f) = model.fns.get(idx) else {
                continue;
            };
            let mut add: Vec<String> = Vec::new();
            for callee in &f.calls {
                for &target in model.fns_by_name(callee) {
                    if target == idx {
                        continue;
                    }
                    for l in &out[target] {
                        if !out[idx].contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                out[idx].extend(add);
                changed = true;
            }
        }
    }
    out
}

/// Finds `.lock()` / `.read()` / `.write()` acquisition sites on a masked
/// line, with their receiver-chain lock identity and optional `let`
/// binding.
fn acquisitions_on_line(line: &str, crate_name: &str, lineno: usize) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for method in ["lock", "read", "write"] {
        let needle = format!(".{method}()");
        let mut start = 0usize;
        while let Some(pos) = line[start..].find(&needle) {
            let at = start + pos;
            start = at + needle.len();
            let Some(chain) = receiver_chain(line, at) else {
                continue;
            };
            out.push(Acquisition {
                lock: format!("{crate_name}:{chain}"),
                line: lineno,
                guard: let_binding(line),
                depth: 0, // filled in by the caller
            });
        }
    }
    out
}

/// The dotted receiver chain ending at byte `at` (the `.` of the call),
/// with a leading `self.` stripped: `self.inner.queues` → `inner.queues`.
/// `None` when the receiver is an opaque expression (`)`/`]` ending) —
/// those sites are skipped rather than mis-attributed.
fn receiver_chain(line: &str, at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = at;
    while i > 0 {
        let b = bytes[i - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b':' {
            i -= 1;
        } else {
            break;
        }
    }
    let chain = line[i..at].trim_start_matches(':');
    let chain = chain.strip_prefix("self.").unwrap_or(chain);
    if chain.is_empty() || chain.ends_with('.') {
        return None;
    }
    Some(chain.to_string())
}

/// The variable a `let` statement on this line binds, if any.
fn let_binding(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// All elementary cycles' representative paths (each returned as
/// `[a, b, …, a]`), found by DFS from every node. Deduplicated by
/// rotation-normalised node set.
fn find_cycles(edges: &BTreeMap<(String, String), (String, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut found: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut stack: Vec<&str> = vec![start];
        dfs(
            start,
            start,
            &adj,
            &mut stack,
            &mut found,
            &mut seen_sets,
            0,
        );
    }
    found
}

fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    found: &mut Vec<Vec<String>>,
    seen_sets: &mut BTreeSet<Vec<String>>,
    depth: usize,
) {
    if depth > 16 {
        return; // lock graphs this deep are already a finding elsewhere
    }
    let Some(neighbors) = adj.get(node) else {
        return;
    };
    for &next in neighbors {
        if next == start {
            let mut key: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            key.sort();
            if seen_sets.insert(key) {
                let mut cycle: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
                cycle.push(start.to_string());
                found.push(cycle);
            }
        } else if !stack.contains(&next) {
            stack.push(next);
            dfs(start, next, adj, stack, found, seen_sets, depth + 1);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Model;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = Model::build(&[("net", "crates/net/src/bad.rs", src)]);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn deliberate_lock_cycle_is_caught() {
        // a takes A then B; b takes B then A — classic ABBA deadlock.
        let src = "\
fn a(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
    use_both(g, h);
}
fn b(&self) {
    let h = self.beta.lock();
    let g = self.alpha.lock();
    use_both(g, h);
}
";
        let diags = run(src);
        assert!(
            diags.iter().any(|d| d.rule == "lock-order"
                && d.message.contains("net:alpha")
                && d.message.contains("net:beta")),
            "{diags:?}"
        );
    }

    #[test]
    fn cross_function_cycle_is_caught() {
        // a holds A and calls helper, which takes B; b does B then A.
        let src = "\
fn a(&self) {
    let g = self.alpha.lock();
    self.helper();
}
fn helper(&self) {
    let h = self.beta.lock();
    touch(h);
}
fn b(&self) {
    let h = self.beta.lock();
    let g = self.alpha.lock();
    touch(g);
}
";
        let diags = run(src);
        assert!(
            diags.iter().any(|d| d.rule == "lock-order"),
            "cycle through the call graph must be found: {diags:?}"
        );
    }

    #[test]
    fn send_under_lock_is_caught_and_escapable() {
        let src = "\
fn bad(&self) {
    let g = self.state.lock();
    self.transport.send(0, tag, payload);
}
fn fine(&self) {
    let g = self.state.lock();
    // lint: allow(lock-across-io)
    self.transport.send(0, tag, payload);
}
";
        let diags = run(src);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "lock-across-io").count(),
            1,
            "{diags:?}"
        );
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn guard_scope_ends_with_its_block_and_on_drop() {
        let src = "\
fn scoped(&self) {
    {
        let g = self.state.lock();
        touch(g);
    }
    self.transport.send(0, tag, payload);
}
fn dropped(&self) {
    let g = self.state.lock();
    drop(g);
    self.transport.recv(0, tag, timeout);
}
";
        let diags = run(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn temporary_guard_is_statement_scoped() {
        let src = "\
fn tmp(&self) {
    self.writers.lock().push(frame);
    self.transport.send(0, tag, payload);
}
";
        let diags = run(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn reacquiring_the_same_lock_through_a_call_is_caught() {
        let src = "\
fn outer(&self) {
    let g = self.state.lock();
    self.inner();
}
fn inner(&self) {
    let h = self.state.lock();
    touch(h);
}
";
        let diags = run(src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "lock-order" && d.message.contains("re-acquire")),
            "{diags:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
fn a(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
    use_both(g, h);
}
fn b(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
    use_both(g, h);
}
";
        let diags = run(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "\
fn pump(&self) {
    let n = stream.read(&mut buf);
    self.transport.send(0, tag, payload);
}
";
        let diags = run(src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
