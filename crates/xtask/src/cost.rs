//! `cargo xtask cost` — static per-expert resource certification.
//!
//! Prices every model configuration from the paper's grid (MLP-2/4/8,
//! SS-8/14/26) at FP32 and batch 1 through `teamnet_nn::cost`: parameter
//! bytes, forward FLOPs, peak live activation bytes (liveness analysis,
//! DESIGN.md §13) and framed bytes-on-wire. The table is rendered as
//! canonical JSON and written to `COST.json` at the workspace root; with
//! `--check` the rendering is diffed against the checked-in file instead,
//! failing on any drift — which makes resource regressions reviewable the
//! same way `Cargo.lock` changes are.
//!
//! Following the house style of the shape and audit passes, every run
//! includes a negative control: a deliberately mis-costed copy of the
//! table (one model's certified peak halved) must be rejected by the same
//! comparison that `--check` uses; if it is not, the pass fails loudly,
//! because a comparison that accepts a wrong certificate proves nothing.

use crate::{shapes, workspace_root, Diagnostic};
use serde::Value;
use teamnet_nn::{expert_cost, ExpertCost, WireModel};

/// Name of the checked-in certificate file at the workspace root.
pub const COST_FILE: &str = "COST.json";

/// Certifies the full paper grid at batch 1. Build or wiring failures are
/// reported as diagnostics; successfully certified models are returned in
/// grid order.
pub fn certify_grid(diags: &mut Vec<Diagnostic>) -> Vec<(String, ExpertCost)> {
    let wire = WireModel::default();
    let mut table = Vec::new();
    for (name, spec) in shapes::paper_specs() {
        match spec.build_checked(0) {
            Ok(net) => {
                let mut dims = vec![1];
                dims.extend(spec.input_dims());
                table.push((name, expert_cost(&net, &dims, &wire)));
            }
            Err(e) => diags.push(Diagnostic {
                path: format!("nn::models ({name})"),
                line: 0,
                rule: "cost-build",
                message: e.to_string(),
            }),
        }
    }
    table
}

/// Renders the certificate table as canonical pretty-printed JSON with a
/// trailing newline. Entries keep grid order and every map inside is
/// emitted in declaration order, so the rendering is byte-stable across
/// runs and platforms (a property the cross-crate proptests pin).
pub fn render(table: &[(String, ExpertCost)]) -> String {
    let entries: Vec<(String, Value)> = table
        .iter()
        .map(|(name, cert)| (name.clone(), serde::Serialize::to_json_value(cert)))
        .collect();
    let body = serde_json::to_string_pretty(&Value::Map(entries))
        // A Value::Map render cannot fail; turned into a diagnostic-free
        // empty string it would be caught by the `--check` diff instead of
        // panicking inside a CI tool.
        .unwrap_or_default();
    format!("{body}\n")
}

/// Compares the freshly computed rendering against a checked-in one.
/// Returns the first differing line as `Some((line_number, message))`.
pub fn first_mismatch(checked_in: &str, computed: &str) -> Option<(usize, String)> {
    if checked_in == computed {
        return None;
    }
    let mut on_disk = checked_in.lines();
    let mut fresh = computed.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (on_disk.next(), fresh.next()) {
            (Some(a), Some(b)) if a == b => continue,
            (Some(a), Some(b)) => {
                return Some((lineno, format!("checked-in `{a}` vs computed `{b}`")))
            }
            (Some(a), None) => return Some((lineno, format!("extra checked-in line `{a}`"))),
            (None, Some(b)) => return Some((lineno, format!("missing line `{b}`"))),
            (None, None) => return Some((0, "renderings differ only in line endings".into())),
        }
    }
}

/// Self-test: the comparison must reject a deliberately mis-costed copy
/// of the table (first model's peak halved). Appends a diagnostic if the
/// mis-costed fixture slips through.
fn negative_control(table: &[(String, ExpertCost)], diags: &mut Vec<Diagnostic>) {
    let Some((name, cert)) = table.first() else {
        diags.push(Diagnostic {
            path: COST_FILE.into(),
            line: 0,
            rule: "cost-self-test",
            message: "empty certificate table; nothing was certified".into(),
        });
        return;
    };
    let mut bad = cert.clone();
    bad.peak_activation_bytes /= 2;
    let mut tampered = table.to_vec();
    tampered[0] = (name.clone(), bad);
    if first_mismatch(&render(&tampered), &render(table)).is_none() {
        diags.push(Diagnostic {
            path: COST_FILE.into(),
            line: 0,
            rule: "cost-self-test",
            message: format!(
                "mis-costed fixture (halved peak for {name}) not rejected by the \
                 certificate comparison"
            ),
        });
    }
}

/// Runs the pass: certify, self-test, then write `COST.json` (default) or
/// diff against the checked-in file (`check_only`). Returns the number of
/// certified models.
pub fn check(check_only: bool, diags: &mut Vec<Diagnostic>) -> usize {
    let table = certify_grid(diags);
    negative_control(&table, diags);
    let computed = render(&table);
    let path = workspace_root().join(COST_FILE);
    if check_only {
        match std::fs::read_to_string(&path) {
            Ok(checked_in) => {
                if let Some((line, message)) = first_mismatch(&checked_in, &computed) {
                    diags.push(Diagnostic {
                        path: COST_FILE.into(),
                        line,
                        rule: "cost-drift",
                        message: format!(
                            "{message}; model resource envelope changed — review and \
                             refresh with `cargo xtask cost`"
                        ),
                    });
                }
            }
            Err(e) => diags.push(Diagnostic {
                path: COST_FILE.into(),
                line: 0,
                rule: "cost-drift",
                message: format!("cannot read checked-in certificate: {e}"),
            }),
        }
    } else if let Err(e) = std::fs::write(&path, &computed) {
        diags.push(Diagnostic {
            path: COST_FILE.into(),
            line: 0,
            rule: "cost-drift",
            message: format!("cannot write certificate: {e}"),
        });
    }
    table.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_certifies_cleanly_and_renders_byte_stable() {
        let mut diags = Vec::new();
        let table = certify_grid(&mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(table.len(), 6);
        let names: Vec<&str> = table.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["MLP-2", "MLP-4", "MLP-8", "SS-8", "SS-14", "SS-26"]);
        let once = render(&table);
        let twice = render(&certify_grid(&mut Vec::new()));
        assert_eq!(once, twice, "rendering must be byte-stable");
        assert!(once.ends_with('\n'));
    }

    #[test]
    fn certificates_are_physically_plausible() {
        let table = certify_grid(&mut Vec::new());
        for (name, cert) in &table {
            assert!(cert.flops > 0, "{name}");
            assert!(cert.param_bytes > 0, "{name}");
            assert!(
                cert.peak_activation_bytes >= cert.input_bytes + cert.output_bytes,
                "{name}: input and first activation coexist"
            );
            assert!(
                cert.wire_input_bytes > cert.input_bytes,
                "{name}: framing adds overhead"
            );
        }
        // Deeper models in a family cost strictly more parameters.
        let param = |n: &str| {
            table
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, c)| c.param_bytes)
                .unwrap_or(0)
        };
        assert!(param("MLP-2") < param("MLP-4") && param("MLP-4") < param("MLP-8"));
        assert!(param("SS-8") < param("SS-14") && param("SS-14") < param("SS-26"));
    }

    #[test]
    fn mis_costed_fixture_is_rejected() {
        let table = certify_grid(&mut Vec::new());
        let mut diags = Vec::new();
        negative_control(&table, &mut diags);
        assert!(
            diags.is_empty(),
            "control must pass on honest data: {diags:?}"
        );
        // And the comparison itself sees the tampering.
        let mut bad = table.clone();
        bad[2].1.flops += 1;
        let hit = first_mismatch(&render(&bad), &render(&table));
        assert!(hit.is_some(), "tampered flops must surface as a diff");
    }

    #[test]
    fn first_mismatch_localizes_the_divergence() {
        assert_eq!(first_mismatch("a\nb\n", "a\nb\n"), None);
        let (line, msg) = first_mismatch("a\nx\n", "a\ny\n").unwrap();
        assert_eq!(line, 2);
        assert!(msg.contains('x') && msg.contains('y'), "{msg}");
        let (line, _) = first_mismatch("a\n", "a\nb\n").unwrap();
        assert_eq!(line, 2);
    }
}
