//! Labeled image datasets and mini-batch iteration.

use rand::seq::SliceRandom;
use rand::Rng;
use teamnet_tensor::Tensor;

/// An in-memory labeled image dataset (`[n, c, h, w]` images, one integer
/// label per image).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    class_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset from images and labels.
    ///
    /// # Panics
    ///
    /// Panics unless `images` is rank-4, the label count matches the image
    /// count, and every label indexes into `class_names`.
    pub fn new(images: Tensor, labels: Vec<usize>, class_names: Vec<String>) -> Self {
        assert_eq!(images.rank(), 4, "images must be [n, c, h, w]");
        assert_eq!(images.dims()[0], labels.len(), "image/label count mismatch");
        assert!(
            labels.iter().all(|&l| l < class_names.len()),
            "label out of range for {} classes",
            class_names.len()
        );
        Dataset {
            images,
            labels,
            class_names,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All images, `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels, aligned with the image rows.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Human-readable class names; `class_names()[label]` names a label.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Image dimensions without the batch axis: `[c, h, w]`.
    pub fn image_dims(&self) -> Vec<usize> {
        self.images.dims()[1..].to_vec()
    }

    /// The examples at `indices`, in order, as a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let images = self.images.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            images,
            labels,
            class_names: self.class_names.clone(),
        }
    }

    /// Splits off the first `n_first` examples: `(first, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_first > self.len()`.
    pub fn split(&self, n_first: usize) -> (Dataset, Dataset) {
        assert!(
            n_first <= self.len(),
            "cannot split {n_first} from {}",
            self.len()
        );
        let first: Vec<usize> = (0..n_first).collect();
        let rest: Vec<usize> = (n_first..self.len()).collect();
        (self.subset(&first), self.subset(&rest))
    }

    /// A copy with examples in a fresh random order.
    pub fn shuffled(&self, rng: &mut impl Rng) -> Dataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        self.subset(&indices)
    }

    /// Iterates over consecutive mini-batches of up to `batch_size`
    /// examples (the final batch may be smaller). Shuffle first with
    /// [`Dataset::shuffled`] when randomized epochs are wanted.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        Batches {
            dataset: self,
            batch_size,
            cursor: 0,
        }
    }

    /// Per-class example counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes()];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

/// One mini-batch: images `[b, c, h, w]` plus aligned labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Batch images, `[b, c, h, w]`.
    pub images: Tensor,
    /// Labels aligned with the image rows.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Iterator over the mini-batches of a [`Dataset`]; created by
/// [`Dataset::batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.dataset.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.dataset.len());
        let indices: Vec<usize> = (self.cursor..end).collect();
        self.cursor = end;
        Some(Batch {
            images: self.dataset.images.select_rows(&indices),
            labels: indices.iter().map(|&i| self.dataset.labels[i]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::arange(n * 4).into_reshaped([n, 1, 2, 2]).unwrap();
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(images, labels, vec!["a".into(), "b".into()])
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(6);
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.image_dims(), vec![1, 2, 2]);
        assert_eq!(d.class_histogram(), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_label_count_mismatch() {
        Dataset::new(Tensor::zeros([2, 1, 1, 1]), vec![0], vec!["a".into()]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        Dataset::new(Tensor::zeros([1, 1, 1, 1]), vec![5], vec!["a".into()]);
    }

    #[test]
    fn subset_and_split() {
        let d = toy(6);
        let s = d.subset(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(
            s.images().select_rows(&[0]).data(),
            d.images().select_rows(&[5]).data()
        );

        let (train, test) = d.split(4);
        assert_eq!(train.len(), 4);
        assert_eq!(test.len(), 2);
        assert_eq!(test.labels(), &[0, 1]);
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let d = toy(8);
        let mut rng = StdRng::seed_from_u64(1);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        // Every (image row, label) pair must still correspond: our toy data
        // encodes the original index in the first pixel (index*4).
        for i in 0..s.len() {
            let orig = (s.images().select_rows(&[i]).data()[0] / 4.0) as usize;
            assert_eq!(s.labels()[i], d.labels()[orig]);
        }
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy(7);
        let batches: Vec<Batch> = d.batches(3).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[2].len(), 1);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 7);
        assert_eq!(batches[1].images.dims(), &[3, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn batches_reject_zero_size() {
        let d = toy(2);
        let _ = d.batches(0);
    }
}
