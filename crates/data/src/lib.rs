//! # teamnet-data
//!
//! Datasets for the TeamNet (ICDCS 2019) reproduction.
//!
//! The paper evaluates on MNIST and CIFAR-10. Neither can ship inside this
//! repository, so the crate provides:
//!
//! * [`synth_digits`] — a 28×28 grayscale ten-class digit dataset rendered
//!   from seven-segment stroke prototypes with noise and deformation
//!   (drop-in MNIST substitute);
//! * [`synth_objects`] — a 32×32 RGB ten-class dataset with CIFAR-10's
//!   class names and, importantly, its machine/animal super-category
//!   structure (drop-in CIFAR-10 substitute that preserves the
//!   specialization effect of the paper's Figure 9);
//! * [`mnist_from_dir`] — an IDX-format loader for the real MNIST files
//!   when they are available on disk.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use teamnet_data::synth_digits;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = synth_digits(100, &mut rng);
//! let (train, test) = data.split(80);
//! for batch in train.batches(16) {
//!     assert!(batch.len() <= 16);
//!     assert_eq!(batch.images.dims()[1..], [1, 28, 28]);
//! }
//! assert_eq!(test.len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod dataset;
mod digits;
mod idx;
mod objects;

pub use augment::augment_batch;
pub use dataset::{Batch, Batches, Dataset};
pub use digits::{synth_digits, DIGIT_HW};
pub use idx::{mnist_from_dir, parse_idx_images, parse_idx_labels, IdxError};
pub use objects::{superclass, synth_objects, SuperClass, OBJECT_CLASSES, OBJECT_HW};
