//! Synthetic handwritten-digit dataset ("synth-digits").
//!
//! The paper evaluates on MNIST, which is not redistributable inside this
//! repository, so this module generates a drop-in substitute: 28×28
//! grayscale images of the ten digits rendered from seven-segment-style
//! stroke prototypes with random translation, per-segment amplitude jitter,
//! stroke-thickness variation and pixel noise. The resulting classes are
//! exactly what the TeamNet training algorithm consumes — ten visually
//! clustered classes of varying mutual similarity (e.g. 8 vs 9 vs 3 share
//! segments, just as handwritten digits share strokes).
//!
//! When the real MNIST IDX files are available, [`crate::mnist_from_dir`]
//! loads them instead; every experiment accepts either source.

use crate::dataset::Dataset;
use rand::Rng;
use teamnet_tensor::Tensor;

/// Image side length (matches MNIST).
pub const DIGIT_HW: usize = 28;

/// The seven segments of a digit display, as line endpoints on a unit
/// square (x right, y down): `(x0, y0, x1, y1)`.
const SEGMENTS: [(f32, f32, f32, f32); 7] = [
    (0.2, 0.15, 0.8, 0.15), // 0: top
    (0.8, 0.15, 0.8, 0.50), // 1: top-right
    (0.8, 0.50, 0.8, 0.85), // 2: bottom-right
    (0.2, 0.85, 0.8, 0.85), // 3: bottom
    (0.2, 0.50, 0.2, 0.85), // 4: bottom-left
    (0.2, 0.15, 0.2, 0.50), // 5: top-left
    (0.2, 0.50, 0.8, 0.50), // 6: middle
];

/// Segment mask per digit (standard seven-segment encoding).
const DIGIT_SEGMENTS: [u8; 10] = [
    0b0111111, // 0
    0b0000110, // 1
    0b1011011, // 2
    0b1001111, // 3
    0b1100110, // 4
    0b1101101, // 5
    0b1111101, // 6
    0b0000111, // 7
    0b1111111, // 8
    0b1101111, // 9
];

/// Distance from point `(px, py)` to segment `(x0, y0)-(x1, y1)`.
fn segment_distance(px: f32, py: f32, seg: (f32, f32, f32, f32)) -> f32 {
    let (x0, y0, x1, y1) = seg;
    let (dx, dy) = (x1 - x0, y1 - y0);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq == 0.0 {
        0.0
    } else {
        (((px - x0) * dx + (py - y0) * dy) / len_sq).clamp(0.0, 1.0)
    };
    let (cx, cy) = (x0 + t * dx, y0 + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Renders one digit image into `out` (length `DIGIT_HW²`).
fn render_digit(out: &mut [f32], digit: usize, rng: &mut impl Rng) {
    debug_assert_eq!(out.len(), DIGIT_HW * DIGIT_HW);
    let mask = DIGIT_SEGMENTS[digit];
    // Random global transform: translate up to ±3 px, small scale jitter.
    let (tx, ty): (f32, f32) = (rng.gen_range(-0.06..0.06), rng.gen_range(-0.06..0.06));
    let scale: f32 = rng.gen_range(0.90..1.08);
    let thickness: f32 = rng.gen_range(0.045..0.085);
    // Per-segment brightness jitter mimics stroke pressure variation.
    let amps: Vec<f32> = (0..7).map(|_| rng.gen_range(0.75..1.0)).collect();

    for y in 0..DIGIT_HW {
        for x in 0..DIGIT_HW {
            // Map pixel into prototype coordinates (inverse transform).
            let px = ((x as f32 + 0.5) / DIGIT_HW as f32 - 0.5 - tx) / scale + 0.5;
            let py = ((y as f32 + 0.5) / DIGIT_HW as f32 - 0.5 - ty) / scale + 0.5;
            let mut v: f32 = 0.0;
            for (s, &seg) in SEGMENTS.iter().enumerate() {
                if mask & (1 << s) == 0 {
                    continue;
                }
                let d = segment_distance(px, py, seg);
                // Soft stroke falloff.
                let ink = amps[s] * (1.0 - (d / thickness)).clamp(0.0, 1.0);
                v = v.max(ink);
            }
            // Pixel noise.
            let noise: f32 = rng.gen_range(-0.06..0.06);
            out[y * DIGIT_HW + x] = (v + noise).clamp(0.0, 1.0);
        }
    }
}

/// Generates `n` synthetic digit images with (approximately) balanced
/// classes, in random class order.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn synth_digits(n: usize, rng: &mut impl Rng) -> Dataset {
    assert!(n > 0, "need at least one example");
    let mut images = vec![0.0f32; n * DIGIT_HW * DIGIT_HW];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        // Balanced base assignment, randomized order via the shuffle below.
        let digit = i % 10;
        render_digit(
            &mut images[i * DIGIT_HW * DIGIT_HW..(i + 1) * DIGIT_HW * DIGIT_HW],
            digit,
            rng,
        );
        labels.push(digit);
    }
    // `images` was sized to exactly n * DIGIT_HW² elements above. lint: allow(no-expect)
    let images = Tensor::from_vec(images, [n, 1, DIGIT_HW, DIGIT_HW]).expect("volume matches");
    let names = (0..10).map(|d| d.to_string()).collect();
    Dataset::new(images, labels, names).shuffled(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_balanced_valid_images() {
        let mut rng = StdRng::seed_from_u64(50);
        let d = synth_digits(200, &mut rng);
        assert_eq!(d.len(), 200);
        assert_eq!(d.image_dims(), vec![1, DIGIT_HW, DIGIT_HW]);
        assert_eq!(d.num_classes(), 10);
        // Balanced: exactly 20 of each digit.
        assert!(d.class_histogram().iter().all(|&c| c == 20));
        // Pixels in [0, 1].
        assert!(d.images().min() >= 0.0);
        assert!(d.images().max() <= 1.0);
    }

    #[test]
    fn images_have_ink() {
        let mut rng = StdRng::seed_from_u64(51);
        let d = synth_digits(20, &mut rng);
        // Every image should have a meaningful bright region.
        for i in 0..d.len() {
            let img = d.images().select_rows(&[i]);
            assert!(img.max() > 0.5, "image {i} has no ink");
            assert!(img.mean() < 0.5, "image {i} is mostly ink");
        }
    }

    #[test]
    fn classes_are_distinguishable_by_template_matching() {
        // Nearest-mean classification on raw pixels should beat chance by a
        // wide margin, showing the classes form real clusters.
        let mut rng = StdRng::seed_from_u64(52);
        let train = synth_digits(500, &mut rng);
        let test = synth_digits(100, &mut rng);

        let hw = DIGIT_HW * DIGIT_HW;
        let mut means = vec![vec![0.0f32; hw]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.len() {
            let label = train.labels()[i];
            counts[label] += 1;
            for (m, &p) in means[label]
                .iter_mut()
                .zip(train.images().select_rows(&[i]).data())
            {
                *m += p;
            }
        }
        for (mean, &c) in means.iter_mut().zip(&counts) {
            for m in mean.iter_mut() {
                *m /= c as f32;
            }
        }

        let mut correct = 0;
        for i in 0..test.len() {
            let img = test.images().select_rows(&[i]);
            let mut best = (f32::INFINITY, 0usize);
            for (cls, mean) in means.iter().enumerate() {
                let dist: f32 = img
                    .data()
                    .iter()
                    .zip(mean)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                if dist < best.0 {
                    best = (dist, cls);
                }
            }
            if best.1 == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.6, "template-matching accuracy only {acc}");
    }

    #[test]
    fn different_seeds_differ_same_seed_repeats() {
        let a = synth_digits(10, &mut StdRng::seed_from_u64(1));
        let b = synth_digits(10, &mut StdRng::seed_from_u64(1));
        let c = synth_digits(10, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn segment_distance_basics() {
        // Point on the segment → 0; point one unit right of a unit segment.
        assert!(segment_distance(0.5, 0.0, (0.0, 0.0, 1.0, 0.0)) < 1e-6);
        assert!((segment_distance(2.0, 0.0, (0.0, 0.0, 1.0, 0.0)) - 1.0).abs() < 1e-6);
        assert!((segment_distance(0.5, 0.5, (0.0, 0.0, 1.0, 0.0)) - 0.5).abs() < 1e-6);
    }
}
