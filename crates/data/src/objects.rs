//! Synthetic object-classification dataset ("synth-objects").
//!
//! Stands in for CIFAR-10. The ten classes keep CIFAR-10's names and order,
//! and — crucially for reproducing the paper's Figure 9 — its *semantic
//! structure*: four "machine" classes (airplane, automobile, ship, truck)
//! and six "animal" classes share super-category-level visual features,
//! while each class adds its own signature. Machines are rendered as
//! angular, straight-edged shapes over smooth backgrounds with horizontal
//! streak textures; animals as organic multi-blob shapes over mottled
//! backgrounds. Class identity comes from hue, shape count/size and texture
//! frequency.
//!
//! TeamNet's experts specialize on whatever clusters exist in the data;
//! giving the synthetic classes a two-level hierarchy lets the
//! specialization experiment show the same "experts split along
//! super-categories" effect the paper reports.

use crate::dataset::Dataset;
use rand::Rng;
use serde::{Deserialize, Serialize};
use teamnet_tensor::Tensor;

/// Image side length (matches CIFAR-10).
pub const OBJECT_HW: usize = 32;

/// CIFAR-10 class names in canonical order.
pub const OBJECT_CLASSES: [&str; 10] = [
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
];

/// The two super-categories the paper's Figure 9 groups classes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuperClass {
    /// airplane, automobile, ship, truck.
    Machine,
    /// bird, cat, deer, dog, frog, horse.
    Animal,
}

/// Super-category of a CIFAR-10 class index.
///
/// # Panics
///
/// Panics if `label >= 10`.
pub fn superclass(label: usize) -> SuperClass {
    match label {
        0 | 1 | 8 | 9 => SuperClass::Machine,
        2..=7 => SuperClass::Animal,
        // Documented `# Panics` contract: labels come from the dataset
        // generator itself, never from the wire. lint: allow(no-panic)
        _ => panic!("label {label} out of range for 10 classes"),
    }
}

/// Per-class rendering parameters: (hue RGB, texture frequency, blob count).
fn class_params(label: usize) -> ([f32; 3], f32, usize) {
    match label {
        // Machines: metallic hues, low blob counts (one angular body).
        0 => ([0.55, 0.65, 0.80], 2.0, 1), // airplane: sky blue-gray
        1 => ([0.75, 0.25, 0.25], 4.0, 1), // automobile: red
        8 => ([0.30, 0.45, 0.70], 3.0, 1), // ship: navy
        9 => ([0.65, 0.60, 0.30], 5.0, 1), // truck: khaki
        // Animals: organic hues, several blobs (body + head + limbs).
        2 => ([0.70, 0.55, 0.30], 6.0, 2), // bird
        3 => ([0.55, 0.45, 0.35], 7.0, 3), // cat
        4 => ([0.45, 0.40, 0.25], 5.5, 3), // deer
        5 => ([0.50, 0.35, 0.25], 6.5, 3), // dog
        6 => ([0.30, 0.55, 0.30], 8.0, 2), // frog
        7 => ([0.40, 0.30, 0.20], 4.5, 4), // horse
        // Documented `# Panics` contract: labels come from the dataset
        // generator itself, never from the wire. lint: allow(no-panic)
        _ => panic!("label {label} out of range for 10 classes"),
    }
}

/// Renders one 3×32×32 image (channel-planar) into `out`.
fn render_object(out: &mut [f32], label: usize, rng: &mut impl Rng) {
    let hw = OBJECT_HW;
    debug_assert_eq!(out.len(), 3 * hw * hw);
    let (hue, freq, blobs) = class_params(label);
    let sup = superclass(label);

    // Super-category background: machines smooth/cool, animals mottled/warm.
    let (bg, bg_noise) = match sup {
        SuperClass::Machine => ([0.62f32, 0.66, 0.72], 0.03f32),
        SuperClass::Animal => ([0.52f32, 0.48, 0.28], 0.10f32),
    };

    // Shape placement.
    let cx: f32 = rng.gen_range(0.35..0.65);
    let cy: f32 = rng.gen_range(0.40..0.65);
    let size: f32 = rng.gen_range(0.18..0.30);
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let brightness: f32 = rng.gen_range(0.85..1.1);

    // Secondary blob offsets for animals (head/limbs).
    let offsets: Vec<(f32, f32, f32)> = (0..blobs)
        .map(|b| {
            if b == 0 {
                (0.0, 0.0, 1.0)
            } else {
                (
                    rng.gen_range(-0.25..0.25),
                    rng.gen_range(-0.25..0.15),
                    rng.gen_range(0.35..0.6),
                )
            }
        })
        .collect();

    for y in 0..hw {
        for x in 0..hw {
            let fx = (x as f32 + 0.5) / hw as f32;
            let fy = (y as f32 + 0.5) / hw as f32;

            // Coverage: 1 inside the object, 0 outside.
            let mut cover = 0.0f32;
            for &(ox, oy, s) in &offsets {
                let (dx, dy) = (fx - cx - ox, fy - cy - oy);
                let r = size * s;
                let inside = match sup {
                    // Machines: axis-aligned rectangles (angular silhouette),
                    // wider than tall.
                    SuperClass::Machine => {
                        let within = dx.abs() < r * 1.6 && dy.abs() < r * 0.7;
                        if within {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    // Animals: soft ellipses.
                    SuperClass::Animal => {
                        let d = (dx / (r * 1.1)).powi(2) + (dy / r).powi(2);
                        (1.0 - d).clamp(0.0, 1.0)
                    }
                };
                cover = cover.max(inside);
            }

            // Texture: machines get horizontal streaks, animals isotropic
            // speckle, both at a class-specific frequency.
            let tex = match sup {
                SuperClass::Machine => 0.10 * (freq * std::f32::consts::TAU * fy + phase).sin(),
                SuperClass::Animal => {
                    0.10 * (freq * std::f32::consts::TAU * (fx + fy) + phase).sin()
                        * (freq * std::f32::consts::TAU * (fx - fy)).cos()
                }
            };

            for c in 0..3 {
                let obj = hue[c] * brightness + tex;
                let back = bg[c] + rng.gen_range(-bg_noise..bg_noise);
                let v = cover * obj + (1.0 - cover) * back + rng.gen_range(-0.03..0.03f32);
                out[c * hw * hw + y * hw + x] = v.clamp(0.0, 1.0);
            }
        }
    }
}

/// Generates `n` synthetic object images with (approximately) balanced
/// classes, in random order.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn synth_objects(n: usize, rng: &mut impl Rng) -> Dataset {
    assert!(n > 0, "need at least one example");
    let plane = 3 * OBJECT_HW * OBJECT_HW;
    let mut images = vec![0.0f32; n * plane];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 10;
        render_object(&mut images[i * plane..(i + 1) * plane], label, rng);
        labels.push(label);
    }
    // images was sized to exactly n * plane elements above. lint: allow(no-expect)
    let images = Tensor::from_vec(images, [n, 3, OBJECT_HW, OBJECT_HW]).expect("volume matches");
    let names = OBJECT_CLASSES.iter().map(|s| s.to_string()).collect();
    Dataset::new(images, labels, names).shuffled(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn superclass_partition_matches_paper() {
        let machines: Vec<usize> = (0..10)
            .filter(|&l| superclass(l) == SuperClass::Machine)
            .collect();
        assert_eq!(machines, vec![0, 1, 8, 9]);
        assert_eq!(
            (0..10)
                .filter(|&l| superclass(l) == SuperClass::Animal)
                .count(),
            6
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn superclass_rejects_bad_label() {
        superclass(10);
    }

    #[test]
    fn generates_valid_rgb_images() {
        let mut rng = StdRng::seed_from_u64(60);
        let d = synth_objects(100, &mut rng);
        assert_eq!(d.len(), 100);
        assert_eq!(d.image_dims(), vec![3, OBJECT_HW, OBJECT_HW]);
        assert_eq!(d.num_classes(), 10);
        assert_eq!(d.class_names()[0], "airplane");
        assert!(d.images().min() >= 0.0 && d.images().max() <= 1.0);
        assert!(d.class_histogram().iter().all(|&c| c == 10));
    }

    #[test]
    fn superclasses_are_visually_separable() {
        // Mean green-channel energy differs sharply between the machine and
        // animal backgrounds; a trivial threshold should separate them.
        let mut rng = StdRng::seed_from_u64(61);
        let d = synth_objects(200, &mut rng);
        let hw2 = OBJECT_HW * OBJECT_HW;
        let mut correct = 0;
        for i in 0..d.len() {
            let img = d.images().select_rows(&[i]);
            let red: f32 = img.data()[0..hw2].iter().sum::<f32>() / hw2 as f32;
            let blue: f32 = img.data()[2 * hw2..3 * hw2].iter().sum::<f32>() / hw2 as f32;
            let guess = if blue > red {
                SuperClass::Machine
            } else {
                SuperClass::Animal
            };
            if guess == superclass(d.labels()[i]) {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.8, "superclass separability only {acc}");
    }

    #[test]
    fn classes_within_supercategory_differ() {
        // Per-class mean images should be mutually distinguishable: the
        // nearest-mean rule on a held-out sample should beat chance well.
        let mut rng = StdRng::seed_from_u64(62);
        let train = synth_objects(600, &mut rng);
        let test = synth_objects(100, &mut rng);
        let plane = 3 * OBJECT_HW * OBJECT_HW;
        let mut means = vec![vec![0.0f32; plane]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.len() {
            let l = train.labels()[i];
            counts[l] += 1;
            for (m, &p) in means[l]
                .iter_mut()
                .zip(train.images().select_rows(&[i]).data())
            {
                *m += p;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let img = test.images().select_rows(&[i]);
            let mut best = (f32::INFINITY, 0usize);
            for (cls, mean) in means.iter().enumerate() {
                let dist: f32 = img
                    .data()
                    .iter()
                    .zip(mean)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                if dist < best.0 {
                    best = (dist, cls);
                }
            }
            if best.1 == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(
            acc > 0.5,
            "nearest-mean accuracy only {acc} (chance is 0.1)"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = synth_objects(10, &mut StdRng::seed_from_u64(7));
        let b = synth_objects(10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
