//! Training-time data augmentation.
//!
//! The standard light augmentations for small-image classification
//! (random horizontal flip plus a few pixels of translation) — what every
//! CIFAR-10 training pipeline, including Shake-Shake's, applies. Operates
//! on whole `[n, c, h, w]` batches so the training loop can augment lazily
//! per epoch.

use rand::Rng;
use teamnet_tensor::Tensor;

/// Randomly flips each image horizontally (p = ½) and translates it by up
/// to `max_shift` pixels in each direction (zero padding), independently
/// per image.
///
/// # Panics
///
/// Panics if `images` is not rank-4.
pub fn augment_batch(images: &Tensor, max_shift: usize, rng: &mut impl Rng) -> Tensor {
    assert_eq!(images.rank(), 4, "augment_batch expects [n, c, h, w]");
    let (n, c, h, w) = (
        images.dims()[0],
        images.dims()[1],
        images.dims()[2],
        images.dims()[3],
    );
    let mut out = Tensor::zeros([n, c, h, w]);
    let shift_range = max_shift as isize;
    for s in 0..n {
        let flip = rng.gen_bool(0.5);
        let dy = if shift_range > 0 {
            rng.gen_range(-shift_range..=shift_range)
        } else {
            0
        };
        let dx = if shift_range > 0 {
            rng.gen_range(-shift_range..=shift_range)
        } else {
            0
        };
        for ch in 0..c {
            let src_base = (s * c + ch) * h * w;
            let dst_base = src_base;
            for y in 0..h as isize {
                let sy = y - dy;
                if sy < 0 || sy >= h as isize {
                    continue;
                }
                for x in 0..w as isize {
                    let sx_pre = x - dx;
                    if sx_pre < 0 || sx_pre >= w as isize {
                        continue;
                    }
                    let sx = if flip {
                        w as isize - 1 - sx_pre
                    } else {
                        sx_pre
                    };
                    let v = images.data()[src_base + (sy as usize) * w + sx as usize];
                    out.data_mut()[dst_base + (y as usize) * w + x as usize] = v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ramp(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::arange(n * c * h * w)
            .into_reshaped([n, c, h, w])
            .unwrap()
    }

    #[test]
    fn zero_shift_is_flip_or_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = ramp(4, 1, 4, 4);
        let aug = augment_batch(&x, 0, &mut rng);
        // Each image is either identical or exactly mirrored.
        for s in 0..4 {
            let orig = x.select_rows(&[s]);
            let got = aug.select_rows(&[s]);
            let mut mirrored = orig.clone();
            for y in 0..4 {
                for xx in 0..4 {
                    mirrored.set(&[0, 0, y, xx], orig.at(&[0, 0, y, 3 - xx]));
                }
            }
            assert!(
                got == orig || got == mirrored,
                "image {s} is neither identity nor mirror"
            );
        }
    }

    #[test]
    fn shifting_preserves_mass_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::ones([8, 3, 8, 8]);
        let aug = augment_batch(&x, 2, &mut rng);
        // Total intensity can only shrink (pixels shifted out, zeros in).
        assert!(aug.sum() <= x.sum());
        // But most of it survives (≤ 2px shifts on 8px images).
        assert!(aug.sum() > x.sum() * 0.5);
        assert_eq!(aug.dims(), x.dims());
        assert!(aug.min() >= 0.0);
    }

    #[test]
    fn augmentation_is_stochastic() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = ramp(1, 1, 6, 6);
        let a = augment_batch(&x, 2, &mut rng);
        let b = augment_batch(&x, 2, &mut rng);
        // Overwhelmingly likely to differ.
        assert_ne!(a, b);
    }

    #[test]
    fn channels_move_together() {
        // The same geometric transform must apply to every channel of an
        // image (no channel misalignment).
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Tensor::zeros([1, 2, 5, 5]);
        x.set(&[0, 0, 2, 1], 1.0);
        x.set(&[0, 1, 2, 1], 1.0);
        let aug = augment_batch(&x, 2, &mut rng);
        // Wherever the pixel landed, it landed in both channels.
        let c0: Vec<usize> = (0..25).filter(|&i| aug.data()[i] > 0.5).collect();
        let c1: Vec<usize> = (0..25).filter(|&i| aug.data()[25 + i] > 0.5).collect();
        assert_eq!(c0, c1);
    }
}
