//! Loader for the IDX binary format used by the real MNIST distribution.
//!
//! When the genuine dataset is present on disk (e.g. downloaded separately
//! and pointed at via the `MNIST_DIR` environment variable), every
//! experiment can run on it instead of the synthetic substitute — the rest
//! of the pipeline is source-agnostic.

use crate::dataset::Dataset;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Read;
use std::path::Path;
use teamnet_tensor::Tensor;

/// Error loading an IDX file.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not valid IDX data.
    Format(String),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "i/o error reading idx file: {e}"),
            IdxError::Format(msg) => write!(f, "malformed idx data: {msg}"),
        }
    }
}

impl Error for IdxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            IdxError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IdxError {
    fn from(e: std::io::Error) -> Self {
        IdxError::Io(e)
    }
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32, IdxError> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| IdxError::Format(format!("truncated header at offset {at}")))
}

/// Parses an `idx3-ubyte` image file into `(images [n, 1, h, w] scaled to
/// [0, 1], h, w)`.
///
/// # Errors
///
/// Returns [`IdxError::Format`] for wrong magic numbers or truncated data.
pub fn parse_idx_images(bytes: &[u8]) -> Result<Tensor, IdxError> {
    let magic = read_u32(bytes, 0)?;
    if magic != 0x0000_0803 {
        return Err(IdxError::Format(format!("bad image magic {magic:#010x}")));
    }
    let n = read_u32(bytes, 4)? as usize;
    let h = read_u32(bytes, 8)? as usize;
    let w = read_u32(bytes, 12)? as usize;
    let expected = 16 + n * h * w;
    if bytes.len() < expected {
        return Err(IdxError::Format(format!(
            "expected {expected} bytes for {n} {h}x{w} images, got {}",
            bytes.len()
        )));
    }
    let data: Vec<f32> = bytes[16..expected]
        .iter()
        .map(|&b| b as f32 / 255.0)
        .collect();
    Tensor::from_vec(data, [n, 1, h, w]).map_err(|e| IdxError::Format(format!("shape error: {e}")))
}

/// Parses an `idx1-ubyte` label file into a label vector.
///
/// # Errors
///
/// Returns [`IdxError::Format`] for wrong magic numbers or truncated data.
pub fn parse_idx_labels(bytes: &[u8]) -> Result<Vec<usize>, IdxError> {
    let magic = read_u32(bytes, 0)?;
    if magic != 0x0000_0801 {
        return Err(IdxError::Format(format!("bad label magic {magic:#010x}")));
    }
    let n = read_u32(bytes, 4)? as usize;
    let expected = 8 + n;
    if bytes.len() < expected {
        return Err(IdxError::Format(format!(
            "expected {expected} bytes for {n} labels, got {}",
            bytes.len()
        )));
    }
    Ok(bytes[8..expected].iter().map(|&b| b as usize).collect())
}

fn read_file(path: &Path) -> Result<Vec<u8>, IdxError> {
    let mut buf = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Loads the MNIST training split (`train-images-idx3-ubyte` +
/// `train-labels-idx1-ubyte`) from a directory.
///
/// # Errors
///
/// Returns [`IdxError`] if the files are missing, unreadable, malformed,
/// or their example counts disagree.
pub fn mnist_from_dir(dir: impl AsRef<Path>) -> Result<Dataset, IdxError> {
    let dir = dir.as_ref();
    let images = parse_idx_images(&read_file(&dir.join("train-images-idx3-ubyte"))?)?;
    let labels = parse_idx_labels(&read_file(&dir.join("train-labels-idx1-ubyte"))?)?;
    if images.dims()[0] != labels.len() {
        return Err(IdxError::Format(format!(
            "{} images but {} labels",
            images.dims()[0],
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l > 9) {
        return Err(IdxError::Format(format!(
            "label {bad} out of range for digits"
        )));
    }
    let names = (0..10).map(|d| d.to_string()).collect();
    Ok(Dataset::new(images, labels, names))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_bytes(n: usize, h: usize, w: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        bytes.extend_from_slice(&(n as u32).to_be_bytes());
        bytes.extend_from_slice(&(h as u32).to_be_bytes());
        bytes.extend_from_slice(&(w as u32).to_be_bytes());
        bytes.extend((0..n * h * w).map(|i| (i % 256) as u8));
        bytes
    }

    fn label_bytes(labels: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        bytes.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        bytes.extend_from_slice(labels);
        bytes
    }

    #[test]
    fn parses_valid_images() {
        let t = parse_idx_images(&image_bytes(2, 3, 4)).unwrap();
        assert_eq!(t.dims(), &[2, 1, 3, 4]);
        assert_eq!(t.at(&[0, 0, 0, 0]), 0.0);
        assert!((t.at(&[0, 0, 0, 1]) - 1.0 / 255.0).abs() < 1e-7);
        assert!(t.max() <= 1.0);
    }

    #[test]
    fn parses_valid_labels() {
        let labels = parse_idx_labels(&label_bytes(&[3, 1, 4, 1, 5])).unwrap();
        assert_eq!(labels, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut bytes = image_bytes(1, 2, 2);
        bytes[3] = 0x01; // label magic in an image file
        assert!(matches!(parse_idx_images(&bytes), Err(IdxError::Format(_))));
        let mut lbytes = label_bytes(&[1]);
        lbytes[3] = 0x03;
        assert!(matches!(
            parse_idx_labels(&lbytes),
            Err(IdxError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let mut bytes = image_bytes(2, 3, 4);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(parse_idx_images(&bytes), Err(IdxError::Format(_))));
        assert!(matches!(
            parse_idx_images(&bytes[..10]),
            Err(IdxError::Format(_))
        ));
        let lbytes = label_bytes(&[1, 2, 3]);
        assert!(matches!(
            parse_idx_labels(&lbytes[..9]),
            Err(IdxError::Format(_))
        ));
    }

    #[test]
    fn loads_dataset_from_dir() {
        let dir = std::env::temp_dir().join(format!("teamnet-idx-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("train-images-idx3-ubyte"), image_bytes(3, 28, 28)).unwrap();
        fs::write(dir.join("train-labels-idx1-ubyte"), label_bytes(&[7, 0, 9])).unwrap();
        let d = mnist_from_dir(&dir).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.labels(), &[7, 0, 9]);
        assert_eq!(d.image_dims(), vec![1, 28, 28]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_load_rejects_count_mismatch() {
        let dir = std::env::temp_dir().join(format!("teamnet-idx-test2-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("train-images-idx3-ubyte"), image_bytes(3, 2, 2)).unwrap();
        fs::write(dir.join("train-labels-idx1-ubyte"), label_bytes(&[1, 2])).unwrap();
        assert!(matches!(mnist_from_dir(&dir), Err(IdxError::Format(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_io_error() {
        assert!(matches!(
            mnist_from_dir("/nonexistent/definitely/missing"),
            Err(IdxError::Io(_))
        ));
    }
}
