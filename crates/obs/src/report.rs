//! Trace-file analysis: the backend of `cargo xtask trace-report`.
//!
//! Ingests span JSONL (the [`crate::Tracer`] event format), folds every
//! `exit` event's duration into a per-span-name [`Histogram`], and renders
//! a count/p50/p99/total latency table. Quantiles come from the log2
//! buckets, so they are upper bounds (honest to within 2x) — the same
//! numbers a [`crate::MetricsSnapshot`] of the run would report.
//!
//! [`Histogram`]: crate::Histogram

use crate::metrics::Histogram;
use serde::{Number, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated latency statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Median duration upper bound, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile duration upper bound, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile duration upper bound, nanoseconds.
    pub p999_ns: u64,
    /// Shortest duration (exact), nanoseconds.
    pub min_ns: u64,
    /// Longest duration (exact), nanoseconds.
    pub max_ns: u64,
    /// Total time spent in this span (sum of durations), nanoseconds.
    pub total_ns: u64,
}

/// The digest of one trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// One row per span name, in name order.
    pub rows: Vec<SpanRow>,
    /// Total events parsed (enter + exit).
    pub events: u64,
}

/// A malformed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending event.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn field_u64(value: &Value, key: &str) -> Option<u64> {
    match value.get(key) {
        Some(Value::Num(Number::PosInt(n))) => Some(*n),
        _ => None,
    }
}

/// Parses trace JSONL and aggregates per-span latency histograms.
///
/// Blank lines are permitted (trailing newline); anything else must be a
/// well-formed event object with an `ev` of `enter`, `exit`, or one of
/// the point kinds (`send`/`recv`/`mark` — counted, not timed), and exits
/// must carry `name` + `dur_ns`.
///
/// # Errors
///
/// [`ParseError`] naming the first offending line.
pub fn analyze(text: &str) -> Result<TraceReport, ParseError> {
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut events = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line).map_err(|e| ParseError {
            line: lineno,
            message: format!("not valid JSON: {e:?}"),
        })?;
        let ev = value.get("ev").and_then(Value::as_str).ok_or(ParseError {
            line: lineno,
            message: "event missing string `ev`".to_string(),
        })?;
        match ev {
            // Point events (cross-node wire edges, flight-recorder marks)
            // carry no duration; they count toward `events` so a report
            // over a send/recv-only trace is still visibly non-empty.
            "enter" | "send" | "recv" | "mark" => events += 1,
            "exit" => {
                events += 1;
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or(ParseError {
                        line: lineno,
                        message: "exit event missing string `name`".to_string(),
                    })?;
                let dur_ns = field_u64(&value, "dur_ns").ok_or(ParseError {
                    line: lineno,
                    message: "exit event missing numeric `dur_ns`".to_string(),
                })?;
                histograms
                    .entry(name.to_string())
                    .or_default()
                    .observe(dur_ns);
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unknown event kind `{other}`"),
                })
            }
        }
    }
    let rows = histograms
        .into_iter()
        .map(|(name, h)| {
            let snap = h.snapshot();
            SpanRow {
                name,
                count: snap.count,
                p50_ns: snap.p50(),
                p99_ns: snap.p99(),
                p999_ns: snap.p999(),
                min_ns: snap.min,
                max_ns: snap.max,
                total_ns: snap.sum,
            }
        })
        .collect();
    Ok(TraceReport { rows, events })
}

/// Renders the per-span table, widest span name first column, one row per
/// span name in name order.
pub fn render_table(report: &TraceReport) -> String {
    let name_width = report
        .rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>8}  {:>14}  {:>14}  {:>14}  {:>14}  {:>14}  {:>16}",
        "span", "count", "p50(ns)<=", "p99(ns)<=", "p999(ns)<=", "min(ns)", "max(ns)", "total(ns)"
    );
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>14}  {:>14}  {:>14}  {:>14}  {:>14}  {:>16}",
            row.name,
            row.count,
            row.p50_ns,
            row.p99_ns,
            row.p999_ns,
            row.min_ns,
            row.max_ns,
            row.total_ns
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"round","t_ns":0,"fields":{}}"#,
        "\n",
        r#"{"seq":1,"ev":"enter","span":2,"parent":1,"name":"send","t_ns":5,"fields":{"peer":1}}"#,
        "\n",
        r#"{"seq":2,"ev":"exit","span":2,"name":"send","t_ns":8,"dur_ns":3}"#,
        "\n",
        r#"{"seq":3,"ev":"exit","span":1,"name":"round","t_ns":10,"dur_ns":10}"#,
        "\n",
    );

    #[test]
    fn analyze_builds_per_span_rows() {
        let report = analyze(SAMPLE).unwrap();
        assert_eq!(report.events, 4);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].name, "round");
        assert_eq!(report.rows[0].count, 1);
        assert_eq!(report.rows[0].total_ns, 10);
        assert_eq!(report.rows[0].p50_ns, 15, "10 lands in bucket 8..=15");
        assert_eq!(report.rows[1].name, "send");
        assert_eq!(report.rows[1].p99_ns, 3);
        assert_eq!(report.rows[1].p999_ns, 3);
        assert_eq!(report.rows[1].min_ns, 3);
        assert_eq!(report.rows[1].max_ns, 3);
        assert_eq!(
            report.rows[0].min_ns, 10,
            "min/max are exact, not bucket bounds"
        );
        assert_eq!(report.rows[0].max_ns, 10);
    }

    #[test]
    fn point_events_are_counted_not_timed() {
        let text = concat!(
            r#"{"seq":0,"ev":"send","span":1,"name":"input","t_ns":0,"fields":{"peer":1,"trace":9,"bytes":64}}"#,
            "\n",
            r#"{"seq":1,"ev":"recv","span":2,"name":"result","t_ns":5,"fields":{"peer":0,"trace":9,"rspan":1,"bytes":32}}"#,
            "\n",
            r#"{"seq":2,"ev":"mark","span":0,"name":"flight.quarantine","t_ns":6,"fields":{"peer":2}}"#,
            "\n",
        );
        let report = analyze(text).unwrap();
        assert_eq!(report.events, 3);
        assert!(report.rows.is_empty(), "no durations, no rows");
    }

    #[test]
    fn analyze_round_trips_a_real_tracer() {
        use crate::trace::{Obs, TraceSink, VecSink};
        use std::sync::Arc;
        use std::time::Duration;
        use teamnet_net::{Clock, ManualClock};

        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let obs = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        for _ in 0..3 {
            let _s = obs.span("step", &[]);
            clock.advance(Duration::from_nanos(40));
        }
        let report = analyze(&sink.to_jsonl()).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].count, 3);
        assert_eq!(report.rows[0].total_ns, 120);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = analyze("{\"ev\":\"enter\"}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);

        let err = analyze("{\"ev\":\"warp\"}\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("warp"), "{err}");

        let err = analyze("{\"ev\":\"exit\",\"name\":\"x\"}\n").unwrap_err();
        assert!(err.message.contains("dur_ns"), "{err}");
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let report = analyze("").unwrap();
        assert!(report.rows.is_empty());
        assert_eq!(report.events, 0);
    }

    #[test]
    fn table_renders_header_and_rows() {
        let table = render_table(&analyze(SAMPLE).unwrap());
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("span"));
        assert!(lines[1].starts_with("round"));
        assert!(lines[2].starts_with("send"));
        assert!(lines[0].contains("p50(ns)<="));
        assert!(lines[0].contains("p999(ns)<="));
        assert!(lines[0].contains("min(ns)"));
        assert!(lines[0].contains("max(ns)"));
    }
}
