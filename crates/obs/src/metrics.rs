//! Named counters, gauges and log2-bucket histograms with byte-stable
//! snapshots.
//!
//! Everything here is integer-only: histogram observations are `u64`
//! (nanoseconds, bytes, counts), bucket bounds are fixed powers of two,
//! and quantiles are reported as bucket upper bounds. No float ever
//! enters the hot path, so two identical seeded runs produce identical
//! snapshots down to the last byte — the same contract
//! `InferenceReport::summary()` established for inference reports.
//!
//! Instruments are cheap handles over atomics: registering returns a
//! clone-able [`Counter`]/[`Gauge`]/histogram `Arc` and takes the registry
//! lock once; incrementing afterwards is a single atomic op.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `2^63..=u64::MAX`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket an observation falls into: bucket 0 holds exactly `0`,
/// bucket `i >= 1` holds `2^(i-1) ..= 2^i - 1` (so 1 → bucket 1, 2..3 →
/// bucket 2, …, `u64::MAX` → bucket 64).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket — what quantiles report. Out-of-range
/// indices saturate to `u64::MAX`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// A monotonically increasing counter handle. Cloning shares the counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that can move both ways (shares,
/// last-known totals). Cloning shares the gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bound log2 histogram over `u64` observations.
///
/// 65 buckets (see [`bucket_index`]), an observation count and a
/// saturating sum, all atomics — `observe` is lock-free and allocation
/// free.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    // Exact extrema (not bucket bounds): min seeds at u64::MAX so the
    // first observation wins; an empty histogram reports min = 0.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum that wraps would render quantile tables
        // nonsensical; pinning at MAX is visibly wrong instead.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some(BucketCount {
                    exp: i as u32,
                    count,
                })
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={}, sum={})",
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed)
        )
    }
}

/// One non-empty histogram bucket: `exp` is the bucket index (upper bound
/// `2^exp - 1`, see [`bucket_upper_bound`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BucketCount {
    /// Bucket index in `0..65`.
    pub exp: u32,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// A frozen [`Histogram`]: counts plus the non-empty buckets, in bucket
/// order. This is the shared timing format between runtime traces and
/// `BENCH_kernels.json` (DESIGN.md §12).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observations.
    pub sum: u64,
    /// Smallest observation (exact, not a bucket bound); 0 when empty.
    pub min: u64,
    /// Largest observation (exact, not a bucket bound); 0 when empty.
    pub max: u64,
    /// Non-empty buckets in ascending `exp` order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing the q-th percentile
    /// observation (`q` in `0..=100`), by cumulative bucket counts. An
    /// empty histogram reports 0. Quantiles from log2 buckets are upper
    /// bounds, not exact order statistics — honest to within 2x.
    pub fn quantile(&self, q: u32) -> u64 {
        self.quantile_permille(q.min(100) * 10)
    }

    /// [`Self::quantile`] at permille resolution (`q` in `0..=1000`), so
    /// tails finer than 1% — p999 — are expressible.
    pub fn quantile_permille(&self, q: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank = ceil(count * q / 1000), clamped to at least 1.
        let rank = (u128::from(self.count) * u128::from(q.min(1000)))
            .div_ceil(1000)
            .max(1);
        let mut cum = 0u128;
        for b in &self.buckets {
            cum += u128::from(b.count);
            if cum >= rank {
                return bucket_upper_bound(b.exp as usize);
            }
        }
        bucket_upper_bound(NUM_BUCKETS)
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(50)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(99)
    }

    /// 99.9th-percentile upper bound.
    pub fn p999(&self) -> u64 {
        self.quantile_permille(999)
    }
}

/// A registry of named instruments, ordered by name.
///
/// Lookup takes a mutex once per registration (get-or-create); handles
/// returned from it never touch the lock again. All maps are `BTreeMap`s
/// so snapshots iterate in name order — this crate sits on the
/// determinism-audited path.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock();
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        map.insert(name.to_string(), g.clone());
        g
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsRegistry(counters={}, gauges={}, histograms={})",
            self.counters.lock().len(),
            self.gauges.lock().len(),
            self.histograms.lock().len()
        )
    }
}

/// A frozen [`MetricsRegistry`]: plain ordered maps, serializable through
/// the vendored serde, with a byte-stable text [`summary`].
///
/// [`summary`]: MetricsSnapshot::summary
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A canonical, byte-stable rendering: one line per instrument in
    /// name order, integers only — two identical seeded runs must agree
    /// on every byte (asserted by `tests/obs_determinism.rs`).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name}: count={} sum={} p50<={} p99<={}",
                h.count,
                h.sum,
                h.p50(),
                h.p99()
            );
        }
        out
    }

    /// JSON rendering through the vendored serde (ordered maps, so also
    /// byte-stable).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none are expected for this
    /// integer-only tree).
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde_json::to_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_zero_one_and_max() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_exact_powers_of_two() {
        for exp in 1..=63u32 {
            let v = 1u64 << exp;
            // 2^exp opens bucket exp+1; 2^exp - 1 closes bucket exp.
            assert_eq!(bucket_index(v), exp as usize + 1, "2^{exp}");
            assert_eq!(bucket_index(v - 1), exp as usize, "2^{exp}-1");
            assert_eq!(bucket_upper_bound(exp as usize), v - 1);
        }
    }

    #[test]
    fn histogram_counts_and_saturating_sum() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, u64::MAX, "sum saturates instead of wrapping");
        let exps: Vec<u32> = snap.buckets.iter().map(|b| b.exp).collect();
        assert_eq!(exps, vec![0, 1, 64]);
        assert!(snap.buckets.iter().all(|b| b.count == 1));
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 3, "3 lives in bucket 2 (2..=3)");
        assert_eq!(snap.p99(), 1023, "1000 lives in bucket 10 (512..=1023)");
        assert_eq!(snap.quantile(0), 3, "q=0 clamps to rank 1");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn registry_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.hits").get(), 3);

        let g = reg.gauge("x.level");
        g.set(-4);
        g.add(1);
        assert_eq!(reg.gauge("x.level").get(), -3);

        reg.histogram("x.lat").observe(7);
        assert_eq!(reg.histogram("x.lat").count(), 1);
    }

    #[test]
    fn snapshot_summary_is_ordered_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(5);
        reg.gauge("m.mid").set(2);
        reg.histogram("h.lat").observe(3);
        let summary = reg.snapshot().summary();
        let expected = "counter a.first = 5\n\
                        counter z.last = 1\n\
                        gauge m.mid = 2\n\
                        histogram h.lat: count=1 sum=3 p50<=3 p99<=3\n";
        assert_eq!(summary, expected);
        assert_eq!(reg.snapshot().summary(), summary, "snapshots are stable");
    }

    #[test]
    fn snapshot_serializes_to_stable_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(2);
        reg.histogram("h").observe(4);
        let json = reg.snapshot().to_json().unwrap();
        assert_eq!(
            json,
            r#"{"counters":{"c":2},"gauges":{},"histograms":{"h":{"count":1,"sum":4,"min":4,"max":4,"buckets":[{"exp":3,"count":1}]}}}"#
        );
    }

    #[test]
    fn min_max_track_exact_extrema() {
        let h = Histogram::new();
        let empty = h.snapshot();
        assert_eq!((empty.min, empty.max), (0, 0));
        h.observe(100);
        h.observe(3);
        h.observe(47);
        let snap = h.snapshot();
        assert_eq!(snap.min, 3);
        assert_eq!(snap.max, 100);
        h.observe(0);
        assert_eq!(h.snapshot().min, 0);
    }

    #[test]
    fn p999_resolves_finer_than_p99() {
        let h = Histogram::new();
        // 99 fast observations, one slow outlier: p99 (rank 99) stays in
        // the fast bucket, p999 (rank 100) lands on the outlier's bucket.
        for _ in 0..99 {
            h.observe(3);
        }
        h.observe(1000);
        let snap = h.snapshot();
        assert_eq!(snap.p99(), 3);
        assert_eq!(snap.p999(), 1023);
        assert_eq!(snap.quantile_permille(1000), 1023);
        assert_eq!(Histogram::new().snapshot().p999(), 0);
    }
}
