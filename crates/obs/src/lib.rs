//! # teamnet-obs
//!
//! Deterministic tracing and metrics for the TeamNet workspace.
//!
//! Every earlier PR left behind its own fragment of telemetry —
//! `TransportStats` on transports, `WorkerStats` from serve loops,
//! `PeerReport`s in inference reports, one-off bench JSON — but nothing
//! explained *where a round's milliseconds went*: gate compute vs. expert
//! forward vs. retry backoff vs. wire. This crate is the single timeline:
//!
//! * [`Tracer`] — span-based tracing. `tracer.span("expert.forward", &[])`
//!   returns an RAII guard that records enter/exit events against the
//!   injectable [`teamnet_net::clock::Clock`]; under a
//!   [`teamnet_net::ManualClock`] the emitted JSONL is byte-stable
//!   run-to-run, which is what lets `tests/obs_determinism.rs` assert
//!   byte-identical traces from two seeded chaos soaks.
//! * [`MetricsRegistry`] — named [`Counter`]/[`Gauge`]/[`Histogram`]
//!   instruments in `BTreeMap`s (ordered iteration, `det-map` clean). The
//!   [`Histogram`] uses fixed log2 bucket bounds and u64 counts — no
//!   floats anywhere on the hot path — and a [`MetricsSnapshot`]
//!   serializes through the vendored serde to byte-stable JSON plus a
//!   `summary()` transcript in the style of `InferenceReport::summary()`.
//! * [`TraceSink`] — the export layer: [`JsonlSink`] (files),
//!   [`VecSink`] (in-memory, for assertions), [`NullSink`] (disabled; a
//!   disabled tracer's `span()` is one branch — no clock read, no lock,
//!   no allocation).
//! * [`report`] — the `cargo xtask trace-report` backend: ingests span
//!   JSONL and renders a per-span count/p50/p99/total latency table from
//!   the same histogram buckets.
//! * [`wrap`] — decorators gluing obs onto `teamnet-net` without a
//!   dependency cycle: [`TracedTransport`] meters send/recv on any
//!   [`teamnet_net::Transport`], [`TracedClock`] meters every backoff
//!   sleep taken through the injected clock, and
//!   [`wrap::fold_transport_stats`] folds a transport's fault counters
//!   into the registry.
//!
//! ## Determinism rules
//!
//! Timestamps are *offsets* from the tracer's construction instant, read
//! from the injected clock — never from the wall clock directly (this
//! crate is a determinism-taint root; `cargo xtask audit` rejects
//! `Instant::now()` here). A [`Tracer`] serializes its span stack behind
//! one mutex: traces are only byte-stable when one thread of control owns
//! the tracer (the master session), which is how the runtime wires it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod assemble;
pub mod metrics;
pub mod report;
pub mod trace;
pub mod wrap;

pub use alloc::AllocMeters;
pub use metrics::{
    BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{
    FlightRecorder, JsonlSink, NullSink, Obs, RingSink, SpanGuard, TeeSink, TraceSink, Tracer,
    VecSink,
};
pub use wrap::{TracedClock, TracedTransport};

// Clock re-exports so downstream crates (simnet, benches) can build a
// deterministic `Obs` without depending on `teamnet-net` themselves.
pub use teamnet_net::{Clock, ManualClock, SystemClock};

// Trace-context re-exports: the id types frames carry on the wire, plus
// the framing sizes (header + trace extension) cost models need.
pub use teamnet_net::{derive_trace_id, TraceContext, ENVELOPE_HEADER_LEN, TRACE_EXT_LEN};
