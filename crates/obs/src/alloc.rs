//! Tensor-allocation meters: the runtime side of the static resource
//! certification honesty check.
//!
//! `cargo xtask cost` certifies a static peak-activation bound per expert
//! (DESIGN.md §13). These meters record what a real forward pass actually
//! allocated — measured by `teamnet_tensor::MemScope` at the call site and
//! reported here — so dashboards and tests can compare the two: the static
//! bound must upper-bound every observed peak.

use crate::metrics::{Counter, Gauge, MetricsRegistry};

/// Per-expert tensor-allocation meters, registered under a common prefix:
///
/// * `<prefix>.alloc_bytes` — total tensor bytes allocated across all
///   measured forwards (counter);
/// * `<prefix>.alloc_forwards` — number of measured forwards (counter);
/// * `<prefix>.alloc_peak_bytes` — high-water mark of the per-forward
///   peak live bytes (gauge).
#[derive(Debug, Clone)]
pub struct AllocMeters {
    bytes: Counter,
    forwards: Counter,
    peak: Gauge,
}

impl AllocMeters {
    /// Registers the three meters on `registry` under `prefix`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        AllocMeters {
            bytes: registry.counter(&format!("{prefix}.alloc_bytes")),
            forwards: registry.counter(&format!("{prefix}.alloc_forwards")),
            peak: registry.gauge(&format!("{prefix}.alloc_peak_bytes")),
        }
    }

    /// Records one measured forward pass: `allocated_bytes` allocated in
    /// total, reaching a live peak of `peak_bytes`. The peak gauge is a
    /// monotone high-water mark; callers record from the session thread,
    /// so the read-modify-write needs no stronger ordering.
    pub fn record(&self, allocated_bytes: u64, peak_bytes: u64) {
        self.bytes.add(allocated_bytes);
        self.forwards.inc();
        let peak = i64::try_from(peak_bytes).unwrap_or(i64::MAX);
        if peak > self.peak.get() {
            self.peak.set(peak);
        }
    }

    /// Total tensor bytes allocated across measured forwards.
    pub fn allocated_bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Number of measured forwards.
    pub fn forwards(&self) -> u64 {
        self.forwards.get()
    }

    /// High-water mark of per-forward peak live bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.get().max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_accumulate_and_track_peak_high_water() {
        let registry = MetricsRegistry::new();
        let meters = AllocMeters::register(&registry, "expert.3");
        meters.record(1000, 400);
        meters.record(2000, 900);
        meters.record(500, 100);
        assert_eq!(meters.allocated_bytes(), 3500);
        assert_eq!(meters.forwards(), 3);
        assert_eq!(meters.peak_bytes(), 900, "gauge keeps the high water");
    }

    #[test]
    fn meters_share_state_through_the_registry() {
        let registry = MetricsRegistry::new();
        let a = AllocMeters::register(&registry, "worker");
        let b = AllocMeters::register(&registry, "worker");
        a.record(10, 10);
        b.record(5, 3);
        assert_eq!(a.allocated_bytes(), 15);
        assert_eq!(a.peak_bytes(), 10);
    }
}
