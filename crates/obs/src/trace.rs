//! The span tracer and its export sinks.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; entering a span emits an
//! `enter` JSONL event and exiting (guard drop) emits an `exit` event
//! carrying the duration. Every timestamp is the offset in nanoseconds
//! from the tracer's construction instant, read on the injected
//! [`Clock`] — under a [`teamnet_net::ManualClock`] two identical seeded
//! runs emit byte-identical event streams.
//!
//! Nesting is tracked with an explicit span stack (parent ids in the
//! events), guarded by one mutex: a tracer is meant to be driven by a
//! single thread of control (the master inference loop, the trainer).
//! Guards tolerate out-of-order drops by unwinding the stack to their own
//! entry, so a mis-scoped guard degrades the tree, not the process.
//!
//! The disabled path is free by construction: a tracer over a
//! [`NullSink`] returns an inert guard after one branch — no clock read,
//! no lock, no allocation (overhead measured in `kernel_bench`, see the
//! bench caveats).

use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use teamnet_net::{Clock, ManualClock, SystemClock, TraceContext};

/// Where trace events go.
///
/// `record` receives one complete JSONL line (no trailing newline).
/// Implementations must be cheap and must never panic: tracing is a
/// bystander, not a participant.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether events should be produced at all. A `false` here turns the
    /// whole tracer off at construction time.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one JSONL event line.
    fn record(&self, line: &str);

    /// Flushes any buffering (file sinks).
    fn flush(&self) {}
}

/// A sink that discards everything and reports itself disabled; the
/// default for production configs that don't opt into tracing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _line: &str) {}
}

/// An in-memory sink for tests and determinism assertions.
#[derive(Debug, Default)]
pub struct VecSink {
    lines: Mutex<Vec<String>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A copy of every recorded line, in order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// All recorded lines joined with `\n` (plus a trailing newline),
    /// exactly as a [`JsonlSink`] file would read.
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock();
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for VecSink {
    fn record(&self, line: &str) {
        self.lines.lock().push(line.to_string());
    }
}

/// A buffered JSONL file sink.
///
/// Write errors after creation are swallowed (a full disk must not take
/// down an inference cluster); the file is flushed on `flush` and drop.
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
    path: std::path::PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
            path,
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JsonlSink({})", self.path.display())
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, line: &str) {
        let mut writer = self.writer.lock();
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

/// A fixed-capacity ring of the most recent trace events — the flight
/// recorder's storage.
///
/// Every slot is a `String` allocated once at construction and reused in
/// place (`clear` + `push_str`), so steady-state recording allocates
/// nothing beyond occasional slot growth when an event line outgrows its
/// slot's prior capacity. Cheap enough to leave on in production even
/// when full tracing is off.
#[derive(Debug)]
pub struct RingSink {
    state: Mutex<RingState>,
}

#[derive(Debug)]
struct RingState {
    slots: Vec<String>,
    /// How many slots hold real events (saturates at capacity).
    len: usize,
    /// Next slot to overwrite.
    next: usize,
}

impl RingSink {
    /// A ring holding the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RingSink {
            state: Mutex::new(RingState {
                slots: vec![String::new(); cap],
                len: 0,
                next: 0,
            }),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.state.lock().slots.len()
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        let state = self.state.lock();
        let cap = state.slots.len();
        let start = if state.len < cap { 0 } else { state.next };
        (0..state.len)
            .map(|i| state.slots[(start + i) % cap].clone())
            .collect()
    }
}

impl TraceSink for RingSink {
    fn record(&self, line: &str) {
        let mut state = self.state.lock();
        let at = state.next;
        let cap = state.slots.len();
        let slot = &mut state.slots[at];
        slot.clear();
        slot.push_str(line);
        state.next = (at + 1) % cap;
        state.len = (state.len + 1).min(cap);
    }
}

/// Fans every event out to each inner sink that is enabled. Used to run a
/// full trace file and a [`RingSink`] flight recorder off one tracer.
#[derive(Debug)]
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// A tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, line: &str) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(line);
            }
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// A dump-on-failure flight recorder: a [`RingSink`] of recent events
/// plus a dump directory.
///
/// Code that detects an anomaly (quarantine transition, failed round,
/// overload burst) calls [`Obs::flight_dump`], which appends a `mark`
/// event naming the trigger — so the *last* line of every dump is the
/// transition that caused it — and then writes the ring out as
/// `flight-<n>.jsonl`.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Arc<RingSink>,
    dir: PathBuf,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder over an existing ring, dumping into `dir`.
    pub fn from_ring(ring: Arc<RingSink>, dir: impl AsRef<Path>) -> Self {
        FlightRecorder {
            ring,
            dir: dir.as_ref().to_path_buf(),
            dumps: AtomicU64::new(0),
        }
    }

    /// The underlying ring, for wiring into a [`TeeSink`].
    pub fn ring(&self) -> Arc<RingSink> {
        Arc::clone(&self.ring)
    }

    /// How many dumps have been written.
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Writes the ring's current contents to `flight-<n>.jsonl` in the
    /// dump directory. IO failures are swallowed (`None`): the recorder
    /// is a bystander, and a full disk must not take down inference.
    pub fn dump(&self) -> Option<PathBuf> {
        let n = self.dumps.fetch_add(1, Ordering::Relaxed);
        if std::fs::create_dir_all(&self.dir).is_err() {
            return None;
        }
        let path = self.dir.join(format!("flight-{n}.jsonl"));
        let lines = self.ring.snapshot();
        let mut out = String::new();
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        std::fs::write(&path, out).ok()?;
        Some(path)
    }
}

/// Escapes a string for embedding in a JSON string literal. Span names
/// are controlled identifiers, but the sink format must stay valid JSON
/// for any input.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[derive(Debug)]
struct TracerState {
    next_span: u64,
    seq: u64,
    stack: Vec<u64>,
}

/// The span tracer. See the module docs for the event format and the
/// determinism contract.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    origin: Instant,
    sink: Arc<dyn TraceSink>,
    enabled: bool,
    durations: Option<Arc<MetricsRegistry>>,
    state: Mutex<TracerState>,
}

impl Tracer {
    /// A tracer emitting to `sink` with timestamps from `clock`.
    ///
    /// When `durations` is given, every span exit also feeds its duration
    /// into the histogram `span.<name>.ns` of that registry, so a
    /// [`crate::MetricsSnapshot`] carries the same latency data as the
    /// trace file.
    pub fn new(
        clock: Arc<dyn Clock>,
        sink: Arc<dyn TraceSink>,
        durations: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        let origin = clock.now();
        let enabled = sink.enabled();
        Tracer {
            clock,
            origin,
            sink,
            enabled,
            durations,
            state: Mutex::new(TracerState {
                next_span: 1,
                seq: 0,
                stack: Vec::new(),
            }),
        }
    }

    /// A permanently disabled tracer: `span()` costs one branch.
    pub fn disabled() -> Self {
        Tracer::new(Arc::new(SystemClock), Arc::new(NullSink), None)
    }

    /// Whether this tracer emits events.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Nanosecond offset of `instant` from the tracer origin.
    fn offset_ns(&self, instant: Instant) -> u64 {
        u64::try_from(instant.saturating_duration_since(self.origin).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Current nanosecond timestamp on the tracer's own clock (offset
    /// from its origin). Instrumentation that derives *metrics* from the
    /// traced timeline (e.g. the per-round attribution histograms) must
    /// read this clock, not a wall clock, so deterministic runs over a
    /// [`teamnet_net::ManualClock`] stay byte-identical.
    pub fn now_ns(&self) -> u64 {
        self.offset_ns(self.clock.now())
    }

    /// Opens a span. The returned guard records the exit when dropped;
    /// bind it (`let _span = …`) for the span to cover the scope.
    ///
    /// `fields` are numeric key/value annotations rendered into the enter
    /// event in the order given (numbers only: no float formatting, no
    /// string drift).
    pub fn span(&self, name: &'static str, fields: &[(&'static str, u64)]) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                tracer: None,
                name,
                span_id: 0,
                start_ns: 0,
            };
        }
        let start_ns = self.offset_ns(self.clock.now());
        let span_id = {
            let mut state = self.state.lock();
            let span_id = state.next_span;
            state.next_span += 1;
            let parent = state.stack.last().copied().unwrap_or(0);
            let seq = state.seq;
            state.seq += 1;
            state.stack.push(span_id);
            self.sink
                .record(&render_enter(seq, span_id, parent, name, start_ns, fields));
            span_id
        };
        SpanGuard {
            tracer: Some(self),
            name,
            span_id,
            start_ns,
        }
    }

    /// Records a complete span with explicit timestamps — the simulator's
    /// entry point, where time is virtual [`SimTime`] nanoseconds rather
    /// than clock reads.
    ///
    /// [`SimTime`]: https://docs.rs/teamnet-simnet
    pub fn record_span_at(
        &self,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        fields: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        let (seq_enter, seq_exit, span_id, parent) = {
            let mut state = self.state.lock();
            let span_id = state.next_span;
            state.next_span += 1;
            let seq = state.seq;
            state.seq += 2;
            (
                seq,
                seq + 1,
                span_id,
                state.stack.last().copied().unwrap_or(0),
            )
        };
        self.sink.record(&render_enter(
            seq_enter, span_id, parent, name, start_ns, fields,
        ));
        let dur_ns = end_ns.saturating_sub(start_ns);
        self.sink
            .record(&render_exit(seq_exit, span_id, name, end_ns, dur_ns));
        self.observe_duration(name, dur_ns);
    }

    /// The innermost open span's id, or `0` when no span is open (or the
    /// tracer is disabled). This is what send sites stamp into outgoing
    /// frames as the causal parent.
    pub fn current_span(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.state.lock().stack.last().copied().unwrap_or(0)
    }

    /// A [`TraceContext`] for `trace_id` parented on the current span —
    /// the one-liner send sites use to stamp outgoing frames.
    pub fn current_ctx(&self, trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span: self.current_span(),
        }
    }

    /// Records a point event (no duration): `ev:"mark"`. Used for state
    /// transitions and flight-recorder triggers.
    pub fn mark(&self, name: &str, fields: &[(&'static str, u64)]) {
        self.point_event("mark", None, name, fields);
    }

    /// Records the departure of a traced frame: `ev:"send"` on the
    /// sender's current span, carrying the destination `peer`, the
    /// stamped trace id and the wire size. `trace-assemble` pairs it with
    /// the matching `recv` on the far side to measure the wire.
    pub fn send_event(&self, kind: &str, peer: u64, ctx: TraceContext, bytes: u64) {
        self.point_event(
            "send",
            Some(ctx.parent_span),
            kind,
            &[("peer", peer), ("trace", ctx.trace_id), ("bytes", bytes)],
        );
    }

    /// Records the arrival of a traced frame: `ev:"recv"` on the
    /// receiver's current span. `rspan` is the *sender's* span id carried
    /// in the frame — the other half of the cross-node edge.
    pub fn recv_event(&self, kind: &str, peer: u64, ctx: TraceContext, bytes: u64) {
        self.point_event(
            "recv",
            None,
            kind,
            &[
                ("peer", peer),
                ("trace", ctx.trace_id),
                ("rspan", ctx.parent_span),
                ("bytes", bytes),
            ],
        );
    }

    /// Shared implementation of the point events (`mark`/`send`/`recv`):
    /// one line on the current (or given) span, no stack change.
    fn point_event(&self, ev: &str, span: Option<u64>, name: &str, fields: &[(&'static str, u64)]) {
        if !self.enabled {
            return;
        }
        let t_ns = self.offset_ns(self.clock.now());
        let mut state = self.state.lock();
        let span = span.unwrap_or_else(|| state.stack.last().copied().unwrap_or(0));
        let seq = state.seq;
        state.seq += 1;
        self.sink
            .record(&render_event(seq, ev, span, name, t_ns, fields));
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    fn observe_duration(&self, name: &str, dur_ns: u64) {
        if let Some(registry) = &self.durations {
            let mut metric = String::with_capacity(name.len() + 8);
            metric.push_str("span.");
            metric.push_str(name);
            metric.push_str(".ns");
            registry.histogram(&metric).observe(dur_ns);
        }
    }

    fn exit_span(&self, span_id: u64, name: &str, start_ns: u64) {
        let end_ns = self.offset_ns(self.clock.now());
        {
            let mut state = self.state.lock();
            // Unwind to (and including) our own entry; a guard dropped out
            // of order closes the spans it outlived.
            while let Some(top) = state.stack.pop() {
                if top == span_id {
                    break;
                }
            }
            let seq = state.seq;
            state.seq += 1;
            self.sink.record(&render_exit(
                seq,
                span_id,
                name,
                end_ns,
                end_ns.saturating_sub(start_ns),
            ));
        }
        self.observe_duration(name, end_ns.saturating_sub(start_ns));
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(enabled={}, sink={:?})", self.enabled, self.sink)
    }
}

fn render_enter(
    seq: u64,
    span: u64,
    parent: u64,
    name: &str,
    t_ns: u64,
    fields: &[(&'static str, u64)],
) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"ev\":\"enter\",\"span\":{span},\"parent\":{parent},\"name\":\""
    );
    escape_into(&mut out, name);
    let _ = write!(out, "\",\"t_ns\":{t_ns},\"fields\":{{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, key);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("}}");
    out
}

fn render_event(
    seq: u64,
    ev: &str,
    span: u64,
    name: &str,
    t_ns: u64,
    fields: &[(&'static str, u64)],
) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"ev\":\"{ev}\",\"span\":{span},\"name\":\""
    );
    escape_into(&mut out, name);
    let _ = write!(out, "\",\"t_ns\":{t_ns},\"fields\":{{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, key);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("}}");
    out
}

fn render_exit(seq: u64, span: u64, name: &str, t_ns: u64, dur_ns: u64) -> String {
    let mut out = String::with_capacity(80);
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"ev\":\"exit\",\"span\":{span},\"name\":\""
    );
    escape_into(&mut out, name);
    let _ = write!(out, "\",\"t_ns\":{t_ns},\"dur_ns\":{dur_ns}}}");
    out
}

/// RAII guard for an open span; records the exit event when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    span_id: u64,
    start_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            tracer.exit_span(self.span_id, self.name, self.start_ns);
        }
    }
}

/// The observability handle threaded through configs: a shared tracer
/// plus a shared metrics registry.
///
/// [`Obs::disabled`] is the default everywhere — the tracer is inert, but
/// the registry is live, so protocol counters (discards, retries, fault
/// injections) accumulate even without tracing and can be read back with
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct Obs {
    /// The span tracer.
    pub tracer: Arc<Tracer>,
    /// The metrics registry.
    pub metrics: Arc<MetricsRegistry>,
    /// Optional flight recorder; anomaly paths dump it via
    /// [`Obs::flight_dump`].
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Obs {
    /// Tracing + metrics over `clock` into `sink`; span durations also
    /// feed `span.<name>.ns` histograms in the registry.
    pub fn new(clock: Arc<dyn Clock>, sink: Arc<dyn TraceSink>) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(Tracer::new(clock, sink, Some(Arc::clone(&metrics))));
        Obs {
            tracer,
            metrics,
            flight: None,
        }
    }

    /// No tracing; live metrics. The zero-overhead default.
    pub fn disabled() -> Self {
        Obs {
            tracer: Arc::new(Tracer::disabled()),
            metrics: Arc::new(MetricsRegistry::new()),
            flight: None,
        }
    }

    /// Tracing + metrics where the sink is teed into a fresh
    /// `capacity`-event [`RingSink`], and a [`FlightRecorder`] over that
    /// ring dumps into `dump_dir`. The full trace still reaches `sink`.
    pub fn with_flight_recorder(
        clock: Arc<dyn Clock>,
        sink: Arc<dyn TraceSink>,
        capacity: usize,
        dump_dir: impl AsRef<Path>,
    ) -> Self {
        let ring = Arc::new(RingSink::new(capacity));
        let tee: Arc<dyn TraceSink> = Arc::new(TeeSink::new(vec![
            sink,
            Arc::clone(&ring) as Arc<dyn TraceSink>,
        ]));
        let recorder = Arc::new(FlightRecorder::from_ring(ring, dump_dir));
        let mut obs = Obs::new(clock, tee);
        obs.flight = Some(recorder);
        obs
    }

    /// Appends a `mark` event naming the trigger (so it lands as the
    /// dump's final line) and dumps the flight-recorder ring. Returns the
    /// dump path, or `None` when no recorder is armed or the write
    /// failed.
    pub fn flight_dump(&self, reason: &str, fields: &[(&'static str, u64)]) -> Option<PathBuf> {
        let recorder = self.flight.as_ref()?;
        self.tracer.mark(reason, fields);
        recorder.dump()
    }

    /// Tracing + metrics for *simulated* time: the tracer's clock is a
    /// [`ManualClock`] pinned at the origin, so the only meaningful
    /// timestamps are those supplied explicitly through
    /// [`Tracer::record_span_at`] — the shape the simnet cost models use.
    pub fn sim(sink: Arc<dyn TraceSink>) -> Self {
        Obs::new(Arc::new(ManualClock::new()), sink)
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Shorthand for [`Tracer::span`].
    pub fn span(&self, name: &'static str, fields: &[(&'static str, u64)]) -> SpanGuard<'_> {
        self.tracer.span(name, fields)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use teamnet_net::ManualClock;

    fn manual_obs() -> (Arc<ManualClock>, Arc<VecSink>, Obs) {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let obs = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        (clock, sink, obs)
    }

    #[test]
    fn spans_emit_enter_exit_with_manual_timestamps() {
        let (clock, sink, obs) = manual_obs();
        {
            let _outer = obs.span("outer", &[("round", 3)]);
            clock.advance(Duration::from_nanos(100));
            {
                let _inner = obs.span("inner", &[]);
                clock.advance(Duration::from_nanos(50));
            }
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"outer","t_ns":0,"fields":{"round":3}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ev":"enter","span":2,"parent":1,"name":"inner","t_ns":100,"fields":{}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"seq":2,"ev":"exit","span":2,"name":"inner","t_ns":150,"dur_ns":50}"#
        );
        assert_eq!(
            lines[3],
            r#"{"seq":3,"ev":"exit","span":1,"name":"outer","t_ns":150,"dur_ns":150}"#
        );
    }

    #[test]
    fn span_durations_feed_registry_histograms() {
        let (clock, _sink, obs) = manual_obs();
        {
            let _s = obs.span("work", &[]);
            clock.advance(Duration::from_nanos(7));
        }
        let snap = obs.metrics.snapshot();
        let h = &snap.histograms["span.work.ns"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 7);
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_skips_histograms() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        {
            let _s = obs.span("work", &[("x", 1)]);
        }
        obs.tracer.record_span_at("sim", 0, 10, &[]);
        assert!(obs.metrics.snapshot().histograms.is_empty());
        // Counters still work on the disabled path.
        obs.metrics.counter("c").inc();
        assert_eq!(obs.metrics.counter("c").get(), 1);
    }

    #[test]
    fn record_span_at_uses_explicit_timestamps() {
        let (_clock, sink, obs) = manual_obs();
        obs.tracer
            .record_span_at("sim.send", 1000, 1500, &[("peer", 2)]);
        let lines = sink.lines();
        assert_eq!(
            lines[0],
            r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"sim.send","t_ns":1000,"fields":{"peer":2}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ev":"exit","span":1,"name":"sim.send","t_ns":1500,"dur_ns":500}"#
        );
    }

    #[test]
    fn out_of_order_drop_unwinds_the_stack() {
        let (_clock, sink, obs) = manual_obs();
        let outer = obs.span("outer", &[]);
        let inner = obs.span("inner", &[]);
        drop(outer); // wrong order: outer's exit closes inner's stack entry
        drop(inner);
        let lines = sink.lines();
        assert_eq!(lines.len(), 4, "{lines:?}");
        // A span opened after the unwind gets a root parent, not a stale one.
        let _fresh = obs.span("fresh", &[]);
        let fresh_line = &sink.lines()[4];
        assert!(fresh_line.contains("\"parent\":0"), "{fresh_line}");
    }

    #[test]
    fn names_are_json_escaped() {
        let (_clock, sink, obs) = manual_obs();
        obs.tracer.record_span_at("we\"ird\\name", 0, 1, &[]);
        let line = sink.lines()[0].clone();
        assert!(line.contains(r#"we\"ird\\name"#), "{line}");
        assert!(
            serde_json::from_str::<serde::Value>(&line).is_ok(),
            "{line}"
        );
    }

    #[test]
    fn jsonl_sink_writes_and_flushes() {
        let dir = std::env::temp_dir();
        let path = dir.join("teamnet_obs_trace_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(r#"{"seq":0}"#);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"seq\":0}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_jsonl_sink_loses_no_events() {
        // The sink buffers (BufWriter) — a drop without an explicit flush
        // must still land every event on disk.
        let dir = std::env::temp_dir();
        let path = dir.join("teamnet_obs_trace_drop_test.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            for i in 0..100 {
                sink.record(&format!(r#"{{"seq":{i}}}"#));
            }
            // No flush: drop must do it.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        assert_eq!(lines[99], r#"{"seq":99}"#);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn send_recv_mark_events_pin_their_format() {
        let (clock, sink, obs) = manual_obs();
        let _round = obs.span("round", &[]);
        clock.advance(Duration::from_nanos(10));
        let ctx = obs.tracer.current_ctx(77);
        assert_eq!(
            ctx,
            TraceContext {
                trace_id: 77,
                parent_span: 1
            }
        );
        obs.tracer.send_event("input", 2, ctx, 128);
        clock.advance(Duration::from_nanos(5));
        obs.tracer.recv_event(
            "result",
            2,
            TraceContext {
                trace_id: 77,
                parent_span: 9,
            },
            64,
        );
        obs.tracer.mark("quarantine", &[("peer", 2)]);
        let lines = sink.lines();
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ev":"send","span":1,"name":"input","t_ns":10,"fields":{"peer":2,"trace":77,"bytes":128}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"seq":2,"ev":"recv","span":1,"name":"result","t_ns":15,"fields":{"peer":2,"trace":77,"rspan":9,"bytes":64}}"#
        );
        assert_eq!(
            lines[3],
            r#"{"seq":3,"ev":"mark","span":1,"name":"quarantine","t_ns":15,"fields":{"peer":2}}"#
        );
        for line in &lines {
            assert!(serde_json::from_str::<serde::Value>(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn disabled_tracer_skips_point_events() {
        let obs = Obs::disabled();
        obs.tracer.mark("x", &[]);
        obs.tracer.send_event("y", 1, obs.tracer.current_ctx(1), 10);
        assert_eq!(obs.tracer.current_span(), 0);
    }

    #[test]
    fn ring_sink_keeps_only_the_newest_events_in_order() {
        let ring = RingSink::new(3);
        assert_eq!(ring.capacity(), 3);
        assert!(ring.snapshot().is_empty());
        ring.record("a");
        ring.record("b");
        assert_eq!(ring.snapshot(), vec!["a", "b"]);
        ring.record("c");
        ring.record("d");
        ring.record("e");
        assert_eq!(ring.snapshot(), vec!["c", "d", "e"]);
    }

    #[test]
    fn tee_sink_fans_out_to_enabled_sinks_only() {
        let a = Arc::new(VecSink::new());
        let ring = Arc::new(RingSink::new(4));
        let tee = TeeSink::new(vec![
            Arc::clone(&a) as Arc<dyn TraceSink>,
            Arc::new(NullSink) as Arc<dyn TraceSink>,
            Arc::clone(&ring) as Arc<dyn TraceSink>,
        ]);
        assert!(tee.enabled());
        tee.record("x");
        assert_eq!(a.lines(), vec!["x"]);
        assert_eq!(ring.snapshot(), vec!["x"]);
    }

    #[test]
    fn flight_dump_writes_ring_with_trigger_mark_last() {
        let dir = std::env::temp_dir().join("teamnet_obs_flight_test");
        let _ = std::fs::remove_dir_all(&dir);
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let obs = Obs::with_flight_recorder(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
            8,
            &dir,
        );
        {
            let _s = obs.span("round", &[("round_idx", 1)]);
            clock.advance(Duration::from_nanos(3));
        }
        let path = obs
            .flight_dump("flight.quarantine", &[("peer", 2)])
            .expect("dump path");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        let last = lines.last().unwrap();
        assert!(
            last.contains(r#""ev":"mark""#) && last.contains("flight.quarantine"),
            "{last}"
        );
        // The full-trace sink saw the same events.
        assert_eq!(sink.lines().len(), 3);
        assert_eq!(obs.flight.as_ref().unwrap().dump_count(), 1);
        // A second dump gets a fresh file name.
        let second = obs.flight_dump("flight.quarantine", &[]).unwrap();
        assert_ne!(path, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_sink_records_even_when_primary_sink_is_disabled() {
        // Flight recording without always-on full tracing: tee of
        // NullSink + ring is still enabled, so spans reach the ring.
        let dir = std::env::temp_dir().join("teamnet_obs_flight_null_test");
        let _ = std::fs::remove_dir_all(&dir);
        let obs = Obs::with_flight_recorder(
            Arc::new(ManualClock::new()) as Arc<dyn Clock>,
            Arc::new(NullSink) as Arc<dyn TraceSink>,
            4,
            &dir,
        );
        assert!(obs.enabled());
        {
            let _s = obs.span("round", &[]);
        }
        let ring = obs.flight.as_ref().unwrap().ring();
        assert_eq!(ring.snapshot().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
