//! The span tracer and its export sinks.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; entering a span emits an
//! `enter` JSONL event and exiting (guard drop) emits an `exit` event
//! carrying the duration. Every timestamp is the offset in nanoseconds
//! from the tracer's construction instant, read on the injected
//! [`Clock`] — under a [`teamnet_net::ManualClock`] two identical seeded
//! runs emit byte-identical event streams.
//!
//! Nesting is tracked with an explicit span stack (parent ids in the
//! events), guarded by one mutex: a tracer is meant to be driven by a
//! single thread of control (the master inference loop, the trainer).
//! Guards tolerate out-of-order drops by unwinding the stack to their own
//! entry, so a mis-scoped guard degrades the tree, not the process.
//!
//! The disabled path is free by construction: a tracer over a
//! [`NullSink`] returns an inert guard after one branch — no clock read,
//! no lock, no allocation (overhead measured in `kernel_bench`, see the
//! bench caveats).

use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use teamnet_net::{Clock, ManualClock, SystemClock};

/// Where trace events go.
///
/// `record` receives one complete JSONL line (no trailing newline).
/// Implementations must be cheap and must never panic: tracing is a
/// bystander, not a participant.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether events should be produced at all. A `false` here turns the
    /// whole tracer off at construction time.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one JSONL event line.
    fn record(&self, line: &str);

    /// Flushes any buffering (file sinks).
    fn flush(&self) {}
}

/// A sink that discards everything and reports itself disabled; the
/// default for production configs that don't opt into tracing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _line: &str) {}
}

/// An in-memory sink for tests and determinism assertions.
#[derive(Debug, Default)]
pub struct VecSink {
    lines: Mutex<Vec<String>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A copy of every recorded line, in order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// All recorded lines joined with `\n` (plus a trailing newline),
    /// exactly as a [`JsonlSink`] file would read.
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock();
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for VecSink {
    fn record(&self, line: &str) {
        self.lines.lock().push(line.to_string());
    }
}

/// A buffered JSONL file sink.
///
/// Write errors after creation are swallowed (a full disk must not take
/// down an inference cluster); the file is flushed on `flush` and drop.
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
    path: std::path::PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
            path,
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JsonlSink({})", self.path.display())
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, line: &str) {
        let mut writer = self.writer.lock();
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

/// Escapes a string for embedding in a JSON string literal. Span names
/// are controlled identifiers, but the sink format must stay valid JSON
/// for any input.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[derive(Debug)]
struct TracerState {
    next_span: u64,
    seq: u64,
    stack: Vec<u64>,
}

/// The span tracer. See the module docs for the event format and the
/// determinism contract.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    origin: Instant,
    sink: Arc<dyn TraceSink>,
    enabled: bool,
    durations: Option<Arc<MetricsRegistry>>,
    state: Mutex<TracerState>,
}

impl Tracer {
    /// A tracer emitting to `sink` with timestamps from `clock`.
    ///
    /// When `durations` is given, every span exit also feeds its duration
    /// into the histogram `span.<name>.ns` of that registry, so a
    /// [`crate::MetricsSnapshot`] carries the same latency data as the
    /// trace file.
    pub fn new(
        clock: Arc<dyn Clock>,
        sink: Arc<dyn TraceSink>,
        durations: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        let origin = clock.now();
        let enabled = sink.enabled();
        Tracer {
            clock,
            origin,
            sink,
            enabled,
            durations,
            state: Mutex::new(TracerState {
                next_span: 1,
                seq: 0,
                stack: Vec::new(),
            }),
        }
    }

    /// A permanently disabled tracer: `span()` costs one branch.
    pub fn disabled() -> Self {
        Tracer::new(Arc::new(SystemClock), Arc::new(NullSink), None)
    }

    /// Whether this tracer emits events.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Nanosecond offset of `instant` from the tracer origin.
    fn offset_ns(&self, instant: Instant) -> u64 {
        u64::try_from(instant.saturating_duration_since(self.origin).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span. The returned guard records the exit when dropped;
    /// bind it (`let _span = …`) for the span to cover the scope.
    ///
    /// `fields` are numeric key/value annotations rendered into the enter
    /// event in the order given (numbers only: no float formatting, no
    /// string drift).
    pub fn span(&self, name: &'static str, fields: &[(&'static str, u64)]) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                tracer: None,
                name,
                span_id: 0,
                start_ns: 0,
            };
        }
        let start_ns = self.offset_ns(self.clock.now());
        let span_id = {
            let mut state = self.state.lock();
            let span_id = state.next_span;
            state.next_span += 1;
            let parent = state.stack.last().copied().unwrap_or(0);
            let seq = state.seq;
            state.seq += 1;
            state.stack.push(span_id);
            self.sink
                .record(&render_enter(seq, span_id, parent, name, start_ns, fields));
            span_id
        };
        SpanGuard {
            tracer: Some(self),
            name,
            span_id,
            start_ns,
        }
    }

    /// Records a complete span with explicit timestamps — the simulator's
    /// entry point, where time is virtual [`SimTime`] nanoseconds rather
    /// than clock reads.
    ///
    /// [`SimTime`]: https://docs.rs/teamnet-simnet
    pub fn record_span_at(
        &self,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        fields: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        let (seq_enter, seq_exit, span_id, parent) = {
            let mut state = self.state.lock();
            let span_id = state.next_span;
            state.next_span += 1;
            let seq = state.seq;
            state.seq += 2;
            (
                seq,
                seq + 1,
                span_id,
                state.stack.last().copied().unwrap_or(0),
            )
        };
        self.sink.record(&render_enter(
            seq_enter, span_id, parent, name, start_ns, fields,
        ));
        let dur_ns = end_ns.saturating_sub(start_ns);
        self.sink
            .record(&render_exit(seq_exit, span_id, name, end_ns, dur_ns));
        self.observe_duration(name, dur_ns);
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    fn observe_duration(&self, name: &str, dur_ns: u64) {
        if let Some(registry) = &self.durations {
            let mut metric = String::with_capacity(name.len() + 8);
            metric.push_str("span.");
            metric.push_str(name);
            metric.push_str(".ns");
            registry.histogram(&metric).observe(dur_ns);
        }
    }

    fn exit_span(&self, span_id: u64, name: &str, start_ns: u64) {
        let end_ns = self.offset_ns(self.clock.now());
        {
            let mut state = self.state.lock();
            // Unwind to (and including) our own entry; a guard dropped out
            // of order closes the spans it outlived.
            while let Some(top) = state.stack.pop() {
                if top == span_id {
                    break;
                }
            }
            let seq = state.seq;
            state.seq += 1;
            self.sink.record(&render_exit(
                seq,
                span_id,
                name,
                end_ns,
                end_ns.saturating_sub(start_ns),
            ));
        }
        self.observe_duration(name, end_ns.saturating_sub(start_ns));
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(enabled={}, sink={:?})", self.enabled, self.sink)
    }
}

fn render_enter(
    seq: u64,
    span: u64,
    parent: u64,
    name: &str,
    t_ns: u64,
    fields: &[(&'static str, u64)],
) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"ev\":\"enter\",\"span\":{span},\"parent\":{parent},\"name\":\""
    );
    escape_into(&mut out, name);
    let _ = write!(out, "\",\"t_ns\":{t_ns},\"fields\":{{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, key);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("}}");
    out
}

fn render_exit(seq: u64, span: u64, name: &str, t_ns: u64, dur_ns: u64) -> String {
    let mut out = String::with_capacity(80);
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"ev\":\"exit\",\"span\":{span},\"name\":\""
    );
    escape_into(&mut out, name);
    let _ = write!(out, "\",\"t_ns\":{t_ns},\"dur_ns\":{dur_ns}}}");
    out
}

/// RAII guard for an open span; records the exit event when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    span_id: u64,
    start_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            tracer.exit_span(self.span_id, self.name, self.start_ns);
        }
    }
}

/// The observability handle threaded through configs: a shared tracer
/// plus a shared metrics registry.
///
/// [`Obs::disabled`] is the default everywhere — the tracer is inert, but
/// the registry is live, so protocol counters (discards, retries, fault
/// injections) accumulate even without tracing and can be read back with
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct Obs {
    /// The span tracer.
    pub tracer: Arc<Tracer>,
    /// The metrics registry.
    pub metrics: Arc<MetricsRegistry>,
}

impl Obs {
    /// Tracing + metrics over `clock` into `sink`; span durations also
    /// feed `span.<name>.ns` histograms in the registry.
    pub fn new(clock: Arc<dyn Clock>, sink: Arc<dyn TraceSink>) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(Tracer::new(clock, sink, Some(Arc::clone(&metrics))));
        Obs { tracer, metrics }
    }

    /// No tracing; live metrics. The zero-overhead default.
    pub fn disabled() -> Self {
        Obs {
            tracer: Arc::new(Tracer::disabled()),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Tracing + metrics for *simulated* time: the tracer's clock is a
    /// [`ManualClock`] pinned at the origin, so the only meaningful
    /// timestamps are those supplied explicitly through
    /// [`Tracer::record_span_at`] — the shape the simnet cost models use.
    pub fn sim(sink: Arc<dyn TraceSink>) -> Self {
        Obs::new(Arc::new(ManualClock::new()), sink)
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Shorthand for [`Tracer::span`].
    pub fn span(&self, name: &'static str, fields: &[(&'static str, u64)]) -> SpanGuard<'_> {
        self.tracer.span(name, fields)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use teamnet_net::ManualClock;

    fn manual_obs() -> (Arc<ManualClock>, Arc<VecSink>, Obs) {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let obs = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        (clock, sink, obs)
    }

    #[test]
    fn spans_emit_enter_exit_with_manual_timestamps() {
        let (clock, sink, obs) = manual_obs();
        {
            let _outer = obs.span("outer", &[("round", 3)]);
            clock.advance(Duration::from_nanos(100));
            {
                let _inner = obs.span("inner", &[]);
                clock.advance(Duration::from_nanos(50));
            }
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"outer","t_ns":0,"fields":{"round":3}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ev":"enter","span":2,"parent":1,"name":"inner","t_ns":100,"fields":{}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"seq":2,"ev":"exit","span":2,"name":"inner","t_ns":150,"dur_ns":50}"#
        );
        assert_eq!(
            lines[3],
            r#"{"seq":3,"ev":"exit","span":1,"name":"outer","t_ns":150,"dur_ns":150}"#
        );
    }

    #[test]
    fn span_durations_feed_registry_histograms() {
        let (clock, _sink, obs) = manual_obs();
        {
            let _s = obs.span("work", &[]);
            clock.advance(Duration::from_nanos(7));
        }
        let snap = obs.metrics.snapshot();
        let h = &snap.histograms["span.work.ns"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 7);
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_skips_histograms() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        {
            let _s = obs.span("work", &[("x", 1)]);
        }
        obs.tracer.record_span_at("sim", 0, 10, &[]);
        assert!(obs.metrics.snapshot().histograms.is_empty());
        // Counters still work on the disabled path.
        obs.metrics.counter("c").inc();
        assert_eq!(obs.metrics.counter("c").get(), 1);
    }

    #[test]
    fn record_span_at_uses_explicit_timestamps() {
        let (_clock, sink, obs) = manual_obs();
        obs.tracer
            .record_span_at("sim.send", 1000, 1500, &[("peer", 2)]);
        let lines = sink.lines();
        assert_eq!(
            lines[0],
            r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"sim.send","t_ns":1000,"fields":{"peer":2}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ev":"exit","span":1,"name":"sim.send","t_ns":1500,"dur_ns":500}"#
        );
    }

    #[test]
    fn out_of_order_drop_unwinds_the_stack() {
        let (_clock, sink, obs) = manual_obs();
        let outer = obs.span("outer", &[]);
        let inner = obs.span("inner", &[]);
        drop(outer); // wrong order: outer's exit closes inner's stack entry
        drop(inner);
        let lines = sink.lines();
        assert_eq!(lines.len(), 4, "{lines:?}");
        // A span opened after the unwind gets a root parent, not a stale one.
        let _fresh = obs.span("fresh", &[]);
        let fresh_line = &sink.lines()[4];
        assert!(fresh_line.contains("\"parent\":0"), "{fresh_line}");
    }

    #[test]
    fn names_are_json_escaped() {
        let (_clock, sink, obs) = manual_obs();
        obs.tracer.record_span_at("we\"ird\\name", 0, 1, &[]);
        let line = sink.lines()[0].clone();
        assert!(line.contains(r#"we\"ird\\name"#), "{line}");
        assert!(
            serde_json::from_str::<serde::Value>(&line).is_ok(),
            "{line}"
        );
    }

    #[test]
    fn jsonl_sink_writes_and_flushes() {
        let dir = std::env::temp_dir();
        let path = dir.join("teamnet_obs_trace_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(r#"{"seq":0}"#);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"seq\":0}\n");
        let _ = std::fs::remove_file(&path);
    }
}
