//! Decorators wiring observability into `teamnet-net` without a
//! dependency cycle.
//!
//! `teamnet-obs` depends on `teamnet-net` (for [`Clock`] and
//! [`Transport`]), so the net crate cannot call into this one. Instead,
//! callers wrap what they hand to the runtime:
//!
//! * [`TracedTransport`] decorates any [`Transport`], tracing every
//!   send/recv as a span and counting traffic/errors in the registry;
//! * [`TracedClock`] decorates any [`Clock`] so each backoff sleep taken
//!   through it is counted and its duration histogrammed — retries become
//!   visible without touching `Backoff` itself;
//! * [`fold_transport_stats`] copies a transport's cumulative
//!   [`TransportStats`] (including the chaos fault-injection counters)
//!   into registry gauges, unifying the ad-hoc stats structs with the
//!   metrics snapshot format.

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::trace::Obs;
use std::sync::Arc;
use std::time::{Duration, Instant};
use teamnet_net::{Clock, NetError, Tag, Transport, TransportStats};

/// A [`Transport`] decorator that traces and counts every operation.
///
/// Spans: `net.send`, `net.recv`, `net.recv_any` (fields carry the peer
/// and payload size). Counters: `net.send.messages`, `net.send.errors`,
/// `net.recv.messages`, `net.recv.timeouts`, `net.recv.errors`.
///
/// Tracing from several threads through one shared tracer interleaves
/// span stacks; for byte-stable traces give the traced endpoint to one
/// thread of control (the master), as `tests/obs_determinism.rs` does.
#[derive(Debug)]
pub struct TracedTransport<T: Transport> {
    inner: T,
    obs: Obs,
    send_messages: Counter,
    send_errors: Counter,
    recv_messages: Counter,
    recv_timeouts: Counter,
    recv_errors: Counter,
}

impl<T: Transport> TracedTransport<T> {
    /// Wraps `inner`, registering its counters in `obs`'s registry.
    pub fn new(inner: T, obs: Obs) -> Self {
        let send_messages = obs.metrics.counter("net.send.messages");
        let send_errors = obs.metrics.counter("net.send.errors");
        let recv_messages = obs.metrics.counter("net.recv.messages");
        let recv_timeouts = obs.metrics.counter("net.recv.timeouts");
        let recv_errors = obs.metrics.counter("net.recv.errors");
        TracedTransport {
            inner,
            obs,
            send_messages,
            send_errors,
            recv_messages,
            recv_timeouts,
            recv_errors,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn note_recv(&self, result: &Result<Vec<u8>, NetError>) {
        match result {
            Ok(_) => self.recv_messages.inc(),
            Err(NetError::Timeout { .. }) => self.recv_timeouts.inc(),
            Err(_) => self.recv_errors.inc(),
        }
    }
}

impl<T: Transport> Transport for TracedTransport<T> {
    fn node_id(&self) -> usize {
        self.inner.node_id()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&self, to: usize, tag: Tag, payload: &[u8]) -> Result<(), NetError> {
        let _span = self.obs.span(
            "net.send",
            &[("peer", to as u64), ("bytes", payload.len() as u64)],
        );
        let result = self.inner.send(to, tag, payload);
        match &result {
            Ok(()) => self.send_messages.inc(),
            Err(_) => self.send_errors.inc(),
        }
        result
    }

    fn recv(&self, from: usize, tag: Tag, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let _span = self.obs.span("net.recv", &[("peer", from as u64)]);
        let result = self.inner.recv(from, tag, timeout);
        self.note_recv(&result);
        result
    }

    fn recv_any(&self, tag: Tag, timeout: Duration) -> Result<(usize, Vec<u8>), NetError> {
        let _span = self.obs.span("net.recv_any", &[]);
        let result = self.inner.recv_any(tag, timeout);
        match &result {
            Ok(_) => self.recv_messages.inc(),
            Err(NetError::Timeout { .. }) => self.recv_timeouts.inc(),
            Err(_) => self.recv_errors.inc(),
        }
        result
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

/// A [`Clock`] decorator metering every sleep taken through it.
///
/// The runtime's only sleeps are retry backoffs (`Backoff::next_delay`
/// followed by `clock.sleep`), so `net.backoff.sleeps` /
/// `net.backoff.sleep.ns` read directly as "how much time this session
/// lost to retries".
#[derive(Debug)]
pub struct TracedClock {
    inner: Arc<dyn Clock>,
    sleeps: Counter,
    sleep_ns: Arc<Histogram>,
}

impl TracedClock {
    /// Wraps `inner`, registering `net.backoff.sleeps` and
    /// `net.backoff.sleep.ns` in `registry`.
    pub fn new(inner: Arc<dyn Clock>, registry: &MetricsRegistry) -> Self {
        TracedClock {
            inner,
            sleeps: registry.counter("net.backoff.sleeps"),
            sleep_ns: registry.histogram("net.backoff.sleep.ns"),
        }
    }
}

impl Clock for TracedClock {
    fn now(&self) -> Instant {
        self.inner.now()
    }

    fn sleep(&self, duration: Duration) {
        self.sleeps.inc();
        self.sleep_ns
            .observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        self.inner.sleep(duration);
    }
}

/// Copies a transport's cumulative [`TransportStats`] into gauges named
/// `<prefix>.messages_sent`, `<prefix>.bytes_sent`,
/// `<prefix>.messages_dropped`, `<prefix>.messages_delayed`,
/// `<prefix>.messages_corrupted`, `<prefix>.messages_duplicated`.
///
/// Gauges, not counters: `TransportStats` is itself cumulative, so each
/// fold overwrites the last-known totals instead of double-counting.
/// Values are clamped at `i64::MAX` (a transport that moved 2^63 messages
/// has other problems).
pub fn fold_transport_stats(registry: &MetricsRegistry, prefix: &str, stats: &TransportStats) {
    let fields: [(&str, u64); 6] = [
        ("messages_sent", stats.messages_sent),
        ("bytes_sent", stats.bytes_sent),
        ("messages_dropped", stats.messages_dropped),
        ("messages_delayed", stats.messages_delayed),
        ("messages_corrupted", stats.messages_corrupted),
        ("messages_duplicated", stats.messages_duplicated),
    ];
    for (field, value) in fields {
        let mut name = String::with_capacity(prefix.len() + field.len() + 1);
        name.push_str(prefix);
        name.push('.');
        name.push_str(field);
        registry
            .gauge(&name)
            .set(i64::try_from(value).unwrap_or(i64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceSink, VecSink};
    use teamnet_net::{ChannelTransport, ManualClock};

    #[test]
    fn traced_transport_records_spans_and_counters() {
        let mut mesh = ChannelTransport::mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let obs = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        let traced = TracedTransport::new(a, obs.clone());

        traced.send(1, Tag(7), b"hi").unwrap();
        let got = b.recv(0, Tag(7), Duration::from_secs(1)).unwrap();
        assert_eq!(got, b"hi");
        b.send(0, Tag(8), b"yo").unwrap();
        let _ = traced.recv(1, Tag(8), Duration::from_secs(1)).unwrap();
        let timeout = traced.recv(1, Tag(9), Duration::from_millis(1));
        assert!(matches!(timeout, Err(NetError::Timeout { .. })));

        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counters["net.send.messages"], 1);
        assert_eq!(snap.counters["net.recv.messages"], 1);
        assert_eq!(snap.counters["net.recv.timeouts"], 1);
        assert_eq!(snap.counters["net.send.errors"], 0);
        let lines = sink.to_jsonl();
        assert!(lines.contains(r#""name":"net.send""#), "{lines}");
        assert!(lines.contains(r#""name":"net.recv""#), "{lines}");
        assert!(lines.contains(r#""bytes":2"#), "{lines}");
    }

    #[test]
    fn traced_clock_meters_backoff_sleeps() {
        let registry = MetricsRegistry::new();
        let manual = Arc::new(ManualClock::new());
        let clock = TracedClock::new(Arc::clone(&manual) as Arc<dyn Clock>, &registry);
        clock.sleep(Duration::from_nanos(500));
        clock.sleep(Duration::from_nanos(1500));
        assert_eq!(manual.sleeps(), 2, "sleeps reach the inner clock");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["net.backoff.sleeps"], 2);
        assert_eq!(snap.histograms["net.backoff.sleep.ns"].sum, 2000);
        assert_eq!(clock.now(), manual.now());
    }

    #[test]
    fn transport_stats_fold_into_gauges() {
        let registry = MetricsRegistry::new();
        let stats = TransportStats {
            messages_sent: 10,
            bytes_sent: 999,
            messages_dropped: 3,
            messages_delayed: 2,
            messages_corrupted: 1,
            messages_duplicated: 4,
        };
        fold_transport_stats(&registry, "chaos.master", &stats);
        let snap = registry.snapshot();
        assert_eq!(snap.gauges["chaos.master.messages_sent"], 10);
        assert_eq!(snap.gauges["chaos.master.messages_dropped"], 3);
        assert_eq!(snap.gauges["chaos.master.messages_duplicated"], 4);
        // Re-folding overwrites (gauge semantics), not accumulates.
        fold_transport_stats(&registry, "chaos.master", &stats);
        assert_eq!(registry.snapshot().gauges["chaos.master.messages_sent"], 10);
    }
}
