//! Cross-node trace assembly: the backend of `cargo xtask trace-assemble`.
//!
//! Each node in a cluster writes its own span JSONL (PR 5's per-process
//! islands). This module merges those islands into one causal DAG using
//! the [`TraceContext`] every traced frame carries on the wire:
//!
//! 1. **Parse** each node's events and order them by `seq` — the
//!    tracer-assigned emission order — so assembly is invariant to any
//!    shuffling of the file's lines (JSONL files survive `sort`, `cat`
//!    of rotated segments, etc.).
//! 2. **Pair** every `send` event with its `recv` on the far side: a
//!    send from node A stamped `(trace, span S)` matches the recv on its
//!    destination carrying `rspan = S` from peer A, in emission order
//!    (retries produce multiple identical sends; FIFO pairing keeps them
//!    distinct). Unpaired events are warnings, not errors — chaos drops
//!    frames legitimately.
//! 3. **Reconcile clocks.** Every node's `t_ns` is an offset from its own
//!    tracer origin. For each node pair the minimum observed one-way
//!    deltas `d_ab = min(recv_b - send_a)` and `d_ba` estimate the skew
//!    as `(d_ba - d_ab) / 2` (symmetric-minimum-transit assumption, the
//!    classic NTP-style bound); skews propagate from the reference node
//!    (lowest id) across the pair graph. With one direction only, the
//!    skew degrades to assuming zero minimum transit that way.
//! 4. **Stitch parents.** A span whose `enter` carries `rpeer`/`rparent`
//!    fields was caused by a remote span; it becomes that span's child in
//!    the DAG. A remote parent that does not exist in any input is an
//!    **orphan** — assembly fails loudly, because a silent orphan means a
//!    node's trace file is missing or truncated and every latency number
//!    downstream would be quietly wrong.
//!
//! The per-round **critical-path report** partitions each master `round`
//! span's wall time into `compute` / `wire` / `wait` / `retry` by a
//! priority sweep over the reconciled timeline (see [`classify_leaf`]):
//! the four sums equal the round's wall clock exactly, by construction.

use serde::{Number, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One node's trace input: `(node id, JSONL text)`.
pub type NodeInput = (u64, String);

/// Why assembly failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A line failed to parse; `(node, 1-based line, message)`.
    Parse(u64, usize, String),
    /// Spans referenced remote parents that exist in no input file.
    /// Each entry names the orphan and the missing parent.
    Orphans(Vec<String>),
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::Parse(node, line, msg) => {
                write!(f, "node {node} trace line {line}: {msg}")
            }
            AssembleError::Orphans(orphans) => {
                writeln!(
                    f,
                    "{} orphan span(s) — a trace file is missing or truncated:",
                    orphans.len()
                )?;
                for o in orphans {
                    writeln!(f, "  {o}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AssembleError {}

/// One span in the assembled DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Node that recorded the span.
    pub node: u64,
    /// Tracer-local span id.
    pub span: u64,
    /// Span name.
    pub name: String,
    /// Local parent span id (0 = none).
    pub parent: u64,
    /// Remote causal parent, when the span was opened for a traced frame.
    pub remote_parent: Option<(u64, u64)>,
    /// Trace id, when the span carries one (`trace` enter field).
    pub trace: Option<u64>,
    /// Enter timestamp, node-local nanoseconds.
    pub t_enter: u64,
    /// Exit timestamp, node-local nanoseconds (`t_enter` if never exited).
    pub t_exit: u64,
    /// Numeric enter fields, in recorded order.
    pub fields: Vec<(String, u64)>,
}

/// One matched cross-node message: a `send` paired with its `recv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEdge {
    /// Frame kind name (`input`, `result`, `load_chunk`, …).
    pub name: String,
    /// Sending node and the span the send was stamped with.
    pub from: (u64, u64),
    /// Receiving node and the span open at recv time (0 = none).
    pub to: (u64, u64),
    /// Trace id stamped on the frame.
    pub trace: u64,
    /// Send timestamp, sender-local nanoseconds.
    pub t_send: u64,
    /// Recv timestamp, receiver-local nanoseconds.
    pub t_recv: u64,
    /// Wire size of the frame.
    pub bytes: u64,
}

/// The merged causal DAG plus everything derived from it.
#[derive(Debug, Clone)]
pub struct Assembled {
    /// Every span, keyed `(node, span id)`.
    pub spans: BTreeMap<(u64, u64), SpanNode>,
    /// Matched cross-node edges, in deterministic order.
    pub edges: Vec<WireEdge>,
    /// Per-node clock skew: adding `skews[&node]` to a node-local `t_ns`
    /// yields the reference node's timeline.
    pub skews: BTreeMap<u64, i128>,
    /// Non-fatal oddities (unmatched sends/recvs, disconnected nodes).
    pub warnings: Vec<String>,
}

#[derive(Debug, Clone)]
struct PointEv {
    seq: u64,
    span: u64,
    name: String,
    t_ns: u64,
    peer: u64,
    trace: u64,
    rspan: u64,
    bytes: u64,
}

fn field_u64(value: &Value, key: &str) -> Option<u64> {
    match value.get(key) {
        Some(Value::Num(Number::PosInt(n))) => Some(*n),
        _ => None,
    }
}

fn fields_map(value: &Value) -> Vec<(String, u64)> {
    value
        .get("fields")
        .and_then(Value::as_map)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, v)| match v {
                    Value::Num(Number::PosInt(n)) => Some((k.clone(), *n)),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Merges per-node trace files into one causal DAG.
///
/// # Errors
///
/// [`AssembleError::Parse`] for a malformed line;
/// [`AssembleError::Orphans`] when any span names a remote parent that
/// exists in no input.
pub fn assemble(inputs: &[NodeInput]) -> Result<Assembled, AssembleError> {
    let mut spans: BTreeMap<(u64, u64), SpanNode> = BTreeMap::new();
    let mut sends: Vec<(u64, PointEv)> = Vec::new();
    let mut recvs: Vec<(u64, PointEv)> = Vec::new();
    let mut warnings = Vec::new();

    for (node, text) in inputs {
        let node = *node;
        // Typed events keyed by seq; sorting by seq restores emission
        // order no matter how the file's lines were permuted.
        let mut exits: Vec<(u64, u64, u64)> = Vec::new(); // (seq, span, t_ns)
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let value: Value = serde_json::from_str(line).map_err(|e| {
                AssembleError::Parse(node, lineno, format!("not valid JSON: {e:?}"))
            })?;
            let ev = value.get("ev").and_then(Value::as_str).ok_or_else(|| {
                AssembleError::Parse(node, lineno, "event missing string `ev`".into())
            })?;
            let need = |key: &str| {
                field_u64(&value, key).ok_or_else(|| {
                    AssembleError::Parse(
                        node,
                        lineno,
                        format!("`{ev}` event missing numeric `{key}`"),
                    )
                })
            };
            let name = || {
                value
                    .get("name")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        AssembleError::Parse(
                            node,
                            lineno,
                            format!("`{ev}` event missing string `name`"),
                        )
                    })
            };
            match ev {
                "enter" => {
                    let span = need("span")?;
                    let fields = fields_map(&value);
                    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
                    let remote_parent = match (get("rpeer"), get("rparent")) {
                        (Some(p), Some(s)) => Some((p, s)),
                        _ => None,
                    };
                    spans.insert(
                        (node, span),
                        SpanNode {
                            node,
                            span,
                            name: name()?,
                            parent: need("parent")?,
                            remote_parent,
                            trace: get("trace"),
                            t_enter: need("t_ns")?,
                            t_exit: need("t_ns")?,
                            fields,
                        },
                    );
                }
                "exit" => exits.push((need("seq")?, need("span")?, need("t_ns")?)),
                "send" | "recv" => {
                    let fields = fields_map(&value);
                    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
                    let point = PointEv {
                        seq: need("seq")?,
                        span: need("span")?,
                        name: name()?,
                        t_ns: need("t_ns")?,
                        peer: get("peer").unwrap_or(0),
                        trace: get("trace").unwrap_or(0),
                        rspan: get("rspan").unwrap_or(0),
                        bytes: get("bytes").unwrap_or(0),
                    };
                    if ev == "send" {
                        sends.push((node, point));
                    } else {
                        recvs.push((node, point));
                    }
                }
                "mark" => {}
                other => {
                    return Err(AssembleError::Parse(
                        node,
                        lineno,
                        format!("unknown event kind `{other}`"),
                    ))
                }
            }
        }
        for (_seq, span, t_ns) in exits {
            if let Some(s) = spans.get_mut(&(node, span)) {
                s.t_exit = t_ns;
            }
        }
    }

    // Emission order within each node, then node order: the deterministic
    // pairing order regardless of input-line permutation.
    sends.sort_by_key(|(node, p)| (*node, p.seq));
    recvs.sort_by_key(|(node, p)| (*node, p.seq));

    // Pair sends with recvs FIFO per (sender, receiver, trace, sender
    // span, kind) — retries send byte-identical frames, so order is the
    // only thing distinguishing them.
    let mut pending: BTreeMap<(u64, u64, u64, u64, String), Vec<usize>> = BTreeMap::new();
    for (i, (node, p)) in recvs.iter().enumerate() {
        pending
            .entry((p.peer, *node, p.trace, p.rspan, p.name.clone()))
            .or_default()
            .push(i);
    }
    for queue in pending.values_mut() {
        queue.reverse(); // pop() from the back = FIFO
    }
    let mut edges = Vec::new();
    let mut matched_recvs = vec![false; recvs.len()];
    for (node, p) in &sends {
        let key = (*node, p.peer, p.trace, p.span, p.name.clone());
        match pending.get_mut(&key).and_then(Vec::pop) {
            Some(i) => {
                matched_recvs[i] = true;
                let (rnode, r) = &recvs[i];
                edges.push(WireEdge {
                    name: p.name.clone(),
                    from: (*node, p.span),
                    to: (*rnode, r.span),
                    trace: p.trace,
                    t_send: p.t_ns,
                    t_recv: r.t_ns,
                    bytes: p.bytes,
                });
            }
            None => warnings.push(format!(
                "unmatched send: {} n{}:{} -> n{} trace={} (frame lost or peer untraced)",
                p.name, node, p.span, p.peer, p.trace
            )),
        }
    }
    for (i, (node, p)) in recvs.iter().enumerate() {
        if !matched_recvs[i] {
            warnings.push(format!(
                "unmatched recv: {} n{} <- n{} rspan={} trace={}",
                p.name, node, p.peer, p.rspan, p.trace
            ));
        }
    }
    edges.sort_by(|a, b| {
        (a.trace, a.from, a.t_send, &a.name, a.to).cmp(&(b.trace, b.from, b.t_send, &b.name, b.to))
    });

    // Clock reconciliation: minimum one-way deltas per directed pair.
    let mut min_delta: BTreeMap<(u64, u64), i128> = BTreeMap::new();
    for e in &edges {
        let d = i128::from(e.t_recv) - i128::from(e.t_send);
        min_delta
            .entry((e.from.0, e.to.0))
            .and_modify(|m| *m = (*m).min(d))
            .or_insert(d);
    }
    let mut nodes: Vec<u64> = inputs.iter().map(|(n, _)| *n).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut skews: BTreeMap<u64, i128> = BTreeMap::new();
    if let Some(&reference) = nodes.first() {
        skews.insert(reference, 0);
        // BFS over the pair graph from the reference node.
        let mut frontier = vec![reference];
        while let Some(a) = frontier.pop() {
            let base = skews[&a];
            for &b in &nodes {
                if skews.contains_key(&b) {
                    continue;
                }
                let d_ab = min_delta.get(&(a, b)).copied();
                let d_ba = min_delta.get(&(b, a)).copied();
                // t_in_a's_frame = t_b_local + skew. With transit τ and
                // skew σ: d_ab = τ1 - σ, d_ba = τ2 + σ; τ1 ≈ τ2 gives
                // σ = (d_ba - d_ab) / 2. One direction only: assume the
                // minimum transit that way was zero.
                let skew_rel = match (d_ab, d_ba) {
                    (Some(ab), Some(ba)) => (ba - ab) / 2,
                    (Some(ab), None) => -ab,
                    (None, Some(ba)) => ba,
                    (None, None) => continue,
                };
                skews.insert(b, base + skew_rel);
                frontier.push(b);
            }
        }
    }
    for &n in &nodes {
        if !skews.contains_key(&n) {
            warnings.push(format!(
                "node {n} shares no matched edge with the reference timeline; assuming zero skew"
            ));
            skews.insert(n, 0);
        }
    }

    // Orphan check: every remote parent must exist.
    let orphans: Vec<String> = spans
        .values()
        .filter_map(|s| {
            let (rpeer, rparent) = s.remote_parent?;
            (!spans.contains_key(&(rpeer, rparent))).then(|| {
                format!(
                    "span n{}:{} ({}) names remote parent n{rpeer}:{rparent}, which no input contains",
                    s.node, s.span, s.name
                )
            })
        })
        .collect();
    if !orphans.is_empty() {
        return Err(AssembleError::Orphans(orphans));
    }

    Ok(Assembled {
        spans,
        edges,
        skews,
        warnings,
    })
}

impl Assembled {
    /// A node-local timestamp moved onto the reference timeline.
    fn adjusted(&self, node: u64, t_ns: u64) -> i128 {
        i128::from(t_ns) + self.skews.get(&node).copied().unwrap_or(0)
    }

    /// Renders the DAG: one line per span in `(node, span)` order with
    /// its resolved causal parent, then one line per wire edge. Byte
    /// stable for byte-identical inputs in any line order.
    pub fn render_dag(&self) -> String {
        let mut out = String::new();
        for s in self.spans.values() {
            let parent = match (s.remote_parent, s.parent) {
                (Some((rn, rs)), _) => format!("n{rn}:{rs}"),
                (None, 0) => "-".to_string(),
                (None, p) => format!("n{}:{p}", s.node),
            };
            let trace = s.trace.map(|t| format!(" trace={t}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "span n{}:{} parent={parent} {}{trace} t=[{}..{}]",
                s.node, s.span, s.name, s.t_enter, s.t_exit
            );
        }
        for e in &self.edges {
            let transit = self.adjusted(e.to.0, e.t_recv) - self.adjusted(e.from.0, e.t_send);
            let _ = writeln!(
                out,
                "edge {} n{}:{} -> n{}:{} trace={} bytes={} transit={transit}",
                e.name, e.from.0, e.from.1, e.to.0, e.to.1, e.trace, e.bytes
            );
        }
        out
    }

    /// All spans belonging to `trace`: the round span's local descendants
    /// plus every remotely-parented span carrying the trace id and *its*
    /// local descendants.
    fn trace_members(&self, root: (u64, u64), trace: u64) -> Vec<&SpanNode> {
        let mut children: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
        for (&key, s) in &self.spans {
            if s.parent != 0 && s.remote_parent.is_none() {
                children.entry((s.node, s.parent)).or_default().push(key);
            }
        }
        let mut seeds = vec![root];
        for (&key, s) in &self.spans {
            if key != root && s.trace == Some(trace) {
                seeds.push(key);
            }
        }
        let mut seen: BTreeMap<(u64, u64), ()> = BTreeMap::new();
        let mut out = Vec::new();
        while let Some(key) = seeds.pop() {
            if seen.insert(key, ()).is_some() {
                continue;
            }
            if let Some(s) = self.spans.get(&key) {
                out.push(s);
                if let Some(kids) = children.get(&key) {
                    seeds.extend(kids.iter().copied());
                }
            }
        }
        out.sort_by_key(|s| (s.node, s.span));
        out
    }

    /// The per-round critical-path attribution: every `round` span's wall
    /// time partitioned into compute / wire / wait / retry on the
    /// reconciled timeline. The four columns sum to `wall` exactly.
    pub fn critical_path(&self) -> Vec<RoundAttribution> {
        let mut rounds: Vec<RoundAttribution> = Vec::new();
        for s in self.spans.values() {
            if s.name != "round" {
                continue;
            }
            let t0 = self.adjusted(s.node, s.t_enter);
            let t1 = self.adjusted(s.node, s.t_exit).max(t0);
            let trace = s.trace.unwrap_or(0);
            // Classified intervals on the reference timeline.
            let mut intervals: Vec<(Class, i128, i128)> = Vec::new();
            let members = self.trace_members((s.node, s.span), trace);
            let has_children: std::collections::BTreeSet<(u64, u64)> = members
                .iter()
                .filter(|m| m.parent != 0 && m.remote_parent.is_none())
                .map(|m| (m.node, m.parent))
                .collect();
            for m in &members {
                if (m.node, m.span) == (s.node, s.span) {
                    continue;
                }
                if has_children.contains(&(m.node, m.span)) {
                    continue; // structural: its leaves carry the time
                }
                if let Some(class) = classify_leaf(&m.name) {
                    intervals.push((
                        class,
                        self.adjusted(m.node, m.t_enter),
                        self.adjusted(m.node, m.t_exit),
                    ));
                }
            }
            for e in &self.edges {
                if e.trace == trace {
                    intervals.push((
                        Class::Wire,
                        self.adjusted(e.from.0, e.t_send),
                        self.adjusted(e.to.0, e.t_recv),
                    ));
                }
            }
            rounds.push(RoundAttribution {
                node: s.node,
                span: s.span,
                trace,
                round_idx: s
                    .fields
                    .iter()
                    .find(|(n, _)| n == "round_idx")
                    .map(|(_, v)| *v),
                wall_ns: (t1 - t0) as u64,
                attr: sweep(t0, t1, &intervals),
            });
        }
        rounds.sort_by_key(|r| (r.node, r.span));
        rounds
    }

    /// Renders [`Self::critical_path`] as a fixed-width, byte-stable
    /// table plus a totals row.
    pub fn critical_path_report(&self) -> String {
        let rounds = self.critical_path();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5}  {:>20}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
            "round", "trace", "wall(ns)", "compute(ns)", "wire(ns)", "wait(ns)", "retry(ns)"
        );
        let mut total = Attribution::default();
        let mut wall = 0u64;
        for r in &rounds {
            let idx = r
                .round_idx
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{idx:>5}  {:>20}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
                r.trace,
                r.wall_ns,
                r.attr.compute_ns,
                r.attr.wire_ns,
                r.attr.wait_ns,
                r.attr.retry_ns
            );
            wall += r.wall_ns;
            total.compute_ns += r.attr.compute_ns;
            total.wire_ns += r.attr.wire_ns;
            total.wait_ns += r.attr.wait_ns;
            total.retry_ns += r.attr.retry_ns;
        }
        let _ = writeln!(
            out,
            "{:>5}  {:>20}  {wall:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
            "all",
            rounds.len(),
            total.compute_ns,
            total.wire_ns,
            total.wait_ns,
            total.retry_ns
        );
        out
    }
}

/// Where one slice of a round's wall time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    /// Bytes in flight or being pushed through a socket.
    Wire = 1,
    /// Somebody is doing real work (expert forward, argmin, decode).
    Compute = 2,
    /// Backoff sleeps before resends: pure waste, highest diagnostic
    /// priority.
    Retry = 3,
}

/// Classifies a leaf span for attribution; `None` means the span's time
/// is waiting (containers like `gather.await` — time is attributed by
/// whatever overlaps them, or `wait` if nothing does).
fn classify_leaf(name: &str) -> Option<Class> {
    if name.starts_with("retry.") {
        Some(Class::Retry)
    } else if name.ends_with(".send") {
        Some(Class::Wire)
    } else if name.contains("gather") || name.contains("await") || name.contains("coalesce") {
        None
    } else {
        Some(Class::Compute)
    }
}

/// The four-way split of one round's wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Time somebody was computing.
    pub compute_ns: u64,
    /// Time bytes were on the wire (or in send syscalls).
    pub wire_ns: u64,
    /// Time nothing attributable was happening (straggler wait, idle).
    pub wait_ns: u64,
    /// Time burned in retry backoff.
    pub retry_ns: u64,
}

/// One round's attribution row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundAttribution {
    /// Node that ran the round (the master).
    pub node: u64,
    /// The round span's id on that node.
    pub span: u64,
    /// The round's trace id.
    pub trace: u64,
    /// `round_idx` enter field, when recorded.
    pub round_idx: Option<u64>,
    /// Round wall time on the reconciled timeline.
    pub wall_ns: u64,
    /// The four-way split; sums to `wall_ns` exactly.
    pub attr: Attribution,
}

/// Priority sweep: partitions `[t0, t1]` among the classified intervals,
/// highest [`Class`] winning where they overlap, `wait` where none cover.
fn sweep(t0: i128, t1: i128, intervals: &[(Class, i128, i128)]) -> Attribution {
    let mut bounds: Vec<i128> = vec![t0, t1];
    for &(_, a, b) in intervals {
        for t in [a, b] {
            if t > t0 && t < t1 {
                bounds.push(t);
            }
        }
    }
    bounds.sort_unstable();
    bounds.dedup();
    let mut attr = Attribution::default();
    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let len = (b - a) as u64;
        let class = intervals
            .iter()
            .filter(|&&(_, s, e)| s <= a && e >= b)
            .map(|&(c, _, _)| c)
            .max();
        match class {
            Some(Class::Retry) => attr.retry_ns += len,
            Some(Class::Compute) => attr.compute_ns += len,
            Some(Class::Wire) => attr.wire_ns += len,
            None => attr.wait_ns += len,
        }
    }
    attr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Obs, TraceSink, VecSink};
    use std::sync::Arc;
    use std::time::Duration;
    use teamnet_net::{Clock, ManualClock, TraceContext};

    /// Builds a two-node trace by hand: master round with a send, worker
    /// span parented on it, reply edge back.
    fn two_node_inputs() -> Vec<NodeInput> {
        let clock = Arc::new(ManualClock::new());
        let m_sink = Arc::new(VecSink::new());
        let w_sink = Arc::new(VecSink::new());
        let master = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&m_sink) as Arc<dyn TraceSink>,
        );
        let worker = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&w_sink) as Arc<dyn TraceSink>,
        );
        let trace = 99u64;
        {
            let _round = master.span("round", &[("round_idx", 0), ("trace", trace)]);
            clock.advance(Duration::from_nanos(10));
            let sctx = {
                let _send = master.span("round.send", &[("peer", 1)]);
                let ctx = master.tracer.current_ctx(trace);
                clock.advance(Duration::from_nanos(20));
                master.tracer.send_event("input", 1, ctx, 256);
                ctx
            };
            // Worker processes, causally under the master's send span.
            {
                let _w = worker.span(
                    "worker.recv",
                    &[
                        ("trace", trace),
                        ("rpeer", 0),
                        ("rparent", sctx.parent_span),
                    ],
                );
                worker.tracer.recv_event("input", 0, sctx, 256);
                clock.advance(Duration::from_nanos(40));
                {
                    let _f = worker.span("worker.forward", &[]);
                    clock.advance(Duration::from_nanos(30));
                }
                let wctx = worker.tracer.current_ctx(trace);
                worker.tracer.send_event("result", 0, wctx, 128);
            }
            clock.advance(Duration::from_nanos(15));
            {
                let _g = master.span("round.gather", &[]);
                let rctx = TraceContext {
                    trace_id: trace,
                    parent_span: 1, // the worker.recv span on node 1
                };
                master.tracer.recv_event("result", 1, rctx, 128);
                clock.advance(Duration::from_nanos(5));
            }
        }
        vec![(0, m_sink.to_jsonl()), (1, w_sink.to_jsonl())]
    }

    #[test]
    fn assembles_edges_and_remote_parents() {
        let asm = assemble(&two_node_inputs()).unwrap();
        assert_eq!(asm.edges.len(), 2, "{:?}", asm.warnings);
        let worker_span = &asm.spans[&(1, 1)];
        assert_eq!(worker_span.remote_parent, Some((0, 2)));
        assert!(asm.warnings.is_empty(), "{:?}", asm.warnings);
        // Shared ManualClock → both directions' min deltas are symmetric
        // enough that skew stays small.
        assert_eq!(asm.skews[&0], 0);
    }

    #[test]
    fn attribution_sums_to_wall_time() {
        let asm = assemble(&two_node_inputs()).unwrap();
        let rounds = asm.critical_path();
        assert_eq!(rounds.len(), 1);
        let r = &rounds[0];
        assert_eq!(
            r.attr.compute_ns + r.attr.wire_ns + r.attr.wait_ns + r.attr.retry_ns,
            r.wall_ns,
            "{r:?}"
        );
        assert!(r.attr.compute_ns > 0, "{r:?}");
        let report = asm.critical_path_report();
        assert!(report.contains("compute(ns)"), "{report}");
    }

    #[test]
    fn shuffled_lines_assemble_identically() {
        let inputs = two_node_inputs();
        let baseline = assemble(&inputs).unwrap();
        let mut shuffled: Vec<NodeInput> = Vec::new();
        for (node, text) in &inputs {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.reverse();
            shuffled.push((*node, lines.join("\n") + "\n"));
        }
        let back = assemble(&shuffled).unwrap();
        assert_eq!(back.render_dag(), baseline.render_dag());
        assert_eq!(back.critical_path_report(), baseline.critical_path_report());
    }

    #[test]
    fn missing_node_file_is_a_loud_orphan_failure() {
        let inputs = two_node_inputs();
        // Drop the master's file: the worker's remote parent vanishes.
        let only_worker = vec![inputs[1].clone()];
        let err = assemble(&only_worker).unwrap_err();
        match err {
            AssembleError::Orphans(orphans) => {
                assert_eq!(orphans.len(), 1, "{orphans:?}");
                assert!(orphans[0].contains("n0:2"), "{orphans:?}");
            }
            other => panic!("expected orphans, got {other:?}"),
        }
    }

    #[test]
    fn unmatched_sends_warn_but_do_not_fail() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let obs = Obs::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        let _s = obs.span("round", &[]);
        obs.tracer
            .send_event("input", 1, obs.tracer.current_ctx(5), 64);
        let asm = assemble(&[(0, sink.to_jsonl())]).unwrap();
        assert_eq!(asm.edges.len(), 0);
        assert_eq!(asm.warnings.len(), 1, "{:?}", asm.warnings);
        assert!(asm.warnings[0].contains("unmatched send"));
    }

    #[test]
    fn clock_skew_is_reconciled_via_min_deltas() {
        // Two nodes, node 1's clock 1000ns ahead; symmetric 50ns transit.
        let mk = |lines: &[String]| lines.join("\n") + "\n";
        let master = mk(&[
            r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"round","t_ns":0,"fields":{"round_idx":0,"trace":7}}"#.to_string(),
            r#"{"seq":1,"ev":"send","span":1,"name":"input","t_ns":100,"fields":{"peer":1,"trace":7,"bytes":10}}"#.to_string(),
            r#"{"seq":2,"ev":"recv","span":1,"name":"result","t_ns":400,"fields":{"peer":1,"trace":7,"rspan":1,"bytes":10}}"#.to_string(),
            r#"{"seq":3,"ev":"exit","span":1,"name":"round","t_ns":500,"dur_ns":500}"#.to_string(),
        ]);
        let worker = mk(&[
            r#"{"seq":0,"ev":"enter","span":1,"parent":0,"name":"worker.recv","t_ns":1150,"fields":{"trace":7,"rpeer":0,"rparent":1}}"#.to_string(),
            r#"{"seq":1,"ev":"recv","span":1,"name":"input","t_ns":1150,"fields":{"peer":0,"trace":7,"rspan":1,"bytes":10}}"#.to_string(),
            r#"{"seq":2,"ev":"send","span":1,"name":"result","t_ns":1350,"fields":{"peer":0,"trace":7,"bytes":10}}"#.to_string(),
            r#"{"seq":3,"ev":"exit","span":1,"name":"worker.recv","t_ns":1350,"dur_ns":200}"#.to_string(),
        ]);
        let asm = assemble(&[(0, master), (1, worker)]).unwrap();
        // d_01 = 1150 - 100 = 1050; d_10 = 400 - 1350 = -950;
        // skew = (d_10 - d_01)/2 = -1000: node 1 is 1000ns ahead.
        assert_eq!(asm.skews[&1], -1000);
        // After reconciliation both edges show the true 50ns transit.
        let dag = asm.render_dag();
        assert!(dag.contains("transit=50"), "{dag}");
    }
}
