//! Noisy top-k gating (Shazeer et al., 2017) — the gate of the SG-MoE
//! baseline.
//!
//! For each example, gate logits are `x·W_g` plus (during training)
//! Gaussian noise scaled by `softplus(x·W_noise)`. Only the top-k logits
//! keep non-zero gate values, renormalized by softmax over the kept set.
//! An importance loss (the squared coefficient of variation of per-expert
//! total gate mass) discourages the gate from collapsing onto one expert —
//! Shazeer's answer to the same "richer gets richer" problem TeamNet
//! solves with its proportional controller.

use rand::Rng;
use teamnet_tensor::Tensor;

/// Per-row sparse gate values and the bookkeeping needed for backprop.
#[derive(Debug, Clone)]
pub struct GatingOutput {
    /// Dense `[n, K]` gate value matrix; exactly `top_k` non-zeros per row.
    pub gates: Tensor,
    /// The kept expert indices per row (descending gate logit).
    pub top_indices: Vec<Vec<usize>>,
}

/// Numerically stable `softplus(x) = ln(1 + eˣ)`.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else {
        x.exp().ln_1p()
    }
}

/// Computes noisy top-k gates from clean logits `[n, K]` and (optionally,
/// for training) noise-scale logits `[n, K]`.
///
/// # Panics
///
/// Panics unless `1 <= top_k <= K` and the shapes agree.
pub fn noisy_top_k(
    clean_logits: &Tensor,
    noise_logits: Option<&Tensor>,
    top_k: usize,
    rng: &mut impl Rng,
) -> GatingOutput {
    assert_eq!(clean_logits.rank(), 2, "gate logits must be [n, K]");
    let (n, k) = (clean_logits.dims()[0], clean_logits.dims()[1]);
    assert!(top_k >= 1 && top_k <= k, "top_k must be in 1..=K");

    let mut noisy = clean_logits.clone();
    if let Some(noise) = noise_logits {
        assert!(
            noise.shape().same_as(clean_logits.shape()),
            "noise logits shape mismatch"
        );
        for (v, &s) in noisy.data_mut().iter_mut().zip(noise.data()) {
            let eps: f32 = {
                // Box–Muller standard normal.
                let u1: f32 = 1.0 - rng.gen::<f32>();
                let u2: f32 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            };
            *v += eps * softplus(s);
        }
    }

    let mut gates = Tensor::zeros([n, k]);
    let mut top_indices = Vec::with_capacity(n);
    for r in 0..n {
        let row = noisy.row(r);
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        let kept = &order[..top_k];
        // Softmax over the kept logits only.
        let max = kept
            .iter()
            .map(|&i| row[i])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut exp_sum = 0.0f32;
        let exps: Vec<f32> = kept
            .iter()
            .map(|&i| {
                let e = (row[i] - max).exp();
                exp_sum += e;
                e
            })
            .collect();
        for (&i, e) in kept.iter().zip(exps) {
            gates.set(&[r, i], e / exp_sum);
        }
        top_indices.push(kept.to_vec());
    }
    GatingOutput { gates, top_indices }
}

/// Backpropagates `d_gates` (`[n, K]`, gradient of the loss w.r.t. the
/// dense gate values) to the gate *logits*, through the per-row softmax
/// over each row's kept set. Entries outside the kept set receive zero
/// gradient (the hard top-k selection is treated as constant, as in the
/// original implementation).
pub fn gate_logit_grad(gating: &GatingOutput, d_gates: &Tensor) -> Tensor {
    let (n, k) = (gating.gates.dims()[0], gating.gates.dims()[1]);
    assert!(
        d_gates.shape().same_as(gating.gates.shape()),
        "gate grad shape mismatch"
    );
    let mut out = Tensor::zeros([n, k]);
    for r in 0..n {
        let kept = &gating.top_indices[r];
        // softmax jacobian within the kept set: dz_i = g_i (dg_i − Σ_j dg_j g_j).
        let dot: f32 = kept
            .iter()
            .map(|&i| d_gates.at(&[r, i]) * gating.gates.at(&[r, i]))
            .sum();
        for &i in kept {
            let g = gating.gates.at(&[r, i]);
            out.set(&[r, i], g * (d_gates.at(&[r, i]) - dot));
        }
    }
    out
}

/// The importance loss: `CV²` of per-expert total gate mass, and its
/// gradient with respect to the dense gate matrix.
///
/// Returns `(loss, d_loss/d_gates)`.
pub fn importance_loss(gates: &Tensor) -> (f32, Tensor) {
    let (n, k) = (gates.dims()[0], gates.dims()[1]);
    let importance = gates.sum_cols(); // [K]
    let mean = importance.mean();
    if mean <= 1e-12 {
        return (0.0, Tensor::zeros([n, k]));
    }
    let var = importance.map(|x| (x - mean) * (x - mean)).mean();
    let loss = var / (mean * mean);

    // d loss / d importance_i = 2(x_i − m)/(K m²) − 2·Var/(K m³);
    // d importance_i / d gates[r][i] = 1.
    let kf = k as f32;
    let d_imp: Vec<f32> = importance
        .data()
        .iter()
        .map(|&x| 2.0 * (x - mean) / (kf * mean * mean) - 2.0 * var / (kf * mean * mean * mean))
        .collect();
    let mut grad = Tensor::zeros([n, k]);
    for r in 0..n {
        for (c, &d) in d_imp.iter().enumerate() {
            grad.set(&[r, c], d);
        }
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softplus_basics() {
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert!((softplus(30.0) - 30.0).abs() < 1e-4);
        assert!(softplus(-30.0) < 1e-8);
    }

    #[test]
    fn exactly_top_k_nonzeros_summing_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = Tensor::rand_uniform([6, 5], -2.0, 2.0, &mut rng);
        let out = noisy_top_k(&logits, None, 2, &mut rng);
        for r in 0..6 {
            let row = out.gates.row(r);
            let nonzero = row.iter().filter(|&&g| g > 0.0).count();
            assert_eq!(nonzero, 2, "row {r}");
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert_eq!(out.top_indices[r].len(), 2);
        }
    }

    #[test]
    fn without_noise_top_one_is_argmax() {
        let logits = Tensor::from_vec(vec![0.1, 2.0, -1.0, 3.0, 0.0, 1.0], [2, 3]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let out = noisy_top_k(&logits, None, 1, &mut rng);
        assert_eq!(out.top_indices[0], vec![1]);
        assert_eq!(out.top_indices[1], vec![0]);
        assert_eq!(out.gates.at(&[0, 1]), 1.0);
    }

    #[test]
    fn noise_perturbs_selection_sometimes() {
        // With large noise scale, selections must differ across draws.
        let logits = Tensor::zeros([50, 4]);
        let noise = Tensor::full([50, 4], 3.0); // softplus(3) ≈ 3.05
        let mut rng = StdRng::seed_from_u64(3);
        let a = noisy_top_k(&logits, Some(&noise), 1, &mut rng);
        let b = noisy_top_k(&logits, Some(&noise), 1, &mut rng);
        assert_ne!(a.top_indices, b.top_indices);
    }

    #[test]
    fn gate_logit_grad_matches_finite_differences() {
        // Build a fixed top-k selection, then check the softmax-restricted
        // jacobian numerically.
        let logits = Tensor::from_vec(vec![2.0, 1.0, -3.0], [1, 3]).unwrap();
        let d_gates = Tensor::from_vec(vec![0.7, -0.3, 0.9], [1, 3]).unwrap();

        let eval = |l: &Tensor| -> (GatingOutput, f32) {
            let mut rng_inner = StdRng::seed_from_u64(0);
            let out = noisy_top_k(l, None, 2, &mut rng_inner);
            let score: f32 = out
                .gates
                .data()
                .iter()
                .zip(d_gates.data())
                .map(|(&g, &d)| g * d)
                .sum();
            (out, score)
        };
        let (gating, _) = eval(&logits);
        let analytic = gate_logit_grad(&gating, &d_gates);

        let eps = 1e-3;
        for idx in 0..2 {
            // only kept entries (0 and 1) get gradient
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (eval(&lp).1 - eval(&lm).1) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 1e-3,
                "logit {idx}: numeric {num} vs analytic {}",
                analytic.data()[idx]
            );
        }
        // The dropped expert gets zero gradient.
        assert_eq!(analytic.data()[2], 0.0);
    }

    #[test]
    fn importance_loss_zero_when_balanced() {
        let gates = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], [2, 2]).unwrap();
        let (loss, grad) = importance_loss(&gates);
        assert!(loss < 1e-9);
        assert!(grad.norm_sq() < 1e-9);
    }

    #[test]
    fn importance_loss_penalizes_collapse() {
        let balanced = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], [2, 2]).unwrap();
        let collapsed = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], [2, 2]).unwrap();
        assert!(importance_loss(&collapsed).0 > importance_loss(&balanced).0);
    }

    #[test]
    fn importance_gradient_matches_finite_differences() {
        let gates = Tensor::from_vec(vec![0.9, 0.1, 0.6, 0.4, 0.8, 0.2], [3, 2]).unwrap();
        let (_, grad) = importance_loss(&gates);
        let eps = 1e-3;
        for idx in 0..gates.len() {
            let mut gp = gates.clone();
            gp.data_mut()[idx] += eps;
            let mut gm = gates.clone();
            gm.data_mut()[idx] -= eps;
            let num = (importance_loss(&gp).0 - importance_loss(&gm).0) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "gate {idx}: numeric {num} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "top_k must be in")]
    fn rejects_bad_top_k() {
        let mut rng = StdRng::seed_from_u64(0);
        noisy_top_k(&Tensor::zeros([1, 2]), None, 3, &mut rng);
    }
}
