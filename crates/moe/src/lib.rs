//! # teamnet-moe
//!
//! The Sparsely-Gated Mixture-of-Experts baseline (Shazeer et al., 2017)
//! that the TeamNet paper compares against: K expert networks jointly
//! trained with a linear noisy-top-k gate and an importance
//! load-balancing loss, plus the two distributed deployments the paper
//! benchmarks — SG-MoE-G (RPC transport, the gRPC stand-in) and SG-MoE-M
//! (point-to-point messages, the MPI stand-in).
//!
//! # Examples
//!
//! ```no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use teamnet_data::synth_digits;
//! use teamnet_moe::{SgMoe, SgMoeConfig};
//! use teamnet_nn::ModelSpec;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = synth_digits(2_000, &mut rng);
//! let (train, test) = data.split(1_600);
//! let mut moe = SgMoe::new(ModelSpec::mlp(4, 64), 2, SgMoeConfig::default());
//! moe.train(&train);
//! println!("SG-MoE accuracy: {:.3}", moe.evaluate(&test));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributed;
mod gating;
mod model;

pub use distributed::{
    infer_p2p, infer_rpc, serve_expert_p2p, serve_expert_rpc, shutdown_experts_p2p, METHOD_FORWARD,
    TAG_EXPERT_INPUT, TAG_EXPERT_LOGITS, TAG_EXPERT_SHUTDOWN,
};
pub use gating::{gate_logit_grad, importance_loss, noisy_top_k, softplus, GatingOutput};
pub use model::{SgMoe, SgMoeConfig};
