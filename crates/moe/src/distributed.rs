//! Distributed SG-MoE inference: the paper's SG-MoE-G (gRPC) and SG-MoE-M
//! (MPI) deployments.
//!
//! Expert i runs on node i; the gate lives on node 0 (co-located with
//! expert 0, as in the paper: "the gate is placed on one of the edge
//! nodes"). Per inference the gateway computes the top-k routing, ships
//! the input to each selected remote expert, and combines the returned
//! logits with the gate weights.
//!
//! Two transports for the expert hop:
//!
//! * [`infer_rpc`] — unary request/response calls (the gRPC stand-in);
//! * [`infer_p2p`] — raw tagged point-to-point sends and receives (the
//!   MPI stand-in).
//!
//! Either way the per-inference message count is `2·top_k`, versus
//! TeamNet's `2·(K−1)` one-shot broadcast/gather — but SG-MoE must also
//! run its gate before any expert can start, serializing the pipeline.

use crate::gating::GatingOutput;
use crate::model::SgMoe;
use std::time::Duration;
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::rpc::{serve, RpcClient, ServerControl};
use teamnet_net::{NetError, Tag, Transport};
use teamnet_nn::{Layer, Mode, Sequential};
use teamnet_tensor::Tensor;

/// RPC method id: forward a batch through the local expert.
pub const METHOD_FORWARD: u32 = 1;
/// Point-to-point tag carrying expert inputs.
pub const TAG_EXPERT_INPUT: Tag = Tag(0x30E0_0001);
/// Point-to-point tag carrying expert logits.
pub const TAG_EXPERT_LOGITS: Tag = Tag(0x30E0_0002);
/// Point-to-point tag asking an expert server to exit.
pub const TAG_EXPERT_SHUTDOWN: Tag = Tag(0x30E0_0003);

fn forward_bytes(expert: &mut Sequential, payload: &[u8]) -> Result<Vec<u8>, NetError> {
    let (dims, data) = decode_f32s(payload)?;
    let images = Tensor::from_vec(data, dims)
        .map_err(|e| NetError::Malformed(format!("expert input: {e}")))?;
    let logits = expert.forward(&images, Mode::Eval);
    Ok(encode_f32s(logits.dims(), logits.data()))
}

/// Serves one expert over RPC (the SG-MoE-G expert process) until
/// `control.stop()`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn serve_expert_rpc(
    transport: &dyn Transport,
    control: &ServerControl,
    expert: &mut Sequential,
) -> Result<(), NetError> {
    serve(transport, control, |_, method, payload| {
        if method != METHOD_FORWARD {
            return Err(format!("unknown method {method}"));
        }
        forward_bytes(expert, payload).map_err(|e| e.to_string())
    })
}

/// Serves one expert over raw point-to-point messages (the SG-MoE-M expert
/// process) until a shutdown message arrives.
///
/// # Errors
///
/// Propagates transport failures.
pub fn serve_expert_p2p(
    transport: &dyn Transport,
    gateway: usize,
    expert: &mut Sequential,
) -> Result<(), NetError> {
    const POLL: Duration = Duration::from_millis(50);
    loop {
        match transport.recv(gateway, TAG_EXPERT_SHUTDOWN, Duration::from_millis(1)) {
            Ok(_) => return Ok(()),
            Err(NetError::Timeout { .. }) => {}
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
        match transport.recv(gateway, TAG_EXPERT_INPUT, POLL) {
            Ok(payload) => {
                let reply = forward_bytes(expert, &payload)?;
                transport.send(gateway, TAG_EXPERT_LOGITS, &reply)?;
            }
            Err(NetError::Timeout { .. }) => continue,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Asks every p2p expert server to exit.
///
/// # Errors
///
/// Propagates transport send failures.
pub fn shutdown_experts_p2p(transport: &dyn Transport) -> Result<(), NetError> {
    for peer in 0..transport.num_nodes() {
        if peer != transport.node_id() {
            transport.send(peer, TAG_EXPERT_SHUTDOWN, &[])?;
        }
    }
    Ok(())
}

fn decode_logits(bytes: &[u8], n: usize, classes: usize) -> Result<Tensor, NetError> {
    let (dims, data) = decode_f32s(bytes)?;
    if dims != [n, classes] {
        return Err(NetError::Malformed(format!("expert logits dims {dims:?}")));
    }
    Tensor::from_vec(data, dims).map_err(|e| NetError::Malformed(e.to_string()))
}

fn combine(
    moe: &mut SgMoe,
    gating: &GatingOutput,
    images: &Tensor,
    mut remote_forward: impl FnMut(usize, &[u8]) -> Result<Vec<u8>, NetError>,
) -> Result<Tensor, NetError> {
    let n = images.dims()[0];
    let classes = moe.spec().classes();
    let k = moe.k();
    let mut expert_rows: Vec<Vec<usize>> = vec![Vec::new(); k];
    for r in 0..n {
        for &i in &gating.top_indices[r] {
            expert_rows[i].push(r);
        }
    }
    let mut combined = Tensor::zeros([n, classes]);
    for (i, rows) in expert_rows.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let sub = images.select_rows(rows);
        let logits = if i == 0 {
            // Expert 0 is co-located with the gateway.
            moe.expert_mut(0).forward(&sub, Mode::Eval)
        } else {
            let payload = encode_f32s(sub.dims(), sub.data());
            let reply = remote_forward(i, &payload)?;
            decode_logits(&reply, rows.len(), classes)?
        };
        for (pos, &r) in rows.iter().enumerate() {
            let g = gating.gates.at(&[r, i]);
            for c in 0..classes {
                let v = combined.at(&[r, c]) + g * logits.at(&[pos, c]);
                combined.set(&[r, c], v);
            }
        }
    }
    Ok(combined.softmax_rows())
}

/// Gateway-side SG-MoE-G inference: routes via RPC calls to expert nodes.
///
/// # Errors
///
/// Propagates RPC failures (including [`NetError::Timeout`] for dead
/// experts).
pub fn infer_rpc(
    transport: &dyn Transport,
    moe: &mut SgMoe,
    images: &Tensor,
    timeout: Duration,
) -> Result<Tensor, NetError> {
    let gating = moe.gate(images);
    let client = RpcClient::with_timeout(transport, timeout);
    combine(moe, &gating, images, |node, payload| {
        client.call(node, METHOD_FORWARD, payload)
    })
}

/// Gateway-side SG-MoE-M inference: routes via tagged point-to-point
/// messages.
///
/// # Errors
///
/// Propagates transport failures.
pub fn infer_p2p(
    transport: &dyn Transport,
    moe: &mut SgMoe,
    images: &Tensor,
    timeout: Duration,
) -> Result<Tensor, NetError> {
    let gating = moe.gate(images);
    combine(moe, &gating, images, |node, payload| {
        transport.send(node, TAG_EXPERT_INPUT, payload)?;
        transport.recv(node, TAG_EXPERT_LOGITS, timeout)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SgMoeConfig;
    use crossbeam::thread;
    use teamnet_core::build_expert;
    use teamnet_net::ChannelTransport;
    use teamnet_nn::ModelSpec;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn moe_with_k(k: usize) -> SgMoe {
        SgMoe::new(
            ModelSpec::mlp(2, 16),
            k,
            SgMoeConfig {
                top_k: 2,
                ..SgMoeConfig::default()
            },
        )
    }

    /// Remote inference must produce exactly the gateway-local result.
    #[test]
    fn rpc_inference_matches_local() {
        let nodes = ChannelTransport::mesh(3);
        let mut moe = moe_with_k(3);
        let images = Tensor::rand_uniform(
            [4, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4),
        );
        let expected = moe.predict_proba(&images);

        let control = ServerControl::new();
        let got = thread::scope(|scope| {
            for (i, node) in nodes.iter().enumerate().take(3).skip(1) {
                let ctrl = control.clone();
                let seed = SgMoeConfig::default().seed.wrapping_add(0xB0B + i as u64);
                scope.spawn(move |_| {
                    let mut expert = build_expert(&ModelSpec::mlp(2, 16), seed);
                    serve_expert_rpc(node, &ctrl, &mut expert).unwrap();
                });
            }
            let out = infer_rpc(&nodes[0], &mut moe, &images, TIMEOUT).unwrap();
            control.stop();
            out
        })
        .unwrap();

        // The gate in predict_proba and infer_rpc consumes RNG identically
        // (no noise at eval), so results must agree to fp tolerance.
        assert!(got.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn p2p_inference_matches_local() {
        let nodes = ChannelTransport::mesh(2);
        let mut moe = moe_with_k(2);
        let images = Tensor::rand_uniform(
            [3, 1, 28, 28],
            0.0,
            1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5),
        );
        let expected = moe.predict_proba(&images);

        let got = thread::scope(|scope| {
            scope.spawn(|_| {
                let seed = SgMoeConfig::default().seed.wrapping_add(0xB0B + 1);
                let mut expert = build_expert(&ModelSpec::mlp(2, 16), seed);
                serve_expert_p2p(&nodes[1], 0, &mut expert).unwrap();
            });
            let out = infer_p2p(&nodes[0], &mut moe, &images, TIMEOUT).unwrap();
            shutdown_experts_p2p(&nodes[0]).unwrap();
            out
        })
        .unwrap();

        assert!(got.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn dead_expert_times_out() {
        let nodes = ChannelTransport::mesh(2);
        let mut moe = moe_with_k(2);
        let images = Tensor::ones([1, 1, 28, 28]);
        let res = infer_p2p(&nodes[0], &mut moe, &images, Duration::from_millis(50));
        assert!(matches!(res, Err(NetError::Timeout { .. })), "{res:?}");
    }
}
