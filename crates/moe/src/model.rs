//! The jointly trained Sparsely-Gated Mixture-of-Experts model.
//!
//! This is the paper's strongest baseline: K expert networks (the same
//! downsized architectures TeamNet uses) plus a linear noisy-top-k gate,
//! all trained together on the combined cross-entropy plus the importance
//! load-balancing loss. The contrast the paper draws: SG-MoE spreads data
//! across experts by *noise*, not by competence, so experts specialize
//! less — visible as the accuracy drop at K = 4 in Tables I and II.

use crate::gating::{gate_logit_grad, importance_loss, noisy_top_k, GatingOutput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use teamnet_core::build_expert;
use teamnet_data::Dataset;
use teamnet_nn::{softmax_cross_entropy, Layer, Mode, ModelSpec, Sequential, Sgd};
use teamnet_tensor::Tensor;

/// SG-MoE hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgMoeConfig {
    /// Number of experts each example is routed to (the paper's
    /// experiments use sparse gating; we default to 2, or 1 when K = 2).
    pub top_k: usize,
    /// Weight of the importance (load-balancing) loss.
    pub importance_weight: f32,
    /// Expert learning rate.
    pub learning_rate: f32,
    /// Expert SGD momentum.
    pub momentum: f32,
    /// Gate learning rate.
    pub gate_learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SgMoeConfig {
    fn default() -> Self {
        SgMoeConfig {
            top_k: 2,
            importance_weight: 0.1,
            learning_rate: 0.1,
            momentum: 0.9,
            gate_learning_rate: 0.01,
            epochs: 3,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// A Sparsely-Gated Mixture-of-Experts classifier.
pub struct SgMoe {
    spec: ModelSpec,
    experts: Vec<Sequential>,
    optimizers: Vec<Sgd>,
    gate_w: Tensor,
    noise_w: Tensor,
    input_dim: usize,
    config: SgMoeConfig,
    rng: StdRng,
}

impl SgMoe {
    /// Creates an SG-MoE with `k` experts of architecture `spec` gating on
    /// the flattened input.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `top_k > k`.
    pub fn new(spec: ModelSpec, k: usize, config: SgMoeConfig) -> Self {
        assert!(k >= 2, "SG-MoE needs at least two experts");
        assert!(
            config.top_k >= 1 && config.top_k <= k,
            "top_k must be in 1..=K"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input_dim: usize = spec.input_dims().iter().product();
        let experts: Vec<Sequential> = (0..k)
            .map(|i| build_expert(&spec, config.seed.wrapping_add(0xB0B + i as u64)))
            .collect();
        let optimizers = (0..k)
            .map(|_| Sgd::with_momentum(config.learning_rate, config.momentum))
            .collect();
        SgMoe {
            gate_w: Tensor::randn([input_dim, k], 0.0, 0.01, &mut rng),
            noise_w: Tensor::randn([input_dim, k], 0.0, 0.01, &mut rng),
            spec,
            experts,
            optimizers,
            input_dim,
            config,
            rng,
        }
    }

    /// Number of experts.
    pub fn k(&self) -> usize {
        self.experts.len()
    }

    /// The experts' architecture.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The configuration.
    pub fn config(&self) -> &SgMoeConfig {
        &self.config
    }

    /// Mutable access to expert `i` (deployment).
    pub fn expert_mut(&mut self, i: usize) -> &mut Sequential {
        &mut self.experts[i]
    }

    fn flatten(&self, images: &Tensor) -> Tensor {
        let n = images.dims()[0];
        // Caller contract: images carry input_dim features per row. lint: allow(no-expect)
        images
            .reshape([n, self.input_dim])
            .expect("input volume matches spec")
    }

    /// Evaluation-mode gating (no noise) for a batch.
    pub fn gate(&mut self, images: &Tensor) -> GatingOutput {
        let x = self.flatten(images);
        let clean = x.matmul(&self.gate_w);
        noisy_top_k(&clean, None, self.config.top_k, &mut self.rng)
    }

    /// One joint training step; returns `(task loss, importance loss)`.
    pub fn train_batch(&mut self, images: &Tensor, labels: &[usize]) -> (f32, f32) {
        let n = images.dims()[0];
        let classes = self.spec.classes();
        let x = self.flatten(images);

        // Noisy gating.
        let clean = x.matmul(&self.gate_w);
        let noise = x.matmul(&self.noise_w);
        let gating = noisy_top_k(&clean, Some(&noise), self.config.top_k, &mut self.rng);

        // Run each expert on its routed rows; cache logits and row maps.
        let k = self.k();
        let mut expert_rows: Vec<Vec<usize>> = vec![Vec::new(); k];
        for r in 0..n {
            for &i in &gating.top_indices[r] {
                expert_rows[i].push(r);
            }
        }
        let mut expert_logits: Vec<Option<Tensor>> = vec![None; k];
        let mut combined = Tensor::zeros([n, classes]);
        for i in 0..k {
            if expert_rows[i].is_empty() {
                continue;
            }
            let sub = images.select_rows(&expert_rows[i]);
            let logits = self.experts[i].forward(&sub, Mode::Train);
            for (pos, &r) in expert_rows[i].iter().enumerate() {
                let g = gating.gates.at(&[r, i]);
                for c in 0..classes {
                    let v = combined.at(&[r, c]) + g * logits.at(&[pos, c]);
                    combined.set(&[r, c], v);
                }
            }
            expert_logits[i] = Some(logits);
        }

        // Task loss on the combined logits, plus the importance loss.
        let out = softmax_cross_entropy(&combined, labels);
        let (imp_loss, imp_grad) = importance_loss(&gating.gates);

        // Gradient to the dense gate values: task term + importance term.
        let mut d_gates = imp_grad.scale(self.config.importance_weight);
        for i in 0..k {
            let Some(logits) = &expert_logits[i] else {
                continue;
            };
            for (pos, &r) in expert_rows[i].iter().enumerate() {
                let dot: f32 = (0..classes)
                    .map(|c| out.grad.at(&[r, c]) * logits.at(&[pos, c]))
                    .sum();
                let v = d_gates.at(&[r, i]) + dot;
                d_gates.set(&[r, i], v);
            }
        }

        // Expert updates: each expert receives its gate-weighted share of
        // the combined-logit gradient.
        for i in 0..k {
            if expert_logits[i].is_none() {
                continue;
            }
            let rows = &expert_rows[i];
            let mut grad = Tensor::zeros([rows.len(), classes]);
            for (pos, &r) in rows.iter().enumerate() {
                let g = gating.gates.at(&[r, i]);
                for c in 0..classes {
                    grad.set(&[pos, c], g * out.grad.at(&[r, c]));
                }
            }
            self.experts[i].zero_grad();
            self.experts[i].backward(&grad);
            self.optimizers[i].step(&mut self.experts[i]);
        }

        // Gate update through the kept-set softmax jacobian. The noise
        // path is treated as exploration (no gradient), as in common
        // implementations.
        let d_logits = gate_logit_grad(&gating, &d_gates);
        let d_gate_w = x.transpose().matmul(&d_logits);
        self.gate_w.axpy(-self.config.gate_learning_rate, &d_gate_w);

        (out.loss, imp_loss)
    }

    /// Trains for `config.epochs` epochs; returns the mean task loss per
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train(&mut self, data: &Dataset) -> Vec<f32> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let shuffled = data.shuffled(&mut self.rng);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for batch in shuffled.batches(self.config.batch_size) {
                let (loss, _) = self.train_batch(&batch.images, &batch.labels);
                total += loss;
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        epoch_losses
    }

    /// Evaluation-mode combined class probabilities, `[n, classes]`.
    pub fn predict_proba(&mut self, images: &Tensor) -> Tensor {
        let n = images.dims()[0];
        let classes = self.spec.classes();
        let gating = self.gate(images);
        let k = self.k();
        let mut expert_rows: Vec<Vec<usize>> = vec![Vec::new(); k];
        for r in 0..n {
            for &i in &gating.top_indices[r] {
                expert_rows[i].push(r);
            }
        }
        let mut combined = Tensor::zeros([n, classes]);
        for (i, rows) in expert_rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let sub = images.select_rows(rows);
            let logits = self.experts[i].forward(&sub, Mode::Eval);
            for (pos, &r) in rows.iter().enumerate() {
                let g = gating.gates.at(&[r, i]);
                for c in 0..classes {
                    let v = combined.at(&[r, c]) + g * logits.at(&[pos, c]);
                    combined.set(&[r, c], v);
                }
            }
        }
        combined.softmax_rows()
    }

    /// Accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn evaluate(&mut self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
        let mut correct = 0usize;
        for batch in data.batches(256) {
            let probs = self.predict_proba(&batch.images);
            for (pred, &truth) in probs.argmax_rows().iter().zip(&batch.labels) {
                if *pred == truth {
                    correct += 1;
                }
            }
        }
        correct as f64 / data.len() as f64
    }
}

impl std::fmt::Debug for SgMoe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SgMoe(k={}, top_k={}, spec={:?})",
            self.k(),
            self.config.top_k,
            self.spec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamnet_data::synth_digits;

    fn quick_config() -> SgMoeConfig {
        SgMoeConfig {
            epochs: 3,
            batch_size: 32,
            ..SgMoeConfig::default()
        }
    }

    #[test]
    fn construction_and_shapes() {
        let mut moe = SgMoe::new(ModelSpec::mlp(2, 16), 4, quick_config());
        assert_eq!(moe.k(), 4);
        let x = Tensor::zeros([3, 1, 28, 28]);
        let probs = moe.predict_proba(&x);
        assert_eq!(probs.dims(), &[3, 10]);
        for r in 0..3 {
            assert!((probs.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(77);
        let data = synth_digits(400, &mut rng);
        let mut moe = SgMoe::new(ModelSpec::mlp(2, 32), 2, quick_config());
        let losses = moe.train(&data);
        assert!(losses.last().unwrap() < &(losses[0] * 0.7), "{losses:?}");
    }

    #[test]
    fn trained_moe_beats_chance() {
        let mut rng = StdRng::seed_from_u64(78);
        let data = synth_digits(1_000, &mut rng);
        let (train, test) = data.split(800);
        let mut moe = SgMoe::new(
            ModelSpec::mlp(2, 32),
            2,
            SgMoeConfig {
                epochs: 5,
                ..quick_config()
            },
        );
        moe.train(&train);
        let acc = moe.evaluate(&test);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn gate_routes_to_top_k_experts() {
        let mut moe = SgMoe::new(ModelSpec::mlp(2, 16), 4, quick_config());
        let x = Tensor::ones([5, 1, 28, 28]);
        let gating = moe.gate(&x);
        for r in 0..5 {
            assert_eq!(gating.top_indices[r].len(), 2);
        }
    }

    #[test]
    fn importance_weight_spreads_load() {
        // With a strong importance penalty, trained expert usage should be
        // less skewed than with none. A single training run is noisy (two
        // epochs, random init), so compare the mean skew across seeds.
        let usage = |weight: f32| -> f32 {
            let seeds = [79u64, 80, 81];
            let total: f32 = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let data = synth_digits(300, &mut rng);
                    let mut moe = SgMoe::new(
                        ModelSpec::mlp(2, 16),
                        4,
                        SgMoeConfig {
                            importance_weight: weight,
                            epochs: 2,
                            ..quick_config()
                        },
                    );
                    moe.train(&data);
                    let gating = moe.gate(data.images());
                    let imp = gating.gates.sum_cols();
                    // Coefficient of variation of expert usage.
                    let mean = imp.mean();
                    let var = imp.map(|x| (x - mean) * (x - mean)).mean();
                    var.sqrt() / mean
                })
                .sum();
            total / 3.0
        };
        let balanced = usage(1.0);
        let free = usage(0.0);
        assert!(
            balanced <= free + 0.15,
            "importance loss should not worsen balance: {balanced} vs {free}"
        );
    }

    #[test]
    #[should_panic(expected = "top_k must be in")]
    fn rejects_top_k_above_k() {
        SgMoe::new(
            ModelSpec::mlp(2, 8),
            2,
            SgMoeConfig {
                top_k: 3,
                ..quick_config()
            },
        );
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
