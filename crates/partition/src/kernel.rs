//! MPI-Kernel: distributing convolution kernels (output channels) across
//! edge nodes.
//!
//! Each node holds a slice of every conv layer's output channels. Per
//! layer, the input activation is broadcast, every node convolves with its
//! kernel slice, and the root gathers and concatenates the channel slices
//! — one broadcast + one gather per convolution.

use crate::matrix::split_range;
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::{Communicator, NetError};
use teamnet_tensor::conv::{conv2d, Conv2dSpec};
use teamnet_tensor::Tensor;

/// One node's slice of a conv layer: output channels `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvShard {
    weight: Tensor,
    bias: Tensor,
    spec: Conv2dSpec,
}

impl ConvShard {
    /// Extracts node `node`'s output-channel slice of a conv layer
    /// (`weight: [oc, ic, k, k]`, `bias: [oc]`).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or `node >= nodes`.
    pub fn new(
        weight: &Tensor,
        bias: &Tensor,
        spec: Conv2dSpec,
        node: usize,
        nodes: usize,
    ) -> Self {
        assert_eq!(weight.rank(), 4, "conv weight must be [oc, ic, k, k]");
        assert!(node < nodes, "node {node} out of range for {nodes} nodes");
        let oc = weight.dims()[0];
        assert_eq!(bias.dims(), &[oc], "bias must be [oc]");
        let (start, end) = split_range(oc, nodes, node);
        let rows: Vec<usize> = (start..end).collect();
        ConvShard {
            weight: weight.select_rows(&rows),
            bias: bias.data()[start..end].iter().copied().collect(),
            spec,
        }
    }

    /// Number of output channels this shard produces.
    pub fn channels(&self) -> usize {
        self.weight.dims()[0]
    }
}

/// Runs one kernel-parallel convolution. Rank 0 supplies the input
/// `[n, ic, h, w]` and receives `Some(full output)`; other ranks receive
/// `None`.
///
/// # Errors
///
/// Propagates collective failures.
///
/// # Panics
///
/// Panics if rank 0 does not supply an input or a shard is empty.
pub fn kernel_parallel_conv2d(
    comm: &Communicator<'_>,
    shard: &ConvShard,
    input: Option<&Tensor>,
) -> Result<Option<Tensor>, NetError> {
    let encoded = if comm.rank() == 0 {
        // Documented `# Panics` contract above. lint: allow(no-expect)
        let input = input.expect("rank 0 must supply the input");
        comm.broadcast(0, Some(&encode_f32s(input.dims(), input.data())))?
    } else {
        comm.broadcast(0, None)?
    };
    let (dims, data) = decode_f32s(&encoded)?;
    let x = Tensor::from_vec(data, dims).map_err(|e| NetError::Malformed(e.to_string()))?;

    assert!(
        shard.channels() > 0,
        "empty conv shard: more nodes than channels"
    );
    let partial = conv2d(&x, &shard.weight, &shard.bias, shard.spec);
    let gathered = comm.gather(0, &encode_f32s(partial.dims(), partial.data()))?;

    let Some(parts) = gathered else {
        return Ok(None);
    };
    // Concatenate channel slices in rank order.
    let mut slices = Vec::with_capacity(parts.len());
    for part in &parts {
        let (pd, pv) = decode_f32s(part)?;
        if pd.len() != 4 {
            return Err(NetError::Malformed(format!("partial conv dims {pd:?}")));
        }
        slices.push(Tensor::from_vec(pv, pd).map_err(|e| NetError::Malformed(e.to_string()))?);
    }
    let (n, oh, ow) = (
        slices[0].dims()[0],
        slices[0].dims()[2],
        slices[0].dims()[3],
    );
    let total_c: usize = slices.iter().map(|s| s.dims()[1]).sum();
    let mut out = Tensor::zeros([n, total_c, oh, ow]);
    let mut c_at = 0usize;
    for slice in &slices {
        let c = slice.dims()[1];
        for s in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for x2 in 0..ow {
                        out.set(&[s, c_at + ch, y, x2], slice.at(&[s, ch, y, x2]));
                    }
                }
            }
        }
        c_at += c;
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::thread;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use teamnet_net::ChannelTransport;

    #[test]
    fn shard_partitions_channels() {
        let mut rng = StdRng::seed_from_u64(1);
        let weight = Tensor::randn([10, 3, 3, 3], 0.0, 1.0, &mut rng);
        let bias = Tensor::randn([10], 0.0, 1.0, &mut rng);
        let spec = Conv2dSpec::new(3, 1, 1);
        let total: usize = (0..4)
            .map(|n| ConvShard::new(&weight, &bias, spec, n, 4).channels())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn kernel_parallel_matches_local_conv() {
        for nodes in [2usize, 3] {
            let mut rng = StdRng::seed_from_u64(2);
            let weight = Tensor::randn([7, 2, 3, 3], 0.0, 1.0, &mut rng);
            let bias = Tensor::randn([7], 0.0, 0.5, &mut rng);
            let spec = Conv2dSpec::new(3, 1, 1);
            let input = Tensor::randn([2, 2, 6, 6], 0.0, 1.0, &mut rng);
            let expected = conv2d(&input, &weight, &bias, spec);

            let mesh = ChannelTransport::mesh(nodes);
            let got = thread::scope(|scope| {
                for (rank, node) in mesh.iter().enumerate().skip(1) {
                    let shard = ConvShard::new(&weight, &bias, spec, rank, nodes);
                    scope.spawn(move |_| {
                        let comm = Communicator::new(node);
                        assert!(kernel_parallel_conv2d(&comm, &shard, None)
                            .unwrap()
                            .is_none());
                    });
                }
                let shard = ConvShard::new(&weight, &bias, spec, 0, nodes);
                let comm = Communicator::new(&mesh[0]);
                kernel_parallel_conv2d(&comm, &shard, Some(&input))
                    .unwrap()
                    .unwrap()
            })
            .unwrap();

            assert!(
                got.max_abs_diff(&expected) < 1e-5,
                "{nodes}-node run diverged"
            );
        }
    }

    #[test]
    fn strided_padded_conv_also_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let weight = Tensor::randn([4, 3, 3, 3], 0.0, 1.0, &mut rng);
        let bias = Tensor::zeros([4]);
        let spec = Conv2dSpec::new(3, 2, 1);
        let input = Tensor::randn([1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let expected = conv2d(&input, &weight, &bias, spec);

        let mesh = ChannelTransport::mesh(2);
        let got = thread::scope(|scope| {
            let shard1 = ConvShard::new(&weight, &bias, spec, 1, 2);
            let node1 = &mesh[1];
            scope.spawn(move |_| {
                let comm = Communicator::new(node1);
                kernel_parallel_conv2d(&comm, &shard1, None).unwrap();
            });
            let shard0 = ConvShard::new(&weight, &bias, spec, 0, 2);
            let comm = Communicator::new(&mesh[0]);
            kernel_parallel_conv2d(&comm, &shard0, Some(&input))
                .unwrap()
                .unwrap()
        })
        .unwrap();
        assert!(got.max_abs_diff(&expected) < 1e-5);
    }
}
