//! MPI-Branch: executing the two branches of a Shake-Shake block on two
//! edge nodes.
//!
//! The Shake-Shake CNN has exactly two independent residual branches per
//! block, so the paper parallelizes inference by giving each branch to a
//! device: per block, the master ships the block input to the worker,
//! both compute their branch, the worker returns its output, and the
//! master merges (`α = ½` at evaluation) — one round trip per block.

use std::time::Duration;
use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::{NetError, Tag, Transport};
use teamnet_nn::{Layer, Mode, ShakeShakeBlock};
use teamnet_tensor::Tensor;

/// Tag carrying block inputs (master → branch worker).
pub const TAG_BRANCH_INPUT: Tag = Tag(0xB4A0_0001);
/// Tag carrying branch outputs (worker → master).
pub const TAG_BRANCH_OUTPUT: Tag = Tag(0xB4A0_0002);
/// Tag asking the branch worker to exit.
pub const TAG_BRANCH_SHUTDOWN: Tag = Tag(0xB4A0_0003);

fn tensor_from(bytes: &[u8]) -> Result<Tensor, NetError> {
    let (dims, data) = decode_f32s(bytes)?;
    Tensor::from_vec(data, dims).map_err(|e| NetError::Malformed(e.to_string()))
}

/// Master-side branch-parallel evaluation of one block: ships `input` to
/// `worker`, computes branch 1 and the shortcut locally, merges with the
/// worker's branch 2.
///
/// # Errors
///
/// Propagates transport failures and worker timeouts.
pub fn branch_parallel_forward(
    transport: &dyn Transport,
    worker: usize,
    block: &mut ShakeShakeBlock,
    input: &Tensor,
    timeout: Duration,
) -> Result<Tensor, NetError> {
    transport.send(
        worker,
        TAG_BRANCH_INPUT,
        &encode_f32s(input.dims(), input.data()),
    )?;
    // Local work overlaps the worker's: branch 1 plus the shortcut.
    let local_branch = {
        let (branch1, _) = block.branches_mut();
        branch1.forward(input, Mode::Eval)
    };
    let shortcut = match block.skip_mut() {
        Some(skip) => skip.forward(input, Mode::Eval),
        None => input.clone(),
    };
    let remote = tensor_from(&transport.recv(worker, TAG_BRANCH_OUTPUT, timeout)?)?;
    if !remote.shape().same_as(local_branch.shape()) {
        return Err(NetError::Malformed(format!(
            "worker branch output {} does not match local {}",
            remote.shape(),
            local_branch.shape()
        )));
    }
    Ok(ShakeShakeBlock::merge_eval(
        &shortcut,
        &local_branch,
        &remote,
    ))
}

/// Worker loop for branch-parallel blocks: evaluates branch 2 of `block`
/// on every received input until shut down.
///
/// # Errors
///
/// Propagates transport failures.
pub fn serve_branch_worker(
    transport: &dyn Transport,
    master: usize,
    block: &mut ShakeShakeBlock,
) -> Result<(), NetError> {
    const POLL: Duration = Duration::from_millis(50);
    loop {
        match transport.recv(master, TAG_BRANCH_SHUTDOWN, Duration::from_millis(1)) {
            Ok(_) => return Ok(()),
            Err(NetError::Timeout { .. }) => {}
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
        match transport.recv(master, TAG_BRANCH_INPUT, POLL) {
            Ok(bytes) => {
                let input = tensor_from(&bytes)?;
                let out = {
                    let (_, branch2) = block.branches_mut();
                    branch2.forward(&input, Mode::Eval)
                };
                transport.send(
                    master,
                    TAG_BRANCH_OUTPUT,
                    &encode_f32s(out.dims(), out.data()),
                )?;
            }
            Err(NetError::Timeout { .. }) => continue,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Asks a branch worker to exit.
///
/// # Errors
///
/// Propagates transport send failures.
pub fn shutdown_branch_worker(transport: &dyn Transport, worker: usize) -> Result<(), NetError> {
    transport.send(worker, TAG_BRANCH_SHUTDOWN, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::thread;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use teamnet_net::ChannelTransport;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn block(seed: u64) -> ShakeShakeBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        ShakeShakeBlock::new(3, 6, 2, &mut rng)
    }

    #[test]
    fn branch_parallel_matches_local_eval() {
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor::randn([2, 3, 8, 8], 0.0, 1.0, &mut rng);

        // Local reference: the same block evaluated in-process.
        let mut reference = block(42);
        let expected = reference.forward(&input, Mode::Eval);

        let mesh = ChannelTransport::mesh(2);
        let got = thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_block = block(42);
                serve_branch_worker(&mesh[1], 0, &mut worker_block).unwrap();
            });
            let mut master_block = block(42);
            let out =
                branch_parallel_forward(&mesh[0], 1, &mut master_block, &input, TIMEOUT).unwrap();
            shutdown_branch_worker(&mesh[0], 1).unwrap();
            out
        })
        .unwrap();

        assert!(got.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn identity_skip_block_also_matches() {
        let make = || {
            let mut rng = StdRng::seed_from_u64(9);
            ShakeShakeBlock::new(4, 4, 1, &mut rng)
        };
        let mut rng = StdRng::seed_from_u64(2);
        let input = Tensor::randn([1, 4, 6, 6], 0.0, 1.0, &mut rng);
        let expected = make().forward(&input, Mode::Eval);

        let mesh = ChannelTransport::mesh(2);
        let got = thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_block = make();
                serve_branch_worker(&mesh[1], 0, &mut worker_block).unwrap();
            });
            let mut master_block = make();
            let out =
                branch_parallel_forward(&mesh[0], 1, &mut master_block, &input, TIMEOUT).unwrap();
            shutdown_branch_worker(&mesh[0], 1).unwrap();
            out
        })
        .unwrap();
        assert!(got.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn dead_worker_times_out() {
        let mesh = ChannelTransport::mesh(2);
        let mut master_block = block(0);
        let input = Tensor::zeros([1, 3, 8, 8]);
        let res = branch_parallel_forward(
            &mesh[0],
            1,
            &mut master_block,
            &input,
            Duration::from_millis(50),
        );
        assert!(matches!(res, Err(NetError::Timeout { .. })), "{res:?}");
    }

    #[test]
    fn worker_handles_multiple_blocks_in_sequence() {
        let mesh = ChannelTransport::mesh(2);
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor::randn([1, 3, 8, 8], 0.0, 1.0, &mut rng);
        thread::scope(|scope| {
            scope.spawn(|_| {
                let mut worker_block = block(5);
                serve_branch_worker(&mesh[1], 0, &mut worker_block).unwrap();
            });
            let mut master_block = block(5);
            for _ in 0..3 {
                let out = branch_parallel_forward(&mesh[0], 1, &mut master_block, &input, TIMEOUT)
                    .unwrap();
                assert_eq!(out.dims(), &[1, 6, 4, 4]);
            }
            shutdown_branch_worker(&mesh[0], 1).unwrap();
        })
        .unwrap();
    }
}
