//! MPI-Matrix: column-parallel execution of an MLP across edge nodes.
//!
//! Every dense layer's weight matrix is split column-wise over the nodes;
//! each node computes its slice of the activations and the slices are
//! all-gathered before the next layer. This is the classic
//! matrix-multiplication parallelization the paper evaluates — and the
//! reason it loses badly on WiFi: *every layer* pays a collective.

use teamnet_net::codec::{decode_f32s, encode_f32s};
use teamnet_net::{Communicator, NetError};
use teamnet_nn::ModelSpec;
use teamnet_tensor::Tensor;

/// Balanced split of `total` items into `parts` chunk sizes (first chunks
/// get the remainder).
pub fn split_sizes(total: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "need at least one part");
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Column range `[start, end)` owned by `part` under [`split_sizes`].
pub fn split_range(total: usize, parts: usize, part: usize) -> (usize, usize) {
    let sizes = split_sizes(total, parts);
    let start: usize = sizes[..part].iter().sum();
    (start, start + sizes[part])
}

/// One node's column shards of every dense layer of an MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpShards {
    layers: Vec<(Tensor, Tensor)>,
}

impl MlpShards {
    /// Number of sharded dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter bytes held by this node.
    pub fn param_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|(w, b)| (w.len() + b.len()) * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Extracts node `node`'s column shards from a trained MLP's parameter
/// snapshot (`state` as produced by [`teamnet_nn::state_vec`] on a model
/// built from `spec`).
///
/// # Panics
///
/// Panics if `spec` is not an MLP, `state` does not look like alternating
/// `(weight, bias)` pairs, or `node >= nodes`.
pub fn shard_mlp(spec: &ModelSpec, state: &[Tensor], node: usize, nodes: usize) -> MlpShards {
    assert!(
        matches!(spec, ModelSpec::Mlp { .. }),
        "MPI-Matrix shards MLPs"
    );
    assert!(node < nodes, "node {node} out of range for {nodes} nodes");
    assert!(
        state.len().is_multiple_of(2) && !state.is_empty(),
        "state must be (weight, bias) pairs"
    );
    let layers = state
        .chunks_exact(2)
        .map(|pair| {
            let (w, b) = (&pair[0], &pair[1]);
            assert_eq!(w.rank(), 2, "dense weight must be rank-2");
            assert_eq!(b.dims(), &[w.dims()[1]], "bias must match weight columns");
            let (in_dim, out_dim) = (w.dims()[0], w.dims()[1]);
            let (start, end) = split_range(out_dim, nodes, node);
            let mut w_slice = Tensor::zeros([in_dim, end - start]);
            for r in 0..in_dim {
                for (j, c) in (start..end).enumerate() {
                    w_slice.set(&[r, j], w.at(&[r, c]));
                }
            }
            let b_slice: Tensor = b.data()[start..end].iter().copied().collect();
            (w_slice, b_slice)
        })
        .collect();
    MlpShards { layers }
}

/// Runs one column-parallel forward pass. Rank 0 supplies the flattened
/// input `[n, d]`; every node returns the full logits (they all hold them
/// after the final all-gather).
///
/// # Errors
///
/// Propagates collective failures (timeouts on missing peers, transport
/// errors).
///
/// # Panics
///
/// Panics if rank 0 does not supply an input.
pub fn mpi_matrix_forward(
    comm: &Communicator<'_>,
    shards: &MlpShards,
    input: Option<&Tensor>,
) -> Result<Tensor, NetError> {
    // Broadcast the input to every node.
    let encoded = if comm.rank() == 0 {
        // Documented `# Panics` contract above. lint: allow(no-expect)
        let input = input.expect("rank 0 must supply the input");
        assert_eq!(input.rank(), 2, "MPI-Matrix input must be [n, features]");
        comm.broadcast(0, Some(&encode_f32s(input.dims(), input.data())))?
    } else {
        comm.broadcast(0, None)?
    };
    let (dims, data) = decode_f32s(&encoded)?;
    let mut activation =
        Tensor::from_vec(data, dims).map_err(|e| NetError::Malformed(e.to_string()))?;

    let num_layers = shards.num_layers();
    for (l, (w_slice, b_slice)) in shards.layers.iter().enumerate() {
        // Local partial activations for this node's columns.
        let partial = activation.matmul(w_slice).add_row_broadcast(b_slice);
        // All-gather the column slices — the per-layer collective that
        // dominates MPI-Matrix's latency on WiFi.
        let parts = comm.all_gather(&encode_f32s(partial.dims(), partial.data()))?;
        let n = partial.dims()[0];
        let mut columns: Vec<Tensor> = Vec::with_capacity(parts.len());
        for part in &parts {
            let (pd, pv) = decode_f32s(part)?;
            if pd.len() != 2 || pd[0] != n {
                return Err(NetError::Malformed(format!(
                    "partial activation dims {pd:?}"
                )));
            }
            columns.push(Tensor::from_vec(pv, pd).map_err(|e| NetError::Malformed(e.to_string()))?);
        }
        let total_cols: usize = columns.iter().map(|c| c.dims()[1]).sum();
        let mut full = Tensor::zeros([n, total_cols]);
        let mut at = 0usize;
        for col in &columns {
            for r in 0..n {
                for j in 0..col.dims()[1] {
                    full.set(&[r, at + j], col.at(&[r, j]));
                }
            }
            at += col.dims()[1];
        }
        activation = if l + 1 < num_layers {
            full.relu()
        } else {
            full
        };
    }
    Ok(activation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::thread;
    use teamnet_net::{ChannelTransport, Transport};
    use teamnet_nn::{state_vec, Layer, Mode};

    #[test]
    fn split_math() {
        assert_eq!(split_sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_range(10, 4, 0), (0, 3));
        assert_eq!(split_range(10, 4, 3), (8, 10));
        assert_eq!(split_sizes(3, 5), vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn shards_partition_all_parameters() {
        let spec = ModelSpec::mlp(3, 16);
        let mut model = spec.build(1);
        let state = state_vec(&mut model);
        let total: usize = (0..4)
            .map(|n| shard_mlp(&spec, &state, n, 4).param_bytes())
            .sum();
        assert_eq!(total, model.param_count() * 4);
    }

    /// The headline correctness test: a distributed column-parallel
    /// forward must equal the local single-process forward bit-for-bit
    /// (same adds in the same order per column).
    #[test]
    fn distributed_forward_matches_local() {
        for nodes in [2usize, 4] {
            let spec = ModelSpec::mlp(3, 17); // odd width: uneven shards
            let mut model = spec.build(7);
            let state = state_vec(&mut model);
            let input = Tensor::rand_uniform(
                [5, 784],
                0.0,
                1.0,
                &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2),
            );
            let expected = model.forward(&input, Mode::Eval);

            let mesh = ChannelTransport::mesh(nodes);
            let results = thread::scope(|scope| {
                let handles: Vec<_> = mesh
                    .iter()
                    .enumerate()
                    .map(|(rank, node)| {
                        let shards = shard_mlp(&spec, &state, rank, nodes);
                        let input_ref = &input;
                        scope.spawn(move |_| {
                            let comm = Communicator::new(node);
                            let supplied = (rank == 0).then_some(input_ref);
                            mpi_matrix_forward(&comm, &shards, supplied).unwrap()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
            .unwrap();

            for (rank, got) in results.iter().enumerate() {
                assert!(
                    got.max_abs_diff(&expected) < 1e-5,
                    "{nodes}-node run, rank {rank} diverged"
                );
            }
        }
    }

    #[test]
    fn communication_grows_with_layers() {
        // MPI-Matrix sends one all-gather per layer: message count on the
        // root must scale linearly in depth.
        let count_messages = |layers: usize| -> u64 {
            let spec = ModelSpec::mlp(layers, 8);
            let mut model = spec.build(0);
            let state = state_vec(&mut model);
            let mesh = ChannelTransport::mesh(2);
            let input = Tensor::zeros([1, 784]);
            thread::scope(|scope| {
                scope.spawn(|_| {
                    let shards = shard_mlp(&spec, &state, 1, 2);
                    let comm = Communicator::new(&mesh[1]);
                    mpi_matrix_forward(&comm, &shards, None).unwrap();
                });
                let shards = shard_mlp(&spec, &state, 0, 2);
                let comm = Communicator::new(&mesh[0]);
                mpi_matrix_forward(&comm, &shards, Some(&input)).unwrap();
            })
            .unwrap();
            mesh[0].stats().messages_sent
        };
        let shallow = count_messages(2);
        let deep = count_messages(8);
        assert!(deep > shallow * 2, "shallow {shallow}, deep {deep}");
    }

    #[test]
    #[should_panic(expected = "MPI-Matrix shards MLPs")]
    fn rejects_cnn_specs() {
        let spec = ModelSpec::shake_shake(8, 4);
        shard_mlp(&spec, &[], 0, 2);
    }
}
