//! Cost-model simulation of every distributed inference strategy the
//! paper's Tables I and II compare.
//!
//! Each strategy is expressed as the sequence of compute and communication
//! steps it performs per inference, priced on a [`SimCluster`] of modeled
//! edge devices. The inputs are *measured from the real models* (FLOPs and
//! activation sizes via [`teamnet_nn::Sequential::per_layer_profile`]), so
//! the comparison reflects the actual architectures — only the hardware is
//! simulated.

use serde::{Deserialize, Serialize};
use teamnet_nn::{expert_cost, Sequential, WireModel};
use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster, SimReport, SimTime};

/// Per-layer cost entry extracted from a real model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer name (e.g. `Dense`, `ShakeShake`).
    pub name: String,
    /// Forward FLOPs at batch size 1.
    pub flops: u64,
    /// Size of the layer's input activation in bytes (batch size 1).
    pub input_bytes: u64,
    /// Size of the layer's output activation in bytes (batch size 1).
    pub output_bytes: u64,
}

/// Complete static cost profile of one model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCost {
    /// Per-layer entries, in pipeline order.
    pub layers: Vec<LayerCost>,
    /// Total trainable-parameter bytes.
    pub param_bytes: u64,
    /// Input tensor size in bytes (batch size 1).
    pub input_bytes: u64,
    /// Certified peak live activation bytes for one eval forward, from
    /// the liveness analysis in `teamnet_nn::cost` — the same number
    /// `cargo xtask cost` writes to `COST.json`. Earlier revisions
    /// approximated this as the largest single activation, which
    /// under-counts at Shake-Shake join points where three buffers
    /// coexist.
    pub peak_activation_bytes: u64,
}

impl ModelCost {
    /// Measures a model at batch size 1 for input dims `[c, h, w]` /
    /// `[features]` (batch axis added internally).
    pub fn measure(model: &Sequential, input_dims: &[usize]) -> Self {
        let mut dims = vec![1];
        dims.extend_from_slice(input_dims);
        let profile = model.per_layer_profile(&dims);
        let layers = profile
            .iter()
            .map(|p| LayerCost {
                name: p.name.to_string(),
                flops: p.flops,
                input_bytes: p.in_dims.iter().product::<usize>() as u64 * 4,
                output_bytes: p.out_dims.iter().product::<usize>() as u64 * 4,
            })
            .collect();
        let certificate = expert_cost(model, &dims, &WireModel::default());
        ModelCost {
            layers,
            param_bytes: certificate.param_bytes,
            input_bytes: certificate.input_bytes,
            peak_activation_bytes: certificate.peak_activation_bytes,
        }
    }

    /// Total forward FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Number of layers (pipeline stages).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Bytes that must be resident to run the model: parameters plus the
    /// certified activation peak.
    pub fn required_resident_bytes(&self) -> u64 {
        self.param_bytes + self.peak_activation_bytes
    }
}

/// A distributed inference strategy from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// The single-device baseline model.
    Baseline,
    /// TeamNet with `k` experts on `k` devices.
    TeamNet {
        /// Number of experts/devices.
        k: usize,
    },
    /// Column-parallel matrix multiplication over `nodes` devices
    /// (MLPs only).
    MpiMatrix {
        /// Number of devices.
        nodes: usize,
    },
    /// Branch-parallel Shake-Shake over exactly two devices.
    MpiBranch,
    /// Kernel(channel)-parallel convolutions over `nodes` devices.
    MpiKernel {
        /// Number of devices.
        nodes: usize,
    },
    /// Sparsely-Gated MoE with RPC transport (the gRPC deployment).
    SgMoeRpc {
        /// Number of experts/devices.
        k: usize,
        /// Experts consulted per input.
        top_k: usize,
    },
    /// Sparsely-Gated MoE with point-to-point messages (the MPI
    /// deployment).
    SgMoeP2p {
        /// Number of experts/devices.
        k: usize,
        /// Experts consulted per input.
        top_k: usize,
    },
}

impl Strategy {
    /// Number of devices this strategy occupies.
    pub fn nodes(&self) -> usize {
        match *self {
            Strategy::Baseline => 1,
            Strategy::TeamNet { k } => k,
            Strategy::MpiMatrix { nodes } | Strategy::MpiKernel { nodes } => nodes,
            Strategy::MpiBranch => 2,
            Strategy::SgMoeRpc { k, .. } | Strategy::SgMoeP2p { k, .. } => k,
        }
    }
}

/// Everything the simulator needs about the workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Cost profile of the full (baseline) model.
    pub full: ModelCost,
    /// Cost profile of one downsized expert (TeamNet / SG-MoE).
    pub expert: ModelCost,
    /// Bytes of one `(label, uncertainty)` result message.
    pub result_bytes: u64,
}

/// Per-call application-layer overheads of the two RPC flavours, charged
/// as extra sender-side latency (connection bookkeeping, HTTP/2-style
/// framing for the gRPC stand-in; polling slack for the MPI stand-in).
const RPC_CALL_OVERHEAD: SimTime = SimTime::from_millis(1);
const P2P_CALL_OVERHEAD: SimTime = SimTime::from_millis(2);

/// Per-layer cost of running an MPI collective over WiFi: the progress
/// engine's rendezvous handshakes and multi-round tree exchange cost
/// several medium round trips beyond the payload itself. This is the term
/// that makes per-layer model parallelism catastrophic on wireless (the
/// paper's MPI-Matrix rows reach 108–189 ms).
const MPI_COLLECTIVE_SYNC: SimTime = SimTime::from_millis(4);

/// Outcome of simulating one strategy: the [`SimReport`] plus the
/// master-node memory estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    /// Latency/utilization/traffic of one inference.
    pub sim: SimReport,
    /// Modeled resident-memory share on the most loaded node (percent).
    pub memory_percent: f64,
}

/// Static admission plus pricing of the per-node resident share: session
/// setup must refuse a placement whose certified requirement cannot fit
/// the device at all, instead of silently simulating an impossible
/// deployment.
fn price_memory(device: &DeviceProfile, param_bytes: u64, peak_activation_bytes: u64) -> f64 {
    if let Err(e) = device.admit(param_bytes.saturating_add(peak_activation_bytes)) {
        // Documented `# Panics` contract of `simulate`: an inadmissible
        // placement is a configuration bug. lint: allow(no-panic)
        panic!("placement rejected by static admission check: {e}");
    }
    device.memory_percent(param_bytes, peak_activation_bytes)
}

/// Simulates one inference under `strategy` on `cluster`.
///
/// # Panics
///
/// Panics if the cluster is smaller than the strategy requires, an MPI
/// strategy is applied to an incompatible model family, or the static
/// admission check rejects the placement (the certified resident
/// requirement of the per-node model share exceeds device RAM).
pub fn simulate(
    strategy: Strategy,
    workload: &Workload,
    cluster: &SimCluster,
    unit: ComputeUnit,
) -> StrategyReport {
    assert!(
        cluster.len() >= strategy.nodes(),
        "cluster of {} too small for {strategy:?}",
        cluster.len()
    );
    let mut run = cluster.run();
    let full = &workload.full;
    let expert = &workload.expert;
    let device = &cluster.devices[0];

    #[allow(clippy::needless_late_init)] // one binding documented per strategy arm
    let memory_percent;
    match strategy {
        Strategy::Baseline => {
            run.compute(0, full.total_flops(), full.depth(), unit);
            memory_percent = price_memory(device, full.param_bytes, full.peak_activation_bytes);
        }
        Strategy::TeamNet { k } => {
            // Figure 1(d): broadcast input, all experts in parallel, gather
            // tiny results, arg-min locally (negligible).
            run.broadcast(0, full.input_bytes);
            for node in 0..k {
                run.compute(node, expert.total_flops(), expert.depth(), unit);
            }
            run.gather(0, workload.result_bytes);
            memory_percent = price_memory(device, expert.param_bytes, expert.peak_activation_bytes);
        }
        Strategy::MpiMatrix { nodes } => {
            // Per dense layer: everyone computes its column slice, then
            // all-gathers the slices (n·(n−1) unicasts on a shared medium).
            run.broadcast(0, full.input_bytes);
            for layer in &full.layers {
                for node in 0..nodes {
                    run.compute(node, layer.flops / nodes as u64, 1, unit);
                }
                if layer.name != "Dense" {
                    continue; // only matrix multiplications pay a collective
                }
                let slice = layer.output_bytes / nodes as u64;
                for from in 0..nodes {
                    for to in 0..nodes {
                        if from != to {
                            run.send(from, to, slice);
                        }
                    }
                }
                // MPI collectives synchronize: a small barrier round per
                // layer (up to the root and back) plus the progress-engine
                // rendezvous cost.
                run.gather(0, 8);
                run.broadcast(0, 8);
                run.delay(0, MPI_COLLECTIVE_SYNC);
                run.sync_all();
            }
            memory_percent = price_memory(
                device,
                full.param_bytes / nodes as u64,
                full.peak_activation_bytes,
            );
        }
        Strategy::MpiBranch => {
            // Per Shake-Shake block: ship the block input to the peer, both
            // compute one branch, peer returns its half. Other layers run
            // on the master alone.
            for layer in &full.layers {
                if layer.name == "ShakeShake" {
                    run.delay(0, SimTime::from_millis(1)); // MPI p2p rendezvous
                    run.send(0, 1, layer.input_bytes);
                    let branch = layer.flops / 2;
                    run.compute(0, branch, 1, unit);
                    run.compute(1, branch, 1, unit);
                    run.send(1, 0, layer.output_bytes);
                } else {
                    run.compute(0, layer.flops, 1, unit);
                }
            }
            memory_percent = price_memory(
                device,
                full.param_bytes * 6 / 10, // master holds branch1 + skip + stem/classifier
                full.peak_activation_bytes,
            );
        }
        Strategy::MpiKernel { nodes } => {
            // Per costly layer: broadcast its input, everyone convolves its
            // channel slice, gather slices at the root.
            for layer in &full.layers {
                if layer.flops < 1_000 {
                    run.compute(0, layer.flops, 1, unit);
                    continue;
                }
                run.broadcast(0, layer.input_bytes);
                for node in 0..nodes {
                    run.compute(node, layer.flops / nodes as u64, 1, unit);
                }
                run.gather(0, layer.output_bytes / nodes as u64);
                run.delay(0, MPI_COLLECTIVE_SYNC);
                run.sync_all();
            }
            memory_percent = price_memory(
                device,
                full.param_bytes / nodes as u64,
                full.peak_activation_bytes,
            );
        }
        Strategy::SgMoeRpc { k, top_k } | Strategy::SgMoeP2p { k, top_k } => {
            let overhead = if matches!(strategy, Strategy::SgMoeRpc { .. }) {
                RPC_CALL_OVERHEAD
            } else {
                P2P_CALL_OVERHEAD
            };
            // The gate runs first on node 0 (a small linear layer).
            let input_scalars = full.input_bytes / 4;
            let gate_flops = 2 * input_scalars * k as u64;
            run.compute(0, gate_flops, 1, unit);
            // Route to top_k experts. Under a balanced gate the selected
            // set is uniform over experts, so a typical inference reaches
            // ⌈top_k·(K−1)/K⌉ remote experts (expert 0 is co-located with
            // the gate and is free when selected).
            let expected_remote = (top_k as f64 * (k as f64 - 1.0) / k as f64).ceil() as usize;
            let remote: Vec<usize> = (1..k).take(expected_remote).collect();
            for &node in &remote {
                run.delay(0, overhead);
                run.send(0, node, full.input_bytes);
            }
            run.compute(0, expert.total_flops(), expert.depth(), unit);
            for &node in &remote {
                run.compute(node, expert.total_flops(), expert.depth(), unit);
                run.send(node, 0, workload.result_bytes.max(40));
            }
            // Gate combination is negligible.
            memory_percent = price_memory(
                device,
                expert.param_bytes + (input_scalars * k as u64) * 4,
                expert.peak_activation_bytes,
            );
        }
    }

    StrategyReport {
        sim: run.finish(None),
        memory_percent,
    }
}

/// A node-level availability change in a churn scenario, applied at the
/// start of the given inference round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// `node` stops responding from round `round` onward.
    Fail {
        /// Round at which the node goes dark.
        round: u64,
        /// Failing node index (never 0 — the master).
        node: usize,
    },
    /// `node` comes back (with its original expert weights intact, as a
    /// rebooted edge device would) at round `round`.
    Recover {
        /// Round at which the node is readmitted.
        round: u64,
        /// Recovering node index.
        node: usize,
    },
}

/// Outcome of [`simulate_churn`]: the priced session plus the recovery
/// bookkeeping mirrored from `teamnet_core::recover`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySimReport {
    /// Latency/utilization/traffic of the whole churned session.
    pub sim: SimReport,
    /// Successful expert migrations (quarantined host → certified
    /// survivor).
    pub migrations: u64,
    /// Candidates refused for lack of certified spare memory.
    pub backtracks: u64,
    /// Experts handed back to readmitted homes.
    pub handbacks: u64,
    /// Total expert parameter bytes shipped for migrations.
    pub bytes_migrated: u64,
    /// Rounds answered with fewer than `k` experts (failure not yet
    /// re-placed, or re-placement deferred for lack of capacity).
    pub degraded_rounds: u64,
    /// Final expert → host placement (experts at home omitted).
    pub placements: std::collections::BTreeMap<usize, usize>,
}

/// Simulates a `rounds`-round TeamNet session on `cluster` (expert `i`
/// homed on node `i`, node 0 the master) through a failure/recovery
/// scenario, mirroring the master-side recovery pass of
/// `teamnet_core::recover` at fleet scale: when a node fails, its expert
/// is re-placed onto the surviving non-master node with the most
/// certified spare memory that admits it (inadmissible candidates are
/// refused and counted as backtracks; with no admissible survivor the
/// re-placement is deferred and the round degrades), and handed back
/// when the home recovers. The recovery pass runs *after* each round's
/// gather, like the runtime's `tick` — so the failure round itself is
/// degraded and every later round has full coverage again.
///
/// # Panics
///
/// Panics if an event names node 0 (the master cannot be churned) or a
/// node outside the cluster.
pub fn simulate_churn(
    workload: &Workload,
    cluster: &SimCluster,
    unit: ComputeUnit,
    rounds: u64,
    events: &[ChurnEvent],
) -> RecoverySimReport {
    let k = cluster.len();
    let expert = &workload.expert;
    let required = expert.required_resident_bytes();
    for event in events {
        let (ChurnEvent::Fail { node, .. } | ChurnEvent::Recover { node, .. }) = *event;
        // Scenario validation, not a runtime condition. lint: allow(no-panic)
        assert!(node != 0, "the master (node 0) cannot be churned");
        assert!(
            node < k,
            "event names node {node} outside the {k}-node cluster"
        );
    }

    let mut run = cluster.run();
    let mut alive = vec![true; k];
    // Resident model bytes per node: every node starts serving its own
    // expert. Spare is certified from the device profile minus this.
    let mut hosted: Vec<u64> = vec![required; k];
    let mut placements: std::collections::BTreeMap<usize, usize> = Default::default();
    let (mut migrations, mut backtracks, mut handbacks) = (0u64, 0u64, 0u64);
    let mut bytes_migrated = 0u64;
    let mut degraded_rounds = 0u64;

    for round in 0..rounds {
        for event in events {
            match *event {
                ChurnEvent::Fail { round: r, node } if r == round => alive[node] = false,
                ChurnEvent::Recover { round: r, node } if r == round => alive[node] = true,
                _ => {}
            }
        }

        // The round itself: broadcast, every live host computes each
        // expert it holds, gather.
        let host_of = |e: usize| placements.get(&e).copied().unwrap_or(e);
        run.broadcast(0, workload.full.input_bytes);
        let mut covered = 0usize;
        for e in 0..k {
            let host = host_of(e);
            if alive[host] {
                run.compute(host, expert.total_flops(), expert.depth(), unit);
                covered += 1;
            }
        }
        run.gather(0, workload.result_bytes);
        if covered < k {
            degraded_rounds += 1;
        }

        // Recovery pass (mirrors RecoveryManager::tick): hand-backs to
        // readmitted homes first, then re-place orphans onto the
        // surviving candidate with the most certified spare.
        let ready: Vec<(usize, usize)> = placements
            .iter()
            .filter(|&(&e, _)| alive[e])
            .map(|(&e, &s)| (e, s))
            .collect();
        for (e, surrogate) in ready {
            run.send(0, surrogate, 16); // release message
            hosted[surrogate] = hosted[surrogate].saturating_sub(required);
            placements.remove(&e);
            handbacks += 1;
        }
        for e in 0..k {
            let host = placements.get(&e).copied().unwrap_or(e);
            if alive[host] {
                continue;
            }
            let mut candidates: Vec<usize> = (1..k).filter(|&n| alive[n] && n != host).collect();
            candidates.sort_by_key(|&n| {
                (
                    std::cmp::Reverse(cluster.devices[n].spare_bytes(hosted[n])),
                    n,
                )
            });
            let mut placed = None;
            for &candidate in &candidates {
                if cluster.devices[candidate].spare_bytes(hosted[candidate]) >= required {
                    placed = Some(candidate);
                    break;
                }
                backtracks += 1; // refused: no certified spare
            }
            let Some(target) = placed else {
                continue; // deferred to a later round; stays degraded
            };
            if let Some(&old) = placements.get(&e) {
                hosted[old] = hosted[old].saturating_sub(required);
            }
            run.send(0, target, expert.param_bytes); // weight transfer
            hosted[target] += required;
            placements.insert(e, target);
            migrations += 1;
            bytes_migrated += expert.param_bytes;
        }
    }

    RecoverySimReport {
        sim: run.finish(None),
        migrations,
        backtracks,
        handbacks,
        bytes_migrated,
        degraded_rounds,
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamnet_nn::ModelSpec;
    use teamnet_simnet::DeviceProfile;

    fn mnist_workload() -> Workload {
        let full = ModelSpec::mlp(8, 256).build(0);
        let expert = ModelSpec::mlp(4, 128).build(0);
        Workload {
            full: ModelCost::measure(&full, &[784]),
            expert: ModelCost::measure(&expert, &[784]),
            result_bytes: 20,
        }
    }

    fn cifar_workload() -> Workload {
        let full = ModelSpec::shake_shake(26, 8).build(0);
        let expert = ModelSpec::shake_shake(14, 6).build(0);
        Workload {
            full: ModelCost::measure(&full, &[3, 32, 32]),
            expert: ModelCost::measure(&expert, &[3, 32, 32]),
            result_bytes: 20,
        }
    }

    fn jetson(n: usize) -> SimCluster {
        SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), n)
    }

    #[test]
    fn model_cost_measurement() {
        let w = mnist_workload();
        assert!(w.full.total_flops() > w.expert.total_flops());
        assert_eq!(w.full.input_bytes, 784 * 4);
        assert!(w.full.param_bytes > 100_000);
        assert!(w.full.depth() >= 8);
    }

    /// Table I(a) shape: TeamNet ≲ baseline; MPI-Matrix catastrophically
    /// slower; SG-MoE in between.
    #[test]
    fn mnist_cpu_latency_ordering() {
        let w = mnist_workload();
        let cluster = jetson(2);
        let base = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Cpu);
        let team = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Cpu);
        let mpi = simulate(
            Strategy::MpiMatrix { nodes: 2 },
            &w,
            &cluster,
            ComputeUnit::Cpu,
        );
        let moe = simulate(
            Strategy::SgMoeRpc { k: 2, top_k: 2 },
            &w,
            &cluster,
            ComputeUnit::Cpu,
        );
        let (b, t, m, g) = (
            base.sim.makespan.as_millis_f64(),
            team.sim.makespan.as_millis_f64(),
            mpi.sim.makespan.as_millis_f64(),
            moe.sim.makespan.as_millis_f64(),
        );
        assert!(m > 8.0 * b, "MPI {m} must dwarf baseline {b}");
        assert!(m > 8.0 * t, "MPI {m} must dwarf TeamNet {t}");
        assert!(
            g > t,
            "SG-MoE {g} pays the gate before experts start, TeamNet {t}"
        );
    }

    /// Table II shape on CPUs: TeamNet about halves the baseline; both MPI
    /// variants are much slower; MPI-Kernel worse than MPI-Branch.
    #[test]
    fn cifar_cpu_latency_ordering() {
        let w = cifar_workload();
        let cluster = jetson(2);
        let base = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Cpu);
        let team = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Cpu);
        let branch = simulate(Strategy::MpiBranch, &w, &cluster, ComputeUnit::Cpu);
        let kernel = simulate(
            Strategy::MpiKernel { nodes: 2 },
            &w,
            &cluster,
            ComputeUnit::Cpu,
        );
        let (b, t, br, ke) = (
            base.sim.makespan.as_millis_f64(),
            team.sim.makespan.as_millis_f64(),
            branch.sim.makespan.as_millis_f64(),
            kernel.sim.makespan.as_millis_f64(),
        );
        assert!(t < 0.7 * b, "TeamNet {t} should beat baseline {b} clearly");
        assert!(
            br > b,
            "MPI-Branch {br} pays per-block round trips vs baseline {b}"
        );
        assert!(
            ke > br,
            "MPI-Kernel {ke} moves more data than MPI-Branch {br}"
        );
    }

    /// Table I(b) shape: on the GPU the baseline's tiny-MLP compute is so
    /// fast that WiFi overhead makes TeamNet *slower* than the baseline.
    #[test]
    fn gpu_smallness_inverts_teamnet_gain() {
        let w = mnist_workload();
        let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_gpu(), 2);
        let base = simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Gpu);
        let team = simulate(Strategy::TeamNet { k: 2 }, &w, &cluster, ComputeUnit::Gpu);
        assert!(
            team.sim.makespan > base.sim.makespan,
            "TeamNet {} must lose to the GPU baseline {} on tiny models",
            team.sim.makespan,
            base.sim.makespan
        );
    }

    /// More experts shrink per-node memory (Figure 5's memory panel).
    #[test]
    fn teamnet_memory_shrinks_with_more_experts() {
        let full = ModelSpec::mlp(8, 256).build(0);
        let half = ModelSpec::mlp(4, 256).build(0);
        let quarter = ModelSpec::mlp(2, 256).build(0);
        let mk = |expert: &teamnet_nn::Sequential| Workload {
            full: ModelCost::measure(&full, &[784]),
            expert: ModelCost::measure(expert, &[784]),
            result_bytes: 20,
        };
        let cluster = jetson(4);
        let w2 = mk(&half);
        let w4 = mk(&quarter);
        let double = simulate(Strategy::TeamNet { k: 2 }, &w2, &cluster, ComputeUnit::Cpu);
        let quadro = simulate(Strategy::TeamNet { k: 4 }, &w4, &cluster, ComputeUnit::Cpu);
        let base = simulate(Strategy::Baseline, &w2, &cluster, ComputeUnit::Cpu);
        assert!(double.memory_percent < base.memory_percent);
        assert!(quadro.memory_percent < double.memory_percent);
    }

    /// Regression pin for the certified memory model: with the resident
    /// share derived from the static certificate (runtime + weights +
    /// liveness peak) instead of the old per-layer heuristic, the
    /// percentages sit in the paper's ballpark — a TensorFlow-class
    /// runtime dominating small edge models, a few percent of an 8 GiB
    /// Jetson and somewhat more of a 1 GiB Pi.
    #[test]
    fn memory_percent_paper_ballpark() {
        let w = mnist_workload();
        let jetson = jetson(2);
        let base = simulate(Strategy::Baseline, &w, &jetson, ComputeUnit::Cpu);
        assert!(
            (4.5..5.5).contains(&base.memory_percent),
            "{}",
            base.memory_percent
        );
        let team = simulate(Strategy::TeamNet { k: 2 }, &w, &jetson, ComputeUnit::Cpu);
        let idle = DeviceProfile::jetson_tx2_cpu().memory_percent(0, 0);
        assert!(idle < team.memory_percent && team.memory_percent < base.memory_percent);

        let pi = SimCluster::homogeneous(DeviceProfile::raspberry_pi_3b_plus(), 2);
        let pi_base = simulate(Strategy::Baseline, &w, &pi, ComputeUnit::Cpu);
        assert!(
            (5.5..7.5).contains(&pi_base.memory_percent),
            "{}",
            pi_base.memory_percent
        );
        assert!(
            pi_base.memory_percent > base.memory_percent,
            "1 GiB vs 8 GiB"
        );
    }

    #[test]
    #[should_panic(expected = "placement rejected by static admission check")]
    fn inadmissible_placement_is_rejected_at_session_setup() {
        let w = mnist_workload();
        let mut starved = DeviceProfile::jetson_tx2_cpu();
        // Leave less free RAM than the certified requirement of the model.
        starved.memory_capacity_bytes =
            starved.runtime_resident_bytes + w.full.required_resident_bytes() - 1;
        let cluster = SimCluster::homogeneous(starved, 1);
        simulate(Strategy::Baseline, &w, &cluster, ComputeUnit::Cpu);
    }

    #[test]
    fn traffic_accounting() {
        let w = mnist_workload();
        let cluster = jetson(4);
        let team = simulate(Strategy::TeamNet { k: 4 }, &w, &cluster, ComputeUnit::Cpu);
        // 3 input unicasts + 3 result messages.
        assert_eq!(team.sim.messages_sent, 6);
        let mpi = simulate(
            Strategy::MpiMatrix { nodes: 4 },
            &w,
            &cluster,
            ComputeUnit::Cpu,
        );
        assert!(mpi.sim.messages_sent > 50, "{}", mpi.sim.messages_sent);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_undersized_cluster() {
        let w = mnist_workload();
        simulate(Strategy::TeamNet { k: 4 }, &w, &jetson(2), ComputeUnit::Cpu);
    }

    /// One failure mid-session: the failure round degrades, the expert
    /// migrates to the roomiest survivor, and recovery hands it back —
    /// every other round has full coverage.
    #[test]
    fn churn_migrates_and_hands_back() {
        let w = mnist_workload();
        let cluster = jetson(4);
        let events = [
            ChurnEvent::Fail { round: 1, node: 2 },
            ChurnEvent::Recover { round: 4, node: 2 },
        ];
        let report = simulate_churn(&w, &cluster, ComputeUnit::Cpu, 6, &events);
        assert_eq!(report.migrations, 1);
        assert_eq!(report.handbacks, 1);
        assert_eq!(report.backtracks, 0);
        assert_eq!(report.degraded_rounds, 1, "only the failure round");
        assert_eq!(report.bytes_migrated, w.expert.param_bytes);
        assert!(
            report.placements.is_empty(),
            "handed back: {:?}",
            report.placements
        );
        // Fleet-scale determinism: the whole report is reproducible.
        let again = simulate_churn(&w, &cluster, ComputeUnit::Cpu, 6, &events);
        assert_eq!(report, again);
    }

    /// With no survivor holding certified spare for the orphan, every
    /// candidate is refused (backtracked) and re-placement is deferred —
    /// the session degrades instead of over-committing a device.
    #[test]
    fn churn_defers_when_no_survivor_admits() {
        let w = mnist_workload();
        let mut starved = DeviceProfile::jetson_tx2_cpu();
        // Each device fits exactly its own expert and nothing more.
        starved.memory_capacity_bytes =
            starved.runtime_resident_bytes + w.expert.required_resident_bytes();
        let cluster = SimCluster::homogeneous(starved, 3);
        let events = [
            ChurnEvent::Fail { round: 0, node: 2 },
            ChurnEvent::Recover { round: 2, node: 2 },
        ];
        let report = simulate_churn(&w, &cluster, ComputeUnit::Cpu, 4, &events);
        assert_eq!(report.migrations, 0, "nothing admitted the orphan");
        assert!(report.backtracks >= 1, "{report:?}");
        assert_eq!(report.degraded_rounds, 2, "rounds 0 and 1");
        assert_eq!(report.handbacks, 0, "never migrated, nothing to return");
        assert!(report.placements.is_empty());
    }

    #[test]
    #[should_panic(expected = "master (node 0) cannot be churned")]
    fn churn_rejects_master_failure() {
        let w = mnist_workload();
        simulate_churn(
            &w,
            &jetson(2),
            ComputeUnit::Cpu,
            1,
            &[ChurnEvent::Fail { round: 0, node: 0 }],
        );
    }
}
