//! # teamnet-partition
//!
//! The paper's three MPI-style model-parallel baselines, implemented both
//! as *real* distributed executions over `teamnet-net` and as calibrated
//! cost-model strategies for the table-generating simulations:
//!
//! * **MPI-Matrix** ([`mpi_matrix_forward`]) — column-parallel dense
//!   layers with a per-layer all-gather (MLPs);
//! * **MPI-Branch** ([`branch_parallel_forward`]) — the two Shake-Shake
//!   branches on two devices, one round trip per block;
//! * **MPI-Kernel** ([`kernel_parallel_conv2d`]) — convolution kernels
//!   (output channels) spread over devices, broadcast + gather per layer.
//!
//! [`simulate`] prices any [`Strategy`] (these three plus Baseline,
//! TeamNet and both SG-MoE deployments) on a simulated edge cluster using
//! cost profiles measured from the real models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod kernel;
mod matrix;
mod sim;

pub use branch::{
    branch_parallel_forward, serve_branch_worker, shutdown_branch_worker, TAG_BRANCH_INPUT,
    TAG_BRANCH_OUTPUT, TAG_BRANCH_SHUTDOWN,
};
pub use kernel::{kernel_parallel_conv2d, ConvShard};
pub use matrix::{mpi_matrix_forward, shard_mlp, split_range, split_sizes, MlpShards};
pub use sim::{
    simulate, simulate_churn, ChurnEvent, LayerCost, ModelCost, RecoverySimReport, Strategy,
    StrategyReport, Workload,
};
