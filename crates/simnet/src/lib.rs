//! # teamnet-simnet
//!
//! A discrete-event simulator of WiFi-connected edge devices, standing in
//! for the physical testbed of the TeamNet (ICDCS 2019) paper (Raspberry
//! Pi 3 Model B+ and Jetson TX2 boards on one 802.11 BSS).
//!
//! Three pieces compose:
//!
//! * [`DeviceProfile`] — effective-roofline compute/memory models of the
//!   paper's three hardware configurations (RPi CPU, Jetson CPU, Jetson
//!   GPU), calibrated against the paper's single-device baseline rows;
//! * [`WifiLink`] — a shared-medium link model with per-message overhead
//!   and finite goodput (the two properties that decide every distributed
//!   comparison in the paper);
//! * [`SimCluster`] / [`SimRun`] — vector-clock simulation of a
//!   distributed inference expressed as compute/send/broadcast/gather
//!   steps, yielding latency and utilization reports.
//!
//! [`EventQueue`] provides the underlying deterministic event ordering for
//! request-arrival simulations in the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use teamnet_simnet::{ComputeUnit, DeviceProfile, SimCluster};
//!
//! // Two Jetsons collaborating TeamNet-style on one input.
//! let cluster = SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), 2);
//! let mut run = cluster.run();
//! run.broadcast(0, 3_136);                        // master ships the image
//! run.compute(0, 750_000, 4, ComputeUnit::Cpu);   // both experts in parallel
//! run.compute(1, 750_000, 4, ComputeUnit::Cpu);
//! run.gather(0, 64);                              // worker returns its result
//! let report = run.finish(None);
//! assert!(report.makespan.as_millis_f64() < 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod des;
mod device;
mod link;
mod sim;
mod time;

pub use arrivals::{poisson_schedule, simulate_serving, ServingReport};
pub use des::EventQueue;
pub use device::{AdmissionError, ComputeUnit, DeviceProfile};
pub use link::WifiLink;
pub use sim::{SimCluster, SimReport, SimRun};
pub use time::SimTime;
