//! Edge-device compute and memory profiles.
//!
//! The paper measures on three hardware configurations: Raspberry Pi 3
//! Model B+ (CPU), Jetson TX2 using CPU only, and Jetson TX2 using its
//! integrated GPU. None of that hardware is available here, so each is
//! modeled by an *effective* roofline: a fixed framework invocation
//! overhead, a per-layer dispatch overhead, and a sustained FLOP/s rate.
//! The constants are calibrated so the paper's *baseline* rows (single
//! model, no communication) land near the reported magnitudes; everything
//! else (the relative behaviour of TeamNet / MPI / SG-MoE) then follows
//! from the model structure rather than from tuning.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which execution unit a model runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeUnit {
    /// The device's CPU cores.
    Cpu,
    /// The device's integrated GPU (only on devices that have one).
    Gpu,
}

/// An effective-roofline model of one edge device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Sustained CPU throughput in GFLOP/s (framework-effective, not peak).
    pub cpu_gflops: f64,
    /// Sustained GPU throughput in GFLOP/s, if the device has a usable GPU.
    pub gpu_gflops: Option<f64>,
    /// Fixed cost of invoking the inference runtime once (session dispatch,
    /// input staging).
    pub invoke_overhead: SimTime,
    /// Per-layer kernel-launch/dispatch overhead on the CPU.
    pub cpu_layer_overhead: SimTime,
    /// Per-layer kernel-launch overhead on the GPU (launches are costlier
    /// relative to compute there).
    pub gpu_layer_overhead: SimTime,
    /// Hard physical RAM capacity in bytes (Jetson TX2: 8 GiB shared with
    /// the GPU; RPi 3B+: 1 GiB). The static admission check compares a
    /// model's certified resident requirement against this.
    pub memory_capacity_bytes: u64,
    /// Resident bytes of the ML framework runtime before any model is
    /// loaded (TensorFlow is heavy).
    pub runtime_resident_bytes: u64,
    /// Number of CPU cores (for utilization accounting).
    pub cpu_cores: u32,
}

/// A placement rejected by the static admission check: the model's
/// certified resident requirement does not fit the device RAM left over
/// after the framework runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionError {
    /// Device that rejected the placement.
    pub device: String,
    /// Certified resident bytes the model needs (parameters plus peak
    /// live activations, `teamnet_nn::ExpertCost::required_resident_bytes`).
    pub required_bytes: u64,
    /// Bytes actually available for model state on the device.
    pub available_bytes: u64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model needs {} resident bytes but {} has only {} available \
             after the runtime",
            self.required_bytes, self.device, self.available_bytes
        )
    }
}

impl std::error::Error for AdmissionError {}

impl DeviceProfile {
    /// Raspberry Pi 3 Model B+ (quad A53, 1 GB RAM, no usable GPU).
    pub fn raspberry_pi_3b_plus() -> Self {
        DeviceProfile {
            name: "Raspberry Pi 3 Model B+".to_string(),
            cpu_gflops: 0.5,
            gpu_gflops: None,
            invoke_overhead: SimTime::from_micros(3_000),
            cpu_layer_overhead: SimTime::from_micros(1_200),
            gpu_layer_overhead: SimTime::ZERO,
            memory_capacity_bytes: 1 << 30,
            runtime_resident_bytes: 60 << 20,
            cpu_cores: 4,
        }
    }

    /// Jetson TX2 running models on its CPU cluster only.
    pub fn jetson_tx2_cpu() -> Self {
        DeviceProfile {
            name: "Jetson TX2 (CPU only)".to_string(),
            cpu_gflops: 4.0,
            gpu_gflops: None,
            invoke_overhead: SimTime::from_micros(1_000),
            cpu_layer_overhead: SimTime::from_micros(250),
            gpu_layer_overhead: SimTime::ZERO,
            memory_capacity_bytes: 8 << 30,
            runtime_resident_bytes: 380 << 20,
            cpu_cores: 6,
        }
    }

    /// Jetson TX2 with its 256-core Pascal GPU enabled.
    pub fn jetson_tx2_gpu() -> Self {
        DeviceProfile {
            name: "Jetson TX2 (GPU + CPU)".to_string(),
            cpu_gflops: 4.0,
            gpu_gflops: Some(110.0),
            invoke_overhead: SimTime::from_micros(120),
            cpu_layer_overhead: SimTime::from_micros(250),
            gpu_layer_overhead: SimTime::from_micros(25),
            memory_capacity_bytes: 8 << 30,
            runtime_resident_bytes: 560 << 20,
            cpu_cores: 6,
        }
    }

    /// Modeled wall-clock for one forward pass of `flops` floating-point
    /// operations across `layers` layers on the chosen unit.
    ///
    /// # Panics
    ///
    /// Panics if [`ComputeUnit::Gpu`] is requested on a device without one.
    pub fn compute_time(&self, flops: u64, layers: usize, unit: ComputeUnit) -> SimTime {
        let (gflops, layer_overhead) = match unit {
            ComputeUnit::Cpu => (self.cpu_gflops, self.cpu_layer_overhead),
            ComputeUnit::Gpu => (
                self.gpu_gflops
                    // Documented `# Panics` contract: a GPU request against a
                    // CPU-only profile is a simulation-config bug, not a
                    // runtime condition. lint: allow(no-panic)
                    .unwrap_or_else(|| panic!("{} has no GPU", self.name)),
                self.gpu_layer_overhead,
            ),
        };
        let crunch = SimTime::from_secs_f64(flops as f64 / (gflops * 1e9));
        let mut t = self.invoke_overhead + crunch;
        for _ in 0..layers {
            t += layer_overhead;
        }
        t
    }

    /// Total modeled resident bytes when serving a model whose static
    /// certificate requires `required_resident_bytes` (weights plus peak
    /// live activations): the certified requirement on top of the fixed
    /// framework runtime.
    ///
    /// Earlier revisions estimated the model term with a per-layer-MB
    /// heuristic; it is now taken directly from the liveness analysis in
    /// `teamnet_nn::cost` (DESIGN.md §13), so the number here is the same
    /// one `cargo xtask cost` certifies and CI checks against measured
    /// allocations.
    pub fn resident_bytes(&self, required_resident_bytes: u64) -> u64 {
        self.runtime_resident_bytes
            .saturating_add(required_resident_bytes)
    }

    /// Modeled resident memory share (percent of device RAM) when serving
    /// a model of `param_bytes` parameters with certified peak live
    /// activation footprint `peak_activation_bytes`.
    pub fn memory_percent(&self, param_bytes: u64, peak_activation_bytes: u64) -> f64 {
        let resident = self.resident_bytes(param_bytes.saturating_add(peak_activation_bytes));
        (resident as f64 / self.memory_capacity_bytes as f64 * 100.0).min(100.0)
    }

    /// Certified spare bytes left for *additional* model state once the
    /// framework runtime and `hosted_bytes` of already-resident model
    /// state are accounted for — the quantity the recovery subsystem
    /// (`teamnet_core::recover`) ranks re-placement candidates by.
    pub fn spare_bytes(&self, hosted_bytes: u64) -> u64 {
        self.memory_capacity_bytes
            .saturating_sub(self.runtime_resident_bytes)
            .saturating_sub(hosted_bytes)
    }

    /// Static admission check: can a model whose certificate requires
    /// `required_resident_bytes` fit on this device at all?
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the requirement exceeds the RAM
    /// left after the framework runtime.
    pub fn admit(&self, required_resident_bytes: u64) -> Result<(), AdmissionError> {
        let available = self
            .memory_capacity_bytes
            .saturating_sub(self.runtime_resident_bytes);
        if required_resident_bytes <= available {
            Ok(())
        } else {
            Err(AdmissionError {
                device: self.name.clone(),
                required_bytes: required_resident_bytes,
                available_bytes: available,
            })
        }
    }

    /// The pure arithmetic part of [`DeviceProfile::compute_time`]
    /// (exclusive of invoke and per-layer dispatch overheads): the time the
    /// execution unit itself is actually busy.
    ///
    /// # Panics
    ///
    /// Panics if [`ComputeUnit::Gpu`] is requested on a device without one.
    pub fn crunch_time(&self, flops: u64, unit: ComputeUnit) -> SimTime {
        let gflops = match unit {
            ComputeUnit::Cpu => self.cpu_gflops,
            ComputeUnit::Gpu => {
                // Documented `# Panics` contract, as in `compute_time`.
                // lint: allow(no-panic)
                self.gpu_gflops
                    .unwrap_or_else(|| panic!("{} has no GPU", self.name))
            }
        };
        SimTime::from_secs_f64(flops as f64 / (gflops * 1e9))
    }

    /// Modeled average CPU utilization (percent) while serving requests
    /// whose per-request CPU busy time is `cpu_busy` at one request per
    /// `period`.
    ///
    /// A busy fraction of 1.0 maps to the utilization of a single-threaded
    /// inference loop (100 / cores × an empirical parallelism factor of
    /// ~2.5: BLAS kernels use a few cores).
    pub fn cpu_percent(&self, cpu_busy: SimTime, period: SimTime) -> f64 {
        if period == SimTime::ZERO {
            return 0.0;
        }
        let busy_frac = (cpu_busy.as_secs_f64() / period.as_secs_f64()).min(1.0);
        let parallelism = 2.5f64.min(self.cpu_cores as f64);
        (busy_frac * parallelism / self.cpu_cores as f64 * 100.0).min(100.0)
    }

    /// Modeled average GPU utilization (percent), analogous to
    /// [`DeviceProfile::cpu_percent`]. Zero on devices without a GPU.
    pub fn gpu_percent(&self, gpu_busy: SimTime, period: SimTime) -> f64 {
        if self.gpu_gflops.is_none() || period == SimTime::ZERO {
            return 0.0;
        }
        let busy_frac = (gpu_busy.as_secs_f64() / period.as_secs_f64()).min(1.0);
        (busy_frac * 100.0).min(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_sane_shapes() {
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        let jcpu = DeviceProfile::jetson_tx2_cpu();
        let jgpu = DeviceProfile::jetson_tx2_gpu();
        assert!(rpi.cpu_gflops < jcpu.cpu_gflops);
        assert!(rpi.gpu_gflops.is_none());
        assert!(jgpu.gpu_gflops.unwrap() > 10.0 * jgpu.cpu_gflops);
        assert!(rpi.memory_capacity_bytes < jcpu.memory_capacity_bytes);
    }

    #[test]
    fn compute_time_scales_with_flops() {
        let dev = DeviceProfile::jetson_tx2_cpu();
        let small = dev.compute_time(1_000_000, 8, ComputeUnit::Cpu);
        let large = dev.compute_time(100_000_000, 8, ComputeUnit::Cpu);
        assert!(large > small);
        // 100 MFLOP at 4 GFLOP/s = 25 ms of crunch plus overheads.
        assert!((large.as_millis_f64() - 25.0).abs() < 5.0, "{large}");
    }

    #[test]
    fn gpu_is_faster_for_heavy_models() {
        let dev = DeviceProfile::jetson_tx2_gpu();
        let heavy = 1_500_000_000u64; // SS-26 class
        let cpu = dev.compute_time(heavy, 26, ComputeUnit::Cpu);
        let gpu = dev.compute_time(heavy, 26, ComputeUnit::Gpu);
        assert!(gpu < cpu);
        assert!(gpu.as_millis_f64() < 30.0, "{gpu}");
    }

    #[test]
    #[should_panic(expected = "has no GPU")]
    fn gpu_on_rpi_panics() {
        DeviceProfile::raspberry_pi_3b_plus().compute_time(1, 1, ComputeUnit::Gpu);
    }

    #[test]
    fn baseline_mnist_latency_matches_paper_ballpark() {
        // Paper Table I(a): 8-layer MLP baseline on Jetson CPU = 3.4 ms.
        // Our MLP-8 (hidden 256) is ≈ 1.5 MFLOP over 8 layers.
        let dev = DeviceProfile::jetson_tx2_cpu();
        let t = dev
            .compute_time(1_500_000, 8, ComputeUnit::Cpu)
            .as_millis_f64();
        assert!((1.0..8.0).contains(&t), "modeled {t} ms, paper 3.4 ms");
    }

    #[test]
    fn baseline_cifar_latency_matches_paper_ballpark() {
        // Paper Table II: SS-26 baseline, Jetson CPU 378 ms / GPU 14.3 ms.
        let flops = 1_500_000_000u64;
        let cpu = DeviceProfile::jetson_tx2_cpu().compute_time(flops, 26, ComputeUnit::Cpu);
        assert!((200.0..600.0).contains(&cpu.as_millis_f64()), "{cpu}");
        let gpu = DeviceProfile::jetson_tx2_gpu().compute_time(flops, 26, ComputeUnit::Gpu);
        assert!((5.0..30.0).contains(&gpu.as_millis_f64()), "{gpu}");
    }

    #[test]
    fn memory_percent_ranges() {
        let dev = DeviceProfile::jetson_tx2_cpu();
        // The framework runtime alone: 380 MiB of 8 GiB ≈ 4.6%.
        let idle = dev.memory_percent(0, 0);
        assert!((4.0..5.5).contains(&idle), "{idle}");
        // A bigger certified requirement costs strictly more.
        let baseline = dev.memory_percent(6_000_000, 2_000_000);
        let expert = dev.memory_percent(1_000_000, 500_000);
        assert!(idle < expert && expert < baseline);
        // Capped at 100.
        assert_eq!(dev.memory_percent(u64::MAX / 8, 0), 100.0);
    }

    #[test]
    fn memory_tracks_the_certified_requirement() {
        // The heuristic this replaced charged RAM per layer; the share now
        // moves only with the certified resident bytes.
        let dev = DeviceProfile::jetson_tx2_cpu();
        let small = dev.memory_percent(100_000, 100_000);
        let large = dev.memory_percent(10_100_000, 100_000);
        let expected = 10_000_000.0 / dev.memory_capacity_bytes as f64 * 100.0;
        assert!(
            (large - small - expected).abs() < 1e-9,
            "{large} - {small} != {expected}"
        );
    }

    #[test]
    fn spare_bytes_tracks_hosted_state() {
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        let empty = rpi.spare_bytes(0);
        assert_eq!(
            empty,
            rpi.memory_capacity_bytes - rpi.runtime_resident_bytes
        );
        assert_eq!(rpi.spare_bytes(100 << 20), empty - (100 << 20));
        // Saturates instead of wrapping when over-committed.
        assert_eq!(rpi.spare_bytes(u64::MAX), 0);
        // Spare and admission agree: what fits in spare is admitted.
        assert!(rpi.admit(rpi.spare_bytes(0)).is_ok());
        assert!(rpi.admit(rpi.spare_bytes(0) + 1).is_err());
    }

    #[test]
    fn admission_is_a_hard_capacity_check() {
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        assert!(rpi.admit(100 << 20).is_ok(), "100 MiB fits a 1 GiB Pi");
        let available = rpi.memory_capacity_bytes - rpi.runtime_resident_bytes;
        assert!(rpi.admit(available).is_ok(), "exact fit admitted");
        let err = rpi.admit(available + 1).unwrap_err();
        assert_eq!(err.available_bytes, available);
        assert_eq!(err.required_bytes, available + 1);
        assert!(err.to_string().contains("Raspberry Pi"), "{err}");
        // The Jetson admits what the Pi rejects.
        assert!(DeviceProfile::jetson_tx2_cpu().admit(available + 1).is_ok());
    }

    #[test]
    fn crunch_time_excludes_overheads() {
        let dev = DeviceProfile::jetson_tx2_gpu();
        let crunch = dev.crunch_time(1_100_000_000, ComputeUnit::Gpu);
        assert!((crunch.as_millis_f64() - 10.0).abs() < 0.1, "{crunch}");
        let total = dev.compute_time(1_100_000_000, 26, ComputeUnit::Gpu);
        assert!(total > crunch);
    }

    #[test]
    fn utilization_model() {
        let dev = DeviceProfile::jetson_tx2_cpu();
        // Fully busy single-threaded loop: 2.5/6 cores ≈ 41%.
        let full = dev.cpu_percent(SimTime::from_millis(10), SimTime::from_millis(10));
        assert!((35.0..50.0).contains(&full), "{full}");
        // Half busy → half of that.
        let half = dev.cpu_percent(SimTime::from_millis(5), SimTime::from_millis(10));
        assert!((full / half - 2.0).abs() < 0.1);
        assert_eq!(dev.cpu_percent(SimTime::from_millis(1), SimTime::ZERO), 0.0);
        // GPU percent is zero without a GPU.
        assert_eq!(
            DeviceProfile::raspberry_pi_3b_plus()
                .gpu_percent(SimTime::from_millis(1), SimTime::from_millis(1)),
            0.0
        );
        let gpu = DeviceProfile::jetson_tx2_gpu()
            .gpu_percent(SimTime::from_millis(3), SimTime::from_millis(10));
        assert!((gpu - 30.0).abs() < 1.0);
    }
}
