//! A deterministic discrete-event queue.
//!
//! Events fire in time order; ties break by insertion order (FIFO), which
//! keeps simulations reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use teamnet_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.next().unwrap().1, "sooner");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time (events
    /// cannot fire in the past).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before now ({})",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.heap.push(Entry {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the simulation clock to its
    /// firing time.
    #[allow(clippy::should_implement_trait)] // queue pop, not an Iterator
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventQueue(now {}, {} pending)",
            self.now,
            self.heap.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.next();
        assert_eq!(q.now(), SimTime::from_millis(5));
        // schedule_in is relative to the advanced clock.
        q.schedule_in(SimTime::from_millis(2), ());
        let (at, _) = q.next().unwrap();
        assert_eq!(at, SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.next();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.next();
        assert!(q.is_empty());
        assert!(q.next().is_none());
    }
}
