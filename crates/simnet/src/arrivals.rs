//! Request-arrival simulation: how a strategy behaves under load.
//!
//! The paper's tables report per-inference latency in isolation; a real
//! deployment serves a *stream* of sensing events. This module runs a
//! Poisson arrival process through a single-server queue (the master node
//! serializes inferences) on the deterministic [`EventQueue`], yielding
//! mean/percentile response times and utilization — the data for the
//! request-rate ablation.

use crate::des::EventQueue;
use crate::time::SimTime;
use rand::Rng;

/// One simulated service episode.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests served.
    pub served: usize,
    /// Mean end-to-end response time (waiting + service).
    pub mean_response: SimTime,
    /// 95th-percentile response time.
    pub p95_response: SimTime,
    /// Fraction of time the server was busy.
    pub utilization: f64,
    /// Largest queue depth observed.
    pub max_queue_depth: usize,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    Departure,
}

/// Draws `requests` Poisson arrival instants at `rate_hz` (exponential
/// inter-arrival times), starting from time zero. This is the offered-load
/// process shared by [`simulate_serving`] and the serving benchmark's
/// batching simulation, so both sample the same distribution from the
/// same seed.
///
/// # Panics
///
/// Panics if `rate_hz <= 0`.
pub fn poisson_schedule(rate_hz: f64, requests: usize, rng: &mut impl Rng) -> Vec<SimTime> {
    assert!(rate_hz > 0.0, "arrival rate must be positive");
    let mut t = 0.0f64;
    let mut arrival_at = Vec::with_capacity(requests);
    for _ in 0..requests {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate_hz;
        arrival_at.push(SimTime::from_secs_f64(t));
    }
    arrival_at
}

/// Simulates `requests` Poisson arrivals at `rate_hz` into a single server
/// with deterministic `service` time per request (M/D/1).
///
/// # Panics
///
/// Panics if `rate_hz <= 0`, `requests == 0` or `service` is zero.
pub fn simulate_serving(
    service: SimTime,
    rate_hz: f64,
    requests: usize,
    rng: &mut impl Rng,
) -> ServingReport {
    assert!(rate_hz > 0.0, "arrival rate must be positive");
    assert!(requests > 0, "need at least one request");
    assert!(service > SimTime::ZERO, "service time must be positive");

    let mut queue = EventQueue::new();
    // Pre-draw all arrival times (exponential inter-arrivals).
    let arrival_at = poisson_schedule(rate_hz, requests, rng);
    for (i, &at) in arrival_at.iter().enumerate() {
        queue.schedule(at, Event::Arrival(i));
    }

    let mut waiting: Vec<usize> = Vec::new();
    let mut busy_until = SimTime::ZERO;
    let mut busy_total = SimTime::ZERO;
    let mut in_service: Option<usize> = None;
    let mut responses: Vec<SimTime> = vec![SimTime::ZERO; requests];
    let mut max_depth = 0usize;
    let mut served = 0usize;

    while let Some((now, event)) = queue.next() {
        match event {
            Event::Arrival(id) => {
                if in_service.is_none() && now >= busy_until {
                    in_service = Some(id);
                    busy_until = now + service;
                    busy_total += service;
                    queue.schedule(busy_until, Event::Departure);
                } else {
                    waiting.push(id);
                    max_depth = max_depth.max(waiting.len());
                }
            }
            Event::Departure => {
                // Departures are only scheduled when a job enters service. lint: allow(no-expect)
                let id = in_service.take().expect("departure without a job");
                responses[id] = now.saturating_sub(arrival_at[id]);
                served += 1;
                if !waiting.is_empty() {
                    let next = waiting.remove(0);
                    in_service = Some(next);
                    busy_until = now + service;
                    busy_total += service;
                    queue.schedule(busy_until, Event::Departure);
                }
            }
        }
    }
    // Drain: any job still in service never departed (cannot happen — every
    // service schedules a departure), but jobs left waiting get the
    // response time they would have had.
    debug_assert!(in_service.is_none());
    debug_assert!(waiting.is_empty());

    let mut sorted: Vec<SimTime> = responses.clone();
    sorted.sort();
    let total: f64 = responses.iter().map(|r| r.as_secs_f64()).sum();
    // `requests > 0` was asserted on entry. lint: allow(no-expect)
    let horizon = busy_until.max(*arrival_at.last().expect("non-empty"));
    ServingReport {
        served,
        mean_response: SimTime::from_secs_f64(total / requests as f64),
        p95_response: sorted[(requests * 95 / 100).min(requests - 1)],
        utilization: (busy_total.as_secs_f64() / horizon.as_secs_f64()).min(1.0),
        max_queue_depth: max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn light_load_has_no_queueing() {
        let mut rng = StdRng::seed_from_u64(1);
        // 10 ms service, 1 request/s: essentially never queued.
        let report = simulate_serving(SimTime::from_millis(10), 1.0, 500, &mut rng);
        assert_eq!(report.served, 500);
        assert!(
            report.mean_response.as_millis_f64() < 11.0,
            "{:?}",
            report.mean_response
        );
        assert!(report.utilization < 0.05, "{}", report.utilization);
        assert!(report.max_queue_depth <= 1);
    }

    #[test]
    fn heavy_load_queues_and_saturates() {
        let mut rng = StdRng::seed_from_u64(2);
        // 10 ms service, 95 req/s → ρ = 0.95: long queues.
        let report = simulate_serving(SimTime::from_millis(10), 95.0, 2_000, &mut rng);
        assert!(report.utilization > 0.85, "{}", report.utilization);
        assert!(
            report.mean_response.as_millis_f64() > 30.0,
            "mean response {} should show queueing",
            report.mean_response
        );
        assert!(report.p95_response > report.mean_response);
    }

    #[test]
    fn matches_m_d_1_waiting_time_roughly() {
        // M/D/1: W = ρ·s / (2(1−ρ)); at ρ = 0.5 and s = 10 ms → 5 ms wait,
        // 15 ms response.
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate_serving(SimTime::from_millis(10), 50.0, 20_000, &mut rng);
        let mean_ms = report.mean_response.as_millis_f64();
        assert!(
            (mean_ms - 15.0).abs() < 2.0,
            "mean response {mean_ms} vs theory 15"
        );
    }

    #[test]
    fn faster_service_dominates() {
        let mut rng = StdRng::seed_from_u64(4);
        let slow = simulate_serving(SimTime::from_millis(20), 20.0, 2_000, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let fast = simulate_serving(SimTime::from_millis(5), 20.0, 2_000, &mut rng);
        assert!(fast.mean_response < slow.mean_response);
        assert!(fast.utilization < slow.utilization);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        simulate_serving(SimTime::from_millis(1), 0.0, 1, &mut rng);
    }

    #[test]
    fn poisson_schedule_is_monotone_with_correct_mean_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let at = poisson_schedule(100.0, 10_000, &mut rng);
        assert_eq!(at.len(), 10_000);
        assert!(at.windows(2).all(|w| w[0] <= w[1]));
        // Mean arrival rate within 5% of the offered 100 Hz.
        let horizon = at.last().unwrap().as_secs_f64();
        let rate = 10_000.0 / horizon;
        assert!((rate - 100.0).abs() < 5.0, "empirical rate {rate}");
        // Same seed → identical schedule (the serve bench relies on it).
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(at, poisson_schedule(100.0, 10_000, &mut rng2));
    }
}
