//! The WiFi link model.
//!
//! All devices in the paper's testbed share one 802.11 BSS. Two properties
//! of that medium drive every distributed result in the evaluation:
//!
//! 1. every message pays a fixed per-transmission overhead (contention,
//!    preamble, ACK) regardless of size — this is the "fixed cost over the
//!    WiFi communication" the paper blames for TeamNet losing to the
//!    baseline on small GPU models;
//! 2. the medium is shared — concurrent transmissions serialize, so a
//!    "broadcast" to k peers costs k airtimes.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A shared-medium wireless link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WifiLink {
    /// Fixed per-message latency: medium access + preamble + kernel/network
    /// stack traversal on both ends.
    pub per_message_overhead: SimTime,
    /// Effective application-layer throughput in megabits per second.
    pub bandwidth_mbps: f64,
}

impl WifiLink {
    /// A typical 802.11n home/lab network as seen by TCP payloads:
    /// ~0.4 ms per-message overhead, ~90 Mbit/s goodput.
    pub fn wifi_80211n() -> Self {
        WifiLink {
            per_message_overhead: SimTime::from_micros(400),
            bandwidth_mbps: 90.0,
        }
    }

    /// A congested or long-range WiFi link (~5 ms overhead, 20 Mbit/s).
    pub fn wifi_congested() -> Self {
        WifiLink {
            per_message_overhead: SimTime::from_micros(5_000),
            bandwidth_mbps: 20.0,
        }
    }

    /// A wired-Ethernet-class link for ablations (0.2 ms, 940 Mbit/s).
    pub fn ethernet() -> Self {
        WifiLink {
            per_message_overhead: SimTime::from_micros(200),
            bandwidth_mbps: 940.0,
        }
    }

    /// Airtime of one `bytes`-byte message.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let serialization =
            SimTime::from_secs_f64(bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6));
        self.per_message_overhead + serialization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_pay_mostly_overhead() {
        let link = WifiLink::wifi_80211n();
        let tiny = link.transfer_time(100);
        // 100 bytes at 90 Mbit/s ≈ 9 µs of serialization; overhead dominates.
        assert!((tiny.as_millis_f64() - 0.4).abs() < 0.1, "{tiny}");
    }

    #[test]
    fn large_messages_are_bandwidth_bound() {
        let link = WifiLink::wifi_80211n();
        let mb = link.transfer_time(1_000_000);
        // 8 Mbit / 90 Mbit/s ≈ 89 ms.
        assert!((mb.as_millis_f64() - 89.3).abs() < 3.0, "{mb}");
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let link = WifiLink::wifi_congested();
        assert!(link.transfer_time(10) < link.transfer_time(1_000));
        assert!(link.transfer_time(1_000) < link.transfer_time(100_000));
    }

    #[test]
    fn ethernet_beats_wifi() {
        let bytes = 50_000;
        assert!(
            WifiLink::ethernet().transfer_time(bytes)
                < WifiLink::wifi_80211n().transfer_time(bytes)
        );
    }
}
