//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// Nanosecond integers keep the simulator deterministic across platforms —
/// no floating-point drift in event ordering.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From fractional seconds (values below 0 clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Whole nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    /// Formats with adaptive human units (ns/µs/ms/s).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.1}µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_millis_f64(), 2.0);
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(1);
        assert_eq!((a + b).as_millis_f64(), 4.0);
        assert_eq!((a - b).as_millis_f64(), 2.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis_f64(), 4.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(10),
        ];
        times.sort();
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[2].as_millis_f64(), 3.0);
    }

    #[test]
    fn display_adapts_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.0µs");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "1.500s");
    }
}
