//! Cluster-level simulation of a distributed inference.
//!
//! A [`SimRun`] tracks one logical clock per device plus a shared-medium
//! clock for the WiFi channel. Execution strategies (TeamNet broadcast +
//! gather, MPI per-layer collectives, RPC fan-out) are expressed as
//! sequences of `compute` / `send` / `broadcast` / `gather` calls; the run
//! then reports the makespan and per-device utilization that the paper's
//! tables list.

use crate::device::{ComputeUnit, DeviceProfile};
use crate::link::WifiLink;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use teamnet_obs::{Counter, Obs};

/// A set of edge devices sharing one wireless medium.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCluster {
    /// Device profiles by node id.
    pub devices: Vec<DeviceProfile>,
    /// The shared link between all of them.
    pub link: WifiLink,
}

impl SimCluster {
    /// A cluster of `n` identical devices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(profile: DeviceProfile, n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one device");
        SimCluster {
            devices: vec![profile; n],
            link: WifiLink::wifi_80211n(),
        }
    }

    /// A cluster of explicitly listed (possibly different) devices — the
    /// paper's mixed Raspberry Pi / Jetson deployments.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn heterogeneous(devices: Vec<DeviceProfile>) -> Self {
        assert!(!devices.is_empty(), "cluster needs at least one device");
        SimCluster {
            devices,
            link: WifiLink::wifi_80211n(),
        }
    }

    /// Replaces the link model.
    pub fn with_link(mut self, link: WifiLink) -> Self {
        self.link = link;
        self
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the cluster has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Starts a fresh simulated execution.
    pub fn run(&self) -> SimRun<'_> {
        let obs = Obs::disabled();
        let c_messages = obs.metrics.counter("sim.messages");
        let c_bytes = obs.metrics.counter("sim.bytes");
        SimRun {
            cluster: self,
            node_time: vec![SimTime::ZERO; self.devices.len()],
            cpu_busy: vec![SimTime::ZERO; self.devices.len()],
            gpu_busy: vec![SimTime::ZERO; self.devices.len()],
            medium_free_at: SimTime::ZERO,
            bytes_sent: 0,
            messages_sent: 0,
            obs,
            c_messages,
            c_bytes,
        }
    }
}

/// One simulated distributed execution over a [`SimCluster`].
#[derive(Debug)]
pub struct SimRun<'a> {
    cluster: &'a SimCluster,
    node_time: Vec<SimTime>,
    cpu_busy: Vec<SimTime>,
    gpu_busy: Vec<SimTime>,
    medium_free_at: SimTime,
    bytes_sent: u64,
    messages_sent: u64,
    obs: Obs,
    c_messages: Counter,
    c_bytes: Counter,
}

impl SimRun<'_> {
    /// Routes sim-time spans (`sim.compute`, `sim.send`) and counters
    /// (`sim.messages`, `sim.bytes`) into `obs`. Span timestamps are the
    /// *simulated* clock values, not wall time, so traces of a given
    /// scenario are byte-identical run-to-run (DESIGN.md §12).
    pub fn set_obs(&mut self, obs: Obs) {
        self.c_messages = obs.metrics.counter("sim.messages");
        self.c_bytes = obs.metrics.counter("sim.bytes");
        self.obs = obs;
    }
    /// Runs a forward pass of `flops` FLOPs over `layers` layers on `node`,
    /// advancing its clock.
    pub fn compute(&mut self, node: usize, flops: u64, layers: usize, unit: ComputeUnit) {
        let device = &self.cluster.devices[node];
        let t = device.compute_time(flops, layers, unit);
        let start_ns = self.node_time[node].as_nanos();
        self.node_time[node] += t;
        self.obs.tracer.record_span_at(
            "sim.compute",
            start_ns,
            self.node_time[node].as_nanos(),
            &[("node", node as u64), ("flops", flops)],
        );
        match unit {
            ComputeUnit::Cpu => self.cpu_busy[node] += t,
            ComputeUnit::Gpu => {
                // Only the arithmetic occupies the GPU; dispatch overheads
                // are CPU-side driver work.
                let crunch = device.crunch_time(flops, unit);
                self.gpu_busy[node] += crunch;
                self.cpu_busy[node] += t.saturating_sub(crunch);
            }
        }
    }

    /// Advances `node`'s clock by a fixed overhead without charging any
    /// compute unit (protocol bookkeeping, serialization stacks).
    pub fn delay(&mut self, node: usize, time: SimTime) {
        self.node_time[node] += time;
    }

    /// Transmits `bytes` from `from` to `to` over the shared medium,
    /// advancing both clocks past the arrival and serializing with any
    /// other in-flight transmission.
    pub fn send(&mut self, from: usize, to: usize, bytes: u64) {
        let airtime = self.cluster.link.transfer_time(bytes);
        let start = self.node_time[from].max(self.medium_free_at);
        let end = start + airtime;
        self.medium_free_at = end;
        self.node_time[from] = end; // blocking send (TCP write + ACK)
        self.node_time[to] = self.node_time[to].max(end);
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        self.c_messages.inc();
        self.c_bytes.add(bytes);
        self.obs.tracer.record_span_at(
            "sim.send",
            start.as_nanos(),
            end.as_nanos(),
            &[("from", from as u64), ("to", to as u64), ("bytes", bytes)],
        );
    }

    /// [`Self::send`] of an *enveloped* payload: charges the wire for the
    /// 16-byte envelope header, plus the 16-byte trace extension when the
    /// run's observability handle is tracing — so scenarios can quantify
    /// exactly what cross-node tracing costs in airtime (DESIGN.md §17:
    /// +16 B per frame, nothing when tracing is off).
    pub fn send_enveloped(&mut self, from: usize, to: usize, payload_bytes: u64) {
        let ext = if self.obs.enabled() {
            teamnet_obs::TRACE_EXT_LEN as u64
        } else {
            0
        };
        self.send(
            from,
            to,
            payload_bytes + teamnet_obs::ENVELOPE_HEADER_LEN as u64 + ext,
        );
    }

    /// Unicasts `bytes` from `from` to every other node in id order
    /// (WiFi has no reliable multicast; the paper's broadcast loops over
    /// TCP sockets).
    pub fn broadcast(&mut self, from: usize, bytes: u64) {
        for to in 0..self.cluster.len() {
            if to != from {
                self.send(from, to, bytes);
            }
        }
    }

    /// Every other node sends `bytes` to `to` (completion of a gather).
    pub fn gather(&mut self, to: usize, bytes: u64) {
        for from in 0..self.cluster.len() {
            if from != to {
                self.send(from, to, bytes);
            }
        }
    }

    /// Synchronizes all node clocks to the latest (a barrier, ignoring the
    /// barrier's own messages).
    pub fn sync_all(&mut self) {
        let latest = self
            .node_time
            .iter()
            .max()
            .copied()
            .unwrap_or(SimTime::ZERO);
        for t in &mut self.node_time {
            *t = latest;
        }
    }

    /// Current local time of `node`.
    pub fn node_time(&self, node: usize) -> SimTime {
        self.node_time[node]
    }

    /// The latest local clock — the end-to-end latency so far.
    pub fn makespan(&self) -> SimTime {
        self.node_time
            .iter()
            .max()
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Finalizes the run into a report. `period` is the request
    /// inter-arrival time used for utilization accounting; pass `None` for
    /// back-to-back serving (period = makespan).
    pub fn finish(self, period: Option<SimTime>) -> SimReport {
        let makespan = self.makespan();
        let period = period.unwrap_or(makespan);
        let cpu_percent = self
            .cluster
            .devices
            .iter()
            .zip(&self.cpu_busy)
            .map(|(d, &busy)| d.cpu_percent(busy, period))
            .collect();
        let gpu_percent = self
            .cluster
            .devices
            .iter()
            .zip(&self.gpu_busy)
            .map(|(d, &busy)| d.gpu_percent(busy, period))
            .collect();
        SimReport {
            makespan,
            cpu_busy: self.cpu_busy,
            gpu_busy: self.gpu_busy,
            cpu_percent,
            gpu_percent,
            bytes_sent: self.bytes_sent,
            messages_sent: self.messages_sent,
        }
    }
}

/// Outcome of a [`SimRun`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end latency of the simulated operation.
    pub makespan: SimTime,
    /// Per-node CPU busy time.
    pub cpu_busy: Vec<SimTime>,
    /// Per-node GPU busy time.
    pub gpu_busy: Vec<SimTime>,
    /// Per-node modeled CPU utilization (percent).
    pub cpu_percent: Vec<f64>,
    /// Per-node modeled GPU utilization (percent).
    pub gpu_percent: Vec<f64>,
    /// Total payload bytes that crossed the medium.
    pub bytes_sent: u64,
    /// Total messages that crossed the medium.
    pub messages_sent: u64,
}

impl SimReport {
    /// Mean CPU utilization across nodes.
    pub fn mean_cpu_percent(&self) -> f64 {
        mean(&self.cpu_percent)
    }

    /// Mean GPU utilization across nodes.
    pub fn mean_gpu_percent(&self) -> f64 {
        mean(&self.gpu_percent)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> SimCluster {
        SimCluster::homogeneous(DeviceProfile::jetson_tx2_cpu(), n)
    }

    #[test]
    fn lone_compute_is_device_time() {
        let c = cluster(1);
        let mut run = c.run();
        run.compute(0, 4_000_000_000, 10, ComputeUnit::Cpu);
        // 4 GFLOP at 4 GFLOP/s = 1 s plus small overheads.
        let t = run.makespan().as_secs_f64();
        assert!((t - 1.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn parallel_compute_overlaps() {
        let c = cluster(2);
        let mut run = c.run();
        run.compute(0, 4_000_000_000, 1, ComputeUnit::Cpu);
        run.compute(1, 4_000_000_000, 1, ComputeUnit::Cpu);
        // Both nodes computed concurrently: makespan ≈ one compute, not two.
        assert!(run.makespan().as_secs_f64() < 1.1);
    }

    #[test]
    fn medium_serializes_transfers() {
        let c = cluster(3);
        let mut run = c.run();
        // Two different senders transmit 1 MB each at time zero: the second
        // must wait for the medium.
        run.send(0, 2, 1_000_000);
        let after_first = run.makespan();
        run.send(1, 2, 1_000_000);
        let after_second = run.makespan();
        let one_airtime = c.link.transfer_time(1_000_000);
        assert!((after_second.as_secs_f64() - 2.0 * one_airtime.as_secs_f64()).abs() < 1e-6);
        assert!(after_second > after_first);
    }

    #[test]
    fn enveloped_send_charges_trace_ext_only_when_tracing() {
        use std::sync::Arc;
        use teamnet_obs::{Obs, TraceSink, VecSink};

        let c = cluster(2);
        let mut untraced = c.run();
        untraced.send_enveloped(0, 1, 1_000);
        let untraced_bytes = untraced.finish(None).bytes_sent;
        assert_eq!(
            untraced_bytes,
            1_000 + teamnet_obs::ENVELOPE_HEADER_LEN as u64
        );

        let mut traced = c.run();
        let sink = Arc::new(VecSink::new());
        traced.set_obs(Obs::sim(sink as Arc<dyn TraceSink>));
        traced.send_enveloped(0, 1, 1_000);
        assert_eq!(
            traced.finish(None).bytes_sent,
            untraced_bytes + teamnet_obs::TRACE_EXT_LEN as u64
        );
    }

    #[test]
    fn broadcast_costs_k_airtimes() {
        let c = cluster(4);
        let mut run = c.run();
        run.broadcast(0, 10_000);
        let expected = 3.0 * c.link.transfer_time(10_000).as_secs_f64();
        assert!((run.makespan().as_secs_f64() - expected).abs() < 1e-6);
        assert_eq!(run.finish(None).messages_sent, 3);
    }

    #[test]
    fn teamnet_beats_chatty_mpi_shape() {
        // The paper's headline: one broadcast + one gather (TeamNet) is far
        // cheaper than per-layer communication (MPI) on WiFi, even when MPI
        // moves fewer bytes per message.
        let c = cluster(2);

        // TeamNet: broadcast input (3 KB), both compute half-size model,
        // gather one result (~50 B).
        let mut teamnet = c.run();
        teamnet.broadcast(0, 3_136);
        teamnet.compute(0, 750_000, 4, ComputeUnit::Cpu);
        teamnet.compute(1, 750_000, 4, ComputeUnit::Cpu);
        teamnet.gather(0, 50);
        let teamnet_ms = teamnet.finish(None).makespan.as_millis_f64();

        // MPI-Matrix: per layer, scatter activations and gather partials.
        let mut mpi = c.run();
        for _ in 0..8 {
            mpi.send(0, 1, 2_000);
            mpi.compute(0, 95_000, 1, ComputeUnit::Cpu);
            mpi.compute(1, 95_000, 1, ComputeUnit::Cpu);
            mpi.send(1, 0, 2_000);
        }
        let mpi_ms = mpi.finish(None).makespan.as_millis_f64();

        assert!(
            mpi_ms > 3.0 * teamnet_ms,
            "MPI {mpi_ms} ms should dwarf TeamNet {teamnet_ms} ms"
        );
    }

    #[test]
    fn utilization_reported_per_node() {
        let c = cluster(2);
        let mut run = c.run();
        run.compute(0, 400_000_000, 1, ComputeUnit::Cpu); // 100 ms busy
        run.sync_all();
        let report = run.finish(None);
        assert!(report.cpu_percent[0] > report.cpu_percent[1]);
        assert_eq!(report.cpu_percent.len(), 2);
        assert!(report.mean_cpu_percent() > 0.0);
        assert_eq!(report.mean_gpu_percent(), 0.0);
    }

    #[test]
    fn gpu_compute_charges_gpu_and_some_cpu() {
        let c = SimCluster::homogeneous(DeviceProfile::jetson_tx2_gpu(), 1);
        let mut run = c.run();
        run.compute(0, 1_000_000_000, 26, ComputeUnit::Gpu);
        let report = run.finish(None);
        assert!(report.gpu_busy[0] > SimTime::ZERO);
        assert!(report.cpu_busy[0] > SimTime::ZERO);
        assert!(report.gpu_percent[0] > 50.0);
    }

    #[test]
    fn explicit_period_lowers_utilization() {
        let c = cluster(1);
        let mut run = c.run();
        run.compute(0, 40_000_000, 1, ComputeUnit::Cpu); // 10 ms
        let report = run.finish(Some(SimTime::from_millis(100)));
        let busy_report = {
            let mut run = c.run();
            run.compute(0, 40_000_000, 1, ComputeUnit::Cpu);
            run.finish(None)
        };
        assert!(report.cpu_percent[0] < busy_report.cpu_percent[0] / 5.0);
    }

    #[test]
    fn heterogeneous_cluster_is_paced_by_the_slow_device() {
        // A Jetson + RPi pair doing equal expert work: the makespan is the
        // RPi's compute time, not the Jetson's.
        let cluster = SimCluster::heterogeneous(vec![
            DeviceProfile::jetson_tx2_cpu(),
            DeviceProfile::raspberry_pi_3b_plus(),
        ]);
        let mut run = cluster.run();
        let flops = 2_000_000u64;
        run.compute(0, flops, 4, ComputeUnit::Cpu);
        run.compute(1, flops, 4, ComputeUnit::Cpu);
        let jetson_t = cluster.devices[0].compute_time(flops, 4, ComputeUnit::Cpu);
        let rpi_t = cluster.devices[1].compute_time(flops, 4, ComputeUnit::Cpu);
        assert!(rpi_t > jetson_t);
        assert_eq!(run.makespan(), rpi_t);
    }

    #[test]
    fn delay_advances_without_busy_time() {
        let c = cluster(1);
        let mut run = c.run();
        run.delay(0, SimTime::from_millis(7));
        assert_eq!(run.makespan(), SimTime::from_millis(7));
        let report = run.finish(None);
        assert_eq!(report.cpu_busy[0], SimTime::ZERO);
    }

    #[test]
    fn sim_spans_carry_simulated_time_and_are_byte_stable() {
        use std::sync::Arc;
        use teamnet_obs::VecSink;

        let c = cluster(2);
        let trace_of_run = || {
            let sink = Arc::new(VecSink::default());
            let obs = Obs::sim(Arc::clone(&sink) as _);
            let mut run = c.run();
            run.set_obs(obs.clone());
            run.broadcast(0, 10_000);
            run.compute(1, 4_000_000, 1, ComputeUnit::Cpu);
            run.gather(0, 50);
            (sink.to_jsonl(), obs.metrics.snapshot().summary())
        };
        let (trace_a, metrics_a) = trace_of_run();
        let (trace_b, metrics_b) = trace_of_run();
        assert_eq!(trace_a, trace_b, "sim traces must be byte-identical");
        assert_eq!(metrics_a, metrics_b);
        assert!(trace_a.contains("\"name\":\"sim.send\""), "{trace_a}");
        assert!(trace_a.contains("\"name\":\"sim.compute\""), "{trace_a}");
        assert!(
            metrics_a.contains("counter sim.messages = 2"),
            "{metrics_a}"
        );
        assert!(
            metrics_a.contains("counter sim.bytes = 10050"),
            "{metrics_a}"
        );
    }

    #[test]
    fn sync_all_aligns_clocks() {
        let c = cluster(3);
        let mut run = c.run();
        run.compute(1, 4_000_000, 1, ComputeUnit::Cpu);
        run.sync_all();
        assert_eq!(run.node_time(0), run.node_time(1));
        assert_eq!(run.node_time(2), run.node_time(1));
    }
}
