//! # teamnet
//!
//! Facade crate for the TeamNet (ICDCS 2019) reproduction: re-exports the
//! whole workspace under one roof. See the individual crates for detail:
//!
//! * [`core`] — the TeamNet algorithms (gate, expert trainer, inference);
//! * [`nn`] / [`tensor`] — the from-scratch neural-network substrate;
//! * [`data`] — synthetic MNIST/CIFAR-like datasets and IDX loading;
//! * [`net`] — TCP / in-process transports, collectives and RPC;
//! * [`obs`] — deterministic span tracing and metrics (DESIGN.md §12);
//! * [`serve`] — the multi-tenant serving front-end (DESIGN.md §16);
//! * [`simnet`] — the edge-device and WiFi cost models;
//! * [`moe`] — the Sparsely-Gated MoE baseline;
//! * [`partition`] — the MPI-Matrix/Branch/Kernel baselines.
//!
//! # Examples
//!
//! ```no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use teamnet::core::{TrainConfig, Trainer};
//! use teamnet::data::synth_digits;
//! use teamnet::nn::ModelSpec;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = synth_digits(2_000, &mut rng);
//! let mut trainer = Trainer::new(ModelSpec::mlp(4, 64), 2, TrainConfig::default());
//! trainer.train(&data);
//! let mut team = trainer.into_team();
//! let prediction = &team.predict(&data.images().select_rows(&[0]))[0];
//! println!("class {} from expert {}", prediction.label, prediction.expert);
//! ```

#![warn(missing_docs)]

pub use teamnet_core as core;
pub use teamnet_data as data;
pub use teamnet_moe as moe;
pub use teamnet_net as net;
pub use teamnet_nn as nn;
pub use teamnet_obs as obs;
pub use teamnet_partition as partition;
pub use teamnet_serve as serve;
pub use teamnet_simnet as simnet;
pub use teamnet_tensor as tensor;
