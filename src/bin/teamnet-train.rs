//! Trains a TeamNet and writes it to a team file for deployment.
//!
//! ```text
//! teamnet-train --dataset digits --experts 2 --epochs 4 --out team.bin
//!               [--samples 3000] [--depth 4] [--hidden 128] [--seed 0]
//! ```
//!
//! `--dataset objects` trains Shake-Shake experts on the CIFAR-like
//! synthetic dataset instead (use `--depth 8|14` and `--channels`).

use rand::{rngs::StdRng, SeedableRng};
use teamnet::core::{save_team, TrainConfig, Trainer};
use teamnet::data::{synth_digits, synth_objects};
use teamnet::nn::ModelSpec;

struct Args {
    dataset: String,
    experts: usize,
    epochs: usize,
    out: String,
    samples: usize,
    depth: usize,
    hidden: usize,
    channels: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: "digits".to_string(),
        experts: 2,
        epochs: 4,
        out: "team.bin".to_string(),
        samples: 3_000,
        depth: 4,
        hidden: 128,
        channels: 6,
        seed: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--dataset" => args.dataset = value()?,
            "--experts" => args.experts = value()?.parse().map_err(|e| format!("{e}"))?,
            "--epochs" => args.epochs = value()?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = value()?,
            "--samples" => args.samples = value()?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => args.depth = value()?.parse().map_err(|e| format!("{e}"))?,
            "--hidden" => args.hidden = value()?.parse().map_err(|e| format!("{e}"))?,
            "--channels" => args.channels = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => return Err("usage: see the module docs".to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.experts < 2 {
        return Err("--experts must be at least 2".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: teamnet-train --dataset digits|objects --experts K --epochs N --out FILE"
            );
            std::process::exit(2);
        }
    };

    let mut rng = StdRng::seed_from_u64(args.seed);
    let (data, spec, lr) = match args.dataset.as_str() {
        "digits" => (
            synth_digits(args.samples, &mut rng),
            ModelSpec::Mlp {
                input_dim: 28 * 28,
                hidden_dim: args.hidden,
                layers: args.depth,
                classes: 10,
            },
            0.1,
        ),
        "objects" => (
            synth_objects(args.samples, &mut rng),
            ModelSpec::shake_shake(if args.depth >= 8 { args.depth } else { 8 }, args.channels),
            0.02,
        ),
        other => {
            eprintln!("unknown dataset {other} (use digits or objects)");
            std::process::exit(2);
        }
    };

    let holdout = args.samples / 5;
    let (train, test) = data.split(args.samples - holdout);
    println!(
        "training {} experts ({spec:?}) on {} examples for {} epochs ...",
        args.experts,
        train.len(),
        args.epochs
    );
    let config = TrainConfig {
        epochs: args.epochs,
        learning_rate: lr,
        seed: args.seed,
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let mut trainer = Trainer::new(spec, args.experts, config);
    trainer.train(&train);
    let imbalance = trainer.history().final_imbalance(10);
    let mut team = trainer.into_team();
    let eval = team.evaluate(&test);
    println!(
        "trained in {:?}: accuracy {:.1}%, share imbalance {:.3}",
        t0.elapsed(),
        eval.accuracy * 100.0,
        imbalance
    );

    if let Err(e) = save_team(&mut team, &args.out) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
}
