//! Runs one node of a distributed TeamNet cluster from a team file — the
//! deployable counterpart of the paper's edge testbed. Start one process
//! per device (possibly on different hosts):
//!
//! ```text
//! # on device 0 (the master):
//! teamnet-node --rank 0 --listen 0.0.0.0:7000 \
//!     --peers host0:7000,host1:7001 --team team.bin --demo 50
//!
//! # on device 1 (a worker):
//! teamnet-node --rank 1 --listen 0.0.0.0:7001 \
//!     --peers host0:7000,host1:7001 --team team.bin
//! ```
//!
//! Every node loads *only its own expert* (rank i → expert i). The master
//! broadcasts each input, everyone infers in parallel, and the prediction
//! with the least predictive entropy wins. `--demo N` makes the master
//! generate N synthetic digit inputs, run collaborative inference, print
//! the results, and shut the cluster down.

use rand::{rngs::StdRng, SeedableRng};
use std::net::SocketAddr;
use teamnet::core::runtime::{master_infer, serve_worker, shutdown_workers, MasterConfig};
use teamnet::core::{build_expert, load_expert, load_team};
use teamnet::data::synth_digits;
use teamnet::net::TcpTransport;
use teamnet::nn::load_state;

struct Args {
    rank: usize,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    team: String,
    demo: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut rank = None;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut team = "team.bin".to_string();
    let mut demo = 20usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--rank" => rank = Some(value()?.parse().map_err(|e| format!("rank: {e}"))?),
            "--listen" => listen = Some(value()?.parse().map_err(|e| format!("listen addr: {e}"))?),
            "--peers" => {
                peers = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("peer addr {s}: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--team" => team = value()?,
            "--demo" => demo = value()?.parse().map_err(|e| format!("demo: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let rank = rank.ok_or("--rank is required")?;
    let listen = listen.ok_or("--listen is required")?;
    if peers.len() < 2 {
        return Err("--peers needs at least two comma-separated addresses".to_string());
    }
    if rank >= peers.len() {
        return Err(format!(
            "rank {rank} out of range for {} peers",
            peers.len()
        ));
    }
    Ok(Args {
        rank,
        listen,
        peers,
        team,
        demo,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: teamnet-node --rank R --listen ADDR --peers A0,A1[,..] --team FILE [--demo N]");
            std::process::exit(2);
        }
    };

    // Load only this node's expert from the team file.
    let (spec, state) = match load_expert(&args.team, args.rank) {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("cannot load expert {} from {}: {e}", args.rank, args.team);
            std::process::exit(1);
        }
    };
    let mut expert = build_expert(&spec, 0);
    load_state(&mut expert, &state);
    println!("node {}: expert loaded ({spec:?})", args.rank);

    // Join the mesh (dials lower ranks, accepts higher ones).
    let transport = match TcpTransport::connect_mesh(args.rank, args.listen, &args.peers) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mesh bootstrap failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "node {}: mesh of {} nodes connected",
        args.rank,
        args.peers.len()
    );

    if args.rank == 0 {
        // Master: run the demo workload, then release the workers.
        let mut rng = StdRng::seed_from_u64(1);
        let demo_data = synth_digits(args.demo.max(1), &mut rng);
        let calibration = load_team(&args.team)
            .ok()
            .map(|team| team.calibration().to_vec());
        let config = MasterConfig {
            calibration,
            ..MasterConfig::default()
        };
        let mut correct = 0usize;
        let start = std::time::Instant::now();
        for i in 0..demo_data.len() {
            let image = demo_data.images().select_rows(&[i]);
            match master_infer(&transport, &mut expert, &image, &config) {
                Ok(preds) => {
                    if preds[0].label == demo_data.labels()[i] {
                        correct += 1;
                    }
                }
                Err(e) => {
                    eprintln!("inference {i} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        let per = start.elapsed() / demo_data.len() as u32;
        println!(
            "master: {}/{} correct, {per:?} per collaborative inference",
            correct,
            demo_data.len()
        );
        if let Err(e) = shutdown_workers(&transport) {
            eprintln!("shutdown broadcast failed: {e}");
        }
    } else {
        println!(
            "node {}: serving (ctrl-c or master shutdown to exit)",
            args.rank
        );
        if let Err(e) = serve_worker(&transport, 0, &mut expert) {
            eprintln!("worker loop failed: {e}");
            std::process::exit(1);
        }
        println!("node {}: received shutdown, exiting", args.rank);
    }
}
